//! The shared brute-force ρ/δ kernels behind [`LeanDpc`](crate::LeanDpc) and
//! [`ParallelDpc`](crate::ParallelDpc).
//!
//! Both baselines answer queries by scanning every point against every other
//! point; the only difference is the execution policy they pass in. The
//! kernels stream over the dataset's structure-of-arrays coordinate slices
//! (cache-friendly, vectorisable) and are sqrt-free except for the single
//! root that converts the best squared distance into the returned δ.
//! Callers validate `dc` and the `rho` slice before calling.

use dpc_core::{exec, Dataset, DeltaResult, DensityOrder, ExecPolicy, Rho};

/// ρ of every point by full scan: counts points strictly within `dc`,
/// excluding the point itself.
pub(crate) fn rho_scan(dataset: &Dataset, dc: f64, policy: ExecPolicy) -> Vec<Rho> {
    let n = dataset.len();
    let (xs, ys) = dataset.coord_slices();
    let dc2 = dc * dc;
    let mut rho = vec![0 as Rho; n];
    exec::fill_slice(
        &mut rho,
        policy,
        || (),
        |i, ()| {
            let (xi, yi) = (xs[i], ys[i]);
            // Branch-free count over the two coordinate streams; the point
            // itself always satisfies dist² = 0 < dc² (validate_dc guarantees
            // dc² > 0), so subtract it at the end instead of testing j != i in
            // the hot loop. Counting in u32 and converting once keeps the
            // loop integer-only; the count is an exact integer in f64.
            let mut count: u32 = 0;
            for (&xj, &yj) in xs.iter().zip(ys.iter()) {
                let (dx, dy) = (xj - xi, yj - yi);
                count += u32::from(dx * dx + dy * dy < dc2);
            }
            count.saturating_sub(1) as Rho
        },
    );
    rho
}

/// δ and µ of every point by full scan under the given density order.
pub(crate) fn delta_scan(
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    policy: ExecPolicy,
) -> DeltaResult {
    let n = dataset.len();
    let (xs, ys) = dataset.coord_slices();
    let mut result = DeltaResult::unset(n);
    exec::fill_slice_pair(
        &mut result.delta,
        &mut result.mu,
        policy,
        || (),
        |p, delta_slot, mu_slot, ()| {
            let (xp, yp) = (xs[p], ys[p]);
            let mut best_sq = f64::INFINITY;
            let mut best_q = None;
            let mut max_sq = 0.0f64;
            for q in 0..n {
                if q == p {
                    continue;
                }
                let (dx, dy) = (xs[q] - xp, ys[q] - yp);
                let d2 = dx * dx + dy * dy;
                max_sq = max_sq.max(d2);
                if d2 < best_sq && order.is_denser(q, p) {
                    best_sq = d2;
                    best_q = Some(q);
                }
            }
            if best_q.is_some() {
                *delta_slot = best_sq.sqrt();
                *mu_slot = best_q;
            } else {
                // Global peak: δ = max distance to any other point. sqrt is
                // monotone, so rooting the max squared distance is exact.
                *delta_slot = max_sq.sqrt();
            }
        },
    );
    result
}
