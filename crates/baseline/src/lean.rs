//! Memory-lean baseline: recomputes every pairwise distance on the fly.
//!
//! This is what the paper actually measures as "DPC" — `Θ(n²)` time per
//! query and only `O(n)` working memory, so it runs (slowly) even where the
//! distance matrix would not fit.

use std::time::Duration;

use dpc_core::index::{eps_neighbors_scan, validate_dc, validate_rho_len};
use dpc_core::{
    Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, Point, PointId, Result,
    Rho, TieBreak, Timer, UpdatableIndex,
};

/// The memory-lean O(n²)-time baseline.
#[derive(Debug, Clone)]
pub struct LeanDpc {
    dataset: Dataset,
    tie: TieBreak,
    construction_time: Duration,
}

impl LeanDpc {
    /// Builds the baseline (only clones the dataset).
    pub fn build(dataset: &Dataset) -> Self {
        Self::build_with_tie_break(dataset, TieBreak::default())
    }

    /// Builds the baseline with an explicit tie-break rule.
    pub fn build_with_tie_break(dataset: &Dataset, tie: TieBreak) -> Self {
        let timer = Timer::start();
        LeanDpc {
            dataset: dataset.clone(),
            tie,
            construction_time: timer.elapsed(),
        }
    }
}

impl DpcIndex for LeanDpc {
    fn name(&self) -> &'static str {
        "dpc-lean"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        validate_dc(dc)?;
        let pts = self.dataset.points();
        let n = pts.len();
        let dc2 = dc * dc;
        let mut rho = vec![0.0 as Rho; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if pts[i].distance_squared(&pts[j]) < dc2 {
                    rho[i] += 1.0;
                    rho[j] += 1.0;
                }
            }
        }
        Ok(rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_policy(dc, rho, ExecPolicy::Sequential)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        // The sequential path keeps the symmetric i < j pair loop (half the
        // distance computations); the parallel path runs the shared
        // per-point scan kernel. Both produce identical integer counts.
        if policy.workers(self.dataset.len()) <= 1 {
            return self.rho(dc);
        }
        validate_dc(dc)?;
        Ok(crate::brute::rho_scan(&self.dataset, dc, policy))
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.tie);
        Ok(crate::brute::delta_scan(&self.dataset, &order, policy))
    }

    fn memory_bytes(&self) -> usize {
        self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
    }

    fn tie_break(&self) -> TieBreak {
        self.tie
    }
}

/// The lean baseline keeps no derived structure at all, so it is the
/// always-correct reference [`UpdatableIndex`] for the streaming engine:
/// mutations delegate to the owned [`Dataset`] and the ε-query streams over
/// the structure-of-arrays coordinate slices.
impl UpdatableIndex for LeanDpc {
    fn insert(&mut self, p: Point) -> Result<PointId> {
        self.dataset.push(p)
    }

    fn remove(&mut self, id: PointId) -> Result<Option<PointId>> {
        self.dataset.swap_remove(id)
    }

    fn rebuild_from(&mut self, dataset: Dataset) -> Result<()> {
        // No derived structure: a bulk load is plain adoption (the caller's
        // version history included).
        self.dataset = dataset;
        Ok(())
    }

    fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>> {
        eps_neighbors_scan(&self.dataset, center, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixDpc;
    use dpc_core::Point;
    use dpc_datasets::generators::s1;

    #[test]
    fn parallel_policy_is_bit_identical_to_sequential() {
        let data = s1(13, 0.05).into_dataset(); // 250 points
        let lean = LeanDpc::build(&data);
        let dc = 40_000.0;
        let (seq_rho, seq_delta) = lean.rho_delta(dc).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let policy = ExecPolicy::Threads(threads);
            let (rho, delta) = lean.rho_delta_with_policy(dc, policy).unwrap();
            assert_eq!(rho, seq_rho, "threads = {threads}");
            assert_eq!(delta.delta, seq_delta.delta, "threads = {threads}");
            assert_eq!(delta.mu, seq_delta.mu, "threads = {threads}");
        }
    }

    #[test]
    fn matches_matrix_baseline_on_synthetic_data() {
        let data = s1(11, 0.04).into_dataset(); // 200 points
        let lean = LeanDpc::build(&data);
        let matrix = MatrixDpc::build(&data);
        for dc in [10_000.0, 50_000.0, 200_000.0] {
            let (r1, d1) = lean.rho_delta(dc).unwrap();
            let (r2, d2) = matrix.rho_delta(dc).unwrap();
            assert_eq!(r1, r2, "dc = {dc}");
            assert_eq!(d1.mu, d2.mu, "dc = {dc}");
            for p in 0..data.len() {
                assert!(
                    (d1.delta(p) - d2.delta(p)).abs() < 1e-9,
                    "dc = {dc}, p = {p}"
                );
            }
        }
    }

    #[test]
    fn memory_is_linear_not_quadratic() {
        let data = s1(11, 0.1).into_dataset(); // 500 points
        let lean = LeanDpc::build(&data);
        let matrix = MatrixDpc::build(&data);
        assert!(lean.memory_bytes() < matrix.memory_bytes() / 10);
    }

    #[test]
    fn strict_inequality_on_dc_boundary() {
        let data = Dataset::new(vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)]);
        let lean = LeanDpc::build(&data);
        assert_eq!(lean.rho(2.0).unwrap(), vec![0.0, 0.0]);
        assert_eq!(lean.rho(2.0000001).unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn updates_match_a_fresh_build() {
        let data = s1(29, 0.02).into_dataset(); // 100 points
        let mut lean = LeanDpc::build(&data);
        let c = data.bounding_box();
        lean.insert(Point::new(c.min_x(), c.min_y())).unwrap();
        lean.remove(3).unwrap();
        lean.remove(lean.len() - 1).unwrap();
        let fresh = LeanDpc::build(lean.dataset());
        let dc = 60_000.0;
        let (r1, d1) = lean.rho_delta(dc).unwrap();
        let (r2, d2) = fresh.rho_delta(dc).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn eps_neighbors_matches_definition() {
        let data = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
        ]);
        let lean = LeanDpc::build(&data);
        // Strict inequality: the point at distance exactly 1.0 is excluded.
        assert_eq!(
            lean.eps_neighbors(Point::new(0.0, 0.0), 1.0).unwrap(),
            vec![0, 1]
        );
        assert_eq!(
            lean.eps_neighbors(Point::new(2.0, 0.0), 1.5).unwrap(),
            vec![2, 3]
        );
        assert!(lean.eps_neighbors(Point::origin(), -1.0).is_err());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let data = Dataset::new(vec![Point::origin()]);
        let lean = LeanDpc::build(&data);
        assert!(lean.rho(-1.0).is_err());
        assert!(lean.delta(1.0, &[]).is_err());
    }
}
