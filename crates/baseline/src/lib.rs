//! # dpc-baseline
//!
//! The original Density Peak Clustering algorithm of Rodriguez & Laio, used
//! by the paper as the baseline for every experiment. Three interchangeable
//! variants are provided, all implementing [`dpc_core::DpcIndex`] so they can
//! be dropped anywhere an index is expected:
//!
//! * [`MatrixDpc`] — precomputes the full pairwise distance matrix
//!   (`Θ(n²)` memory). This matches the paper's remark that *"the pairwise
//!   distances can be reused after firstly computed"*: repeated queries for
//!   different `dc` avoid recomputing distances, at a large memory cost.
//! * [`LeanDpc`] — recomputes distances on the fly (`O(1)` extra memory per
//!   query, `Θ(n²)` time per query). This is what the paper actually runs as
//!   "DPC" for datasets where the matrix does not fit.
//! * [`ParallelDpc`] — the lean variant with the per-point loops spread over
//!   a configurable number of threads via the shared chunked engine of
//!   [`dpc_core::exec`]. Not part of the paper; provided as a reference
//!   point for the benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
pub mod lean;
pub mod matrix;
pub mod parallel;

pub use lean::LeanDpc;
pub use matrix::{DistanceMatrix, MatrixDpc};
pub use parallel::ParallelDpc;
