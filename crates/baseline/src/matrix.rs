//! Distance-matrix baseline: pairwise distances are computed once and reused
//! across queries for different `dc`.

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    Dataset, DeltaResult, DensityOrder, DpcIndex, IndexStats, Result, Rho, TieBreak, Timer,
};

/// Condensed symmetric pairwise-distance matrix.
///
/// Only the strict upper triangle is stored (`n·(n−1)/2` entries, `f64`), so
/// the memory cost is half of a full matrix but still quadratic — this is the
/// memory wall that motivates the paper's tree-based indices for large
/// datasets.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Upper-triangular entries in row-major order: (0,1), (0,2), …, (1,2), …
    entries: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes the pairwise distance matrix of a dataset.
    pub fn compute(dataset: &Dataset) -> Self {
        let n = dataset.len();
        let mut entries = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)) / 2);
        let pts = dataset.points();
        for i in 0..n {
            for j in (i + 1)..n {
                entries.push(pts[i].distance(&pts[j]));
            }
        }
        DistanceMatrix { n, entries }
    }

    /// Number of points covered by the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j` (0 when `i == j`).
    #[inline]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        // Index of (a, b) in the condensed upper triangle.
        let idx = a * self.n - a * (a + 1) / 2 + (b - a - 1);
        self.entries[idx]
    }

    /// Heap bytes used by the matrix.
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<f64>()
    }
}

/// The matrix-based baseline index.
#[derive(Debug, Clone)]
pub struct MatrixDpc {
    dataset: Dataset,
    matrix: DistanceMatrix,
    tie: TieBreak,
    construction_time: Duration,
}

impl MatrixDpc {
    /// Builds the baseline: computes and stores all pairwise distances.
    pub fn build(dataset: &Dataset) -> Self {
        Self::build_with_tie_break(dataset, TieBreak::default())
    }

    /// Builds the baseline with an explicit tie-break rule.
    pub fn build_with_tie_break(dataset: &Dataset, tie: TieBreak) -> Self {
        let timer = Timer::start();
        let matrix = DistanceMatrix::compute(dataset);
        MatrixDpc {
            dataset: dataset.clone(),
            matrix,
            tie,
            construction_time: timer.elapsed(),
        }
    }

    /// Access to the stored distance matrix.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }
}

impl DpcIndex for MatrixDpc {
    fn name(&self) -> &'static str {
        "dpc-matrix"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        validate_dc(dc)?;
        let n = self.dataset.len();
        let mut rho = vec![0.0 as Rho; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if self.matrix.distance(i, j) < dc {
                    rho[i] += 1.0;
                    rho[j] += 1.0;
                }
            }
        }
        Ok(rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let n = self.dataset.len();
        let order = DensityOrder::with_tie_break(rho, self.tie);
        let mut result = DeltaResult::unset(n);
        for p in 0..n {
            let mut best = f64::INFINITY;
            let mut best_q = None;
            let mut max_dist = 0.0f64;
            for q in 0..n {
                if q == p {
                    continue;
                }
                let d = self.matrix.distance(p, q);
                max_dist = max_dist.max(d);
                if order.is_denser(q, p) && d < best {
                    best = d;
                    best_q = Some(q);
                }
            }
            if best_q.is_some() {
                result.delta[p] = best;
                result.mu[p] = best_q;
            } else {
                result.delta[p] = max_dist;
            }
        }
        Ok(result)
    }

    fn memory_bytes(&self) -> usize {
        self.matrix.memory_bytes() + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("matrix_entries", self.matrix.entries.len() as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.tie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::naive_reference::NaiveReferenceIndex;
    use dpc_core::Point;

    fn dataset() -> Dataset {
        Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 6.0),
        ])
    }

    #[test]
    fn condensed_matrix_matches_direct_distances() {
        let data = dataset();
        let m = DistanceMatrix::compute(&data);
        for i in 0..data.len() {
            for j in 0..data.len() {
                assert!(
                    (m.distance(i, j) - data.distance(i, j)).abs() < 1e-12,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn matrix_diagonal_is_zero_and_symmetric() {
        let m = DistanceMatrix::compute(&dataset());
        for i in 0..5 {
            assert_eq!(m.distance(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(m.distance(i, j), m.distance(j, i));
            }
        }
    }

    #[test]
    fn matrix_memory_is_quadratic() {
        let small = DistanceMatrix::compute(&Dataset::new(vec![Point::origin(); 10]));
        let big = DistanceMatrix::compute(&Dataset::new(vec![Point::origin(); 100]));
        assert!(big.memory_bytes() > 50 * small.memory_bytes());
    }

    #[test]
    fn matches_reference_implementation() {
        let data = dataset();
        let baseline = MatrixDpc::build(&data);
        let reference = NaiveReferenceIndex::build(&data);
        for dc in [0.5, 1.5, 3.0, 10.0] {
            let (r1, d1) = baseline.rho_delta(dc).unwrap();
            let (r2, d2) = reference.rho_delta(dc).unwrap();
            assert_eq!(r1, r2, "dc = {dc}");
            assert_eq!(d1.mu, d2.mu, "dc = {dc}");
            for p in 0..data.len() {
                assert!((d1.delta(p) - d2.delta(p)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stats_report_matrix_entries() {
        let baseline = MatrixDpc::build(&dataset());
        assert_eq!(baseline.stats().counter("matrix_entries"), Some(10));
        assert!(baseline.memory_bytes() >= 10 * 8);
    }

    #[test]
    fn rejects_invalid_dc() {
        let baseline = MatrixDpc::build(&dataset());
        assert!(baseline.rho(0.0).is_err());
        assert!(baseline.delta(f64::NAN, &[0.0; 5]).is_err());
    }

    #[test]
    fn empty_dataset() {
        let baseline = MatrixDpc::build(&Dataset::new(vec![]));
        let (rho, deltas) = baseline.rho_delta(1.0).unwrap();
        assert!(rho.is_empty());
        assert!(deltas.is_empty());
    }
}
