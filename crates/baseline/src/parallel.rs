//! Multi-threaded variant of the lean baseline.
//!
//! Not part of the paper (all of its measurements are single-threaded), but a
//! useful reference point: it shows how far brute force can be pushed by
//! parallelism alone before the index structures still win asymptotically.
//! Work is partitioned over points with crossbeam scoped threads; each query
//! remains `Θ(n²)` total work.

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    Dataset, DeltaResult, DensityOrder, DpcIndex, IndexStats, Result, Rho, TieBreak, Timer,
};

/// The parallel O(n²) baseline.
#[derive(Debug, Clone)]
pub struct ParallelDpc {
    dataset: Dataset,
    tie: TieBreak,
    threads: usize,
    construction_time: Duration,
}

impl ParallelDpc {
    /// Builds the baseline using all available CPU parallelism.
    pub fn build(dataset: &Dataset) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_with_threads(dataset, threads)
    }

    /// Builds the baseline with an explicit thread count.
    ///
    /// The worker count is clamped to the number of points, so
    /// [`threads()`](Self::threads) and the `threads` stats counter always
    /// report the number of workers a query actually spawns (the chunked
    /// partitioning never creates more chunks than points).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn build_with_threads(dataset: &Dataset, threads: usize) -> Self {
        assert!(threads > 0, "ParallelDpc: need at least one thread");
        let timer = Timer::start();
        ParallelDpc {
            tie: TieBreak::default(),
            threads: threads.min(dataset.len()).max(1),
            dataset: dataset.clone(),
            construction_time: timer.elapsed(),
        }
    }

    /// Number of worker threads used per query.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn chunk_size(&self, n: usize) -> usize {
        n.div_ceil(self.threads).max(1)
    }
}

impl DpcIndex for ParallelDpc {
    fn name(&self) -> &'static str {
        "dpc-parallel"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        validate_dc(dc)?;
        let pts = self.dataset.points();
        let n = pts.len();
        if n == 0 {
            return Ok(vec![]);
        }
        let dc2 = dc * dc;
        let mut rho = vec![0 as Rho; n];
        let chunk = self.chunk_size(n);
        crossbeam::thread::scope(|scope| {
            for (chunk_idx, out) in rho.chunks_mut(chunk).enumerate() {
                let start = chunk_idx * chunk;
                scope.spawn(move |_| {
                    for (offset, slot) in out.iter_mut().enumerate() {
                        let i = start + offset;
                        let mut count = 0 as Rho;
                        for (j, q) in pts.iter().enumerate() {
                            if j != i && pts[i].distance_squared(q) < dc2 {
                                count += 1;
                            }
                        }
                        *slot = count;
                    }
                });
            }
        })
        .expect("rho worker thread panicked");
        Ok(rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let pts = self.dataset.points();
        let n = pts.len();
        if n == 0 {
            return Ok(DeltaResult::unset(0));
        }
        let order = DensityOrder::with_tie_break(rho, self.tie);
        let mut delta = vec![f64::INFINITY; n];
        let mut mu = vec![None; n];
        let chunk = self.chunk_size(n);
        crossbeam::thread::scope(|scope| {
            for (chunk_idx, (delta_out, mu_out)) in delta
                .chunks_mut(chunk)
                .zip(mu.chunks_mut(chunk))
                .enumerate()
            {
                let start = chunk_idx * chunk;
                let order = &order;
                scope.spawn(move |_| {
                    for offset in 0..delta_out.len() {
                        let p = start + offset;
                        let mut best_sq = f64::INFINITY;
                        let mut best_q = None;
                        let mut max_sq = 0.0f64;
                        for (q, point_q) in pts.iter().enumerate() {
                            if q == p {
                                continue;
                            }
                            let d2 = pts[p].distance_squared(point_q);
                            max_sq = max_sq.max(d2);
                            if d2 < best_sq && order.is_denser(q, p) {
                                best_sq = d2;
                                best_q = Some(q);
                            }
                        }
                        if best_q.is_some() {
                            delta_out[offset] = best_sq.sqrt();
                            mu_out[offset] = best_q;
                        } else {
                            delta_out[offset] = max_sq.sqrt();
                        }
                    }
                });
            }
        })
        .expect("delta worker thread panicked");
        Ok(DeltaResult::new(delta, mu))
    }

    fn memory_bytes(&self) -> usize {
        self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("threads", self.threads as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.tie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lean::LeanDpc;
    use dpc_datasets::generators::{query, s1};

    #[test]
    fn matches_lean_baseline() {
        let data = s1(3, 0.06).into_dataset(); // 300 points
        let lean = LeanDpc::build(&data);
        for threads in [1, 2, 4, 7] {
            let par = ParallelDpc::build_with_threads(&data, threads);
            for dc in [20_000.0, 100_000.0] {
                let (r1, d1) = par.rho_delta(dc).unwrap();
                let (r2, d2) = lean.rho_delta(dc).unwrap();
                assert_eq!(r1, r2, "threads {threads}, dc {dc}");
                assert_eq!(d1.mu, d2.mu, "threads {threads}, dc {dc}");
            }
        }
    }

    #[test]
    fn works_when_threads_exceed_points() {
        let data = query(5, 0.0005).into_dataset(); // tiny
        let par = ParallelDpc::build_with_threads(&data, 64);
        let (rho, deltas) = par.rho_delta(0.05).unwrap();
        assert_eq!(rho.len(), data.len());
        assert_eq!(deltas.len(), data.len());
    }

    #[test]
    fn clamps_threads_to_point_count() {
        use dpc_core::Point;
        let data = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let par = ParallelDpc::build_with_threads(&data, 8);
        assert_eq!(par.threads(), 3, "worker count must be clamped to n");
        assert_eq!(par.stats().counter("threads"), Some(3));
        let lean = LeanDpc::build(&data);
        let (r1, d1) = par.rho_delta(1.5).unwrap();
        let (r2, d2) = lean.rho_delta(1.5).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(d1.mu, d2.mu);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let par = ParallelDpc::build_with_threads(&Dataset::new(vec![]), 4);
        let (rho, deltas) = par.rho_delta(1.0).unwrap();
        assert!(rho.is_empty());
        assert!(deltas.is_empty());
    }

    #[test]
    fn reports_thread_count() {
        let data = s1(3, 0.01).into_dataset();
        let par = ParallelDpc::build_with_threads(&data, 3);
        assert_eq!(par.threads(), 3);
        assert_eq!(par.stats().counter("threads"), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ParallelDpc::build_with_threads(&Dataset::new(vec![]), 0);
    }
}
