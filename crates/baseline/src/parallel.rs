//! Multi-threaded variant of the lean baseline.
//!
//! Not part of the paper (all of its measurements are single-threaded), but a
//! useful reference point: it shows how far brute force can be pushed by
//! parallelism alone before the index structures still win asymptotically.
//! The chunked work partitioning lives in [`dpc_core::exec`] and the
//! per-point kernels in the crate-private `brute` module (both shared with
//! [`LeanDpc`](crate::LeanDpc)),
//! so this type is little more than a stored thread count. Each query
//! remains `Θ(n²)` total work, streamed over the dataset's
//! structure-of-arrays coordinate slices so the inner loops vectorise.

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, Result, Rho, TieBreak,
    Timer,
};

/// The parallel O(n²) baseline.
#[derive(Debug, Clone)]
pub struct ParallelDpc {
    dataset: Dataset,
    tie: TieBreak,
    threads: usize,
    construction_time: Duration,
}

impl ParallelDpc {
    /// Builds the baseline using all available CPU parallelism.
    pub fn build(dataset: &Dataset) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_with_threads(dataset, threads)
    }

    /// Builds the baseline with an explicit thread count.
    ///
    /// The worker count is clamped to the number of points, so
    /// [`threads()`](Self::threads) and the `threads` stats counter always
    /// report the number of workers a query actually spawns (the chunked
    /// partitioning never creates more chunks than points).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn build_with_threads(dataset: &Dataset, threads: usize) -> Self {
        assert!(threads > 0, "ParallelDpc: need at least one thread");
        let timer = Timer::start();
        ParallelDpc {
            tie: TieBreak::default(),
            threads: threads.min(dataset.len()).max(1),
            dataset: dataset.clone(),
            construction_time: timer.elapsed(),
        }
    }

    /// Number of worker threads used per query (unless a call-site policy
    /// overrides it through [`DpcIndex::rho_with_policy`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The policy the plain [`rho`](DpcIndex::rho)/[`delta`](DpcIndex::delta)
    /// queries run under.
    fn default_policy(&self) -> ExecPolicy {
        ExecPolicy::Threads(self.threads)
    }
}

impl DpcIndex for ParallelDpc {
    fn name(&self) -> &'static str {
        "dpc-parallel"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_policy(dc, self.default_policy())
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_policy(dc, rho, self.default_policy())
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        validate_dc(dc)?;
        Ok(crate::brute::rho_scan(&self.dataset, dc, policy))
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.tie);
        Ok(crate::brute::delta_scan(&self.dataset, &order, policy))
    }

    fn memory_bytes(&self) -> usize {
        self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("threads", self.threads as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.tie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lean::LeanDpc;
    use dpc_datasets::generators::{query, s1};

    #[test]
    fn matches_lean_baseline() {
        let data = s1(3, 0.06).into_dataset(); // 300 points
        let lean = LeanDpc::build(&data);
        for threads in [1, 2, 4, 7] {
            let par = ParallelDpc::build_with_threads(&data, threads);
            for dc in [20_000.0, 100_000.0] {
                let (r1, d1) = par.rho_delta(dc).unwrap();
                let (r2, d2) = lean.rho_delta(dc).unwrap();
                assert_eq!(r1, r2, "threads {threads}, dc {dc}");
                assert_eq!(d1.mu, d2.mu, "threads {threads}, dc {dc}");
            }
        }
    }

    #[test]
    fn explicit_policy_overrides_the_built_in_thread_count() {
        let data = s1(5, 0.04).into_dataset(); // 200 points
        let par = ParallelDpc::build_with_threads(&data, 4);
        let dc = 40_000.0;
        let (default_rho, default_delta) = par.rho_delta(dc).unwrap();
        for policy in [
            ExecPolicy::Sequential,
            ExecPolicy::Threads(1),
            ExecPolicy::Threads(3),
            ExecPolicy::Threads(9),
        ] {
            let (rho, delta) = par.rho_delta_with_policy(dc, policy).unwrap();
            assert_eq!(rho, default_rho, "{policy:?}");
            assert_eq!(delta.delta, default_delta.delta, "{policy:?}");
            assert_eq!(delta.mu, default_delta.mu, "{policy:?}");
        }
    }

    #[test]
    fn tiny_dc_whose_square_underflows_is_rejected() {
        use dpc_core::Point;
        // dc = 1e-170 is positive and finite but dc² underflows to 0.0,
        // which would break the squared-distance comparisons (and previously
        // drove `count - 1` below zero); validate_dc rejects it up front.
        let data = Dataset::new(vec![Point::new(0.0, 0.0); 3]);
        let par = ParallelDpc::build_with_threads(&data, 2);
        assert!(par.rho(1e-170).is_err());
        assert!(LeanDpc::build(&data).rho(1e-170).is_err());
        // A comfortably-above-the-limit dc counts coincident points.
        assert_eq!(par.rho(1e-100).unwrap(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn works_when_threads_exceed_points() {
        let data = query(5, 0.0005).into_dataset(); // tiny
        let par = ParallelDpc::build_with_threads(&data, 64);
        let (rho, deltas) = par.rho_delta(0.05).unwrap();
        assert_eq!(rho.len(), data.len());
        assert_eq!(deltas.len(), data.len());
    }

    #[test]
    fn clamps_threads_to_point_count() {
        use dpc_core::Point;
        let data = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ]);
        let par = ParallelDpc::build_with_threads(&data, 8);
        assert_eq!(par.threads(), 3, "worker count must be clamped to n");
        assert_eq!(par.stats().counter("threads"), Some(3));
        let lean = LeanDpc::build(&data);
        let (r1, d1) = par.rho_delta(1.5).unwrap();
        let (r2, d2) = lean.rho_delta(1.5).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(d1.mu, d2.mu);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let par = ParallelDpc::build_with_threads(&Dataset::new(vec![]), 4);
        let (rho, deltas) = par.rho_delta(1.0).unwrap();
        assert!(rho.is_empty());
        assert!(deltas.is_empty());
    }

    #[test]
    fn reports_thread_count() {
        let data = s1(3, 0.01).into_dataset();
        let par = ParallelDpc::build_with_threads(&data, 3);
        assert_eq!(par.threads(), 3);
        assert_eq!(par.stats().counter("threads"), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ParallelDpc::build_with_threads(&Dataset::new(vec![]), 0);
    }
}
