//! Criterion companion to Table 4: construction time of every index on a
//! fixed mid-size dataset.

use criterion::{criterion_group, criterion_main, Criterion};

use dpc_datasets::DatasetKind;
use dpc_list_index::{ChIndex, ListIndex, NeighborLists};
use dpc_tree_index::{GridIndex, KdTree, Quadtree, RTree};

fn bench_construction(c: &mut Criterion) {
    let kind = DatasetKind::Query;
    let data = kind.generate(42, 0.02).into_dataset(); // 1 000 points
    let w = kind.default_bin_width();

    let mut group = c.benchmark_group("construction_query1k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("list", |b| b.iter(|| ListIndex::build(&data)));
    group.bench_function("ch_from_scratch", |b| b.iter(|| ChIndex::build(&data, w)));
    let lists = NeighborLists::build(&data, None);
    group.bench_function("ch_histograms_only", |b| {
        b.iter(|| ChIndex::from_lists(&data, lists.clone(), w))
    });
    group.bench_function("quadtree", |b| b.iter(|| Quadtree::build(&data)));
    group.bench_function("rtree", |b| b.iter(|| RTree::build(&data)));
    group.bench_function("kdtree", |b| b.iter(|| KdTree::build(&data)));
    group.bench_function("grid", |b| b.iter(|| GridIndex::build(&data)));
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
