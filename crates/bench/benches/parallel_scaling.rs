//! Criterion view of the parallel query engine: combined ρ+δ query time of
//! the Grid and k-d tree indexes across worker thread counts.
//!
//! The committed `BENCH_parallel.json` snapshot (see the `bench_parallel`
//! binary) is the canonical record at n = 20 000; this bench is the quick
//! interactive version at a smaller n so `cargo bench` stays fast. Wall-clock
//! speedup is bounded by the number of physical cores of the machine running
//! the bench; the results are bit-identical at every thread count either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dpc_core::{DpcIndex, ExecPolicy};
use dpc_datasets::generators::s1;
use dpc_datasets::DatasetKind;
use dpc_tree_index::{GridIndex, KdTree};

const DC: f64 = 30_000.0;
const N: usize = 4_000;

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    let scale = N as f64 / DatasetKind::S1.paper_size() as f64;
    let data = s1(42, scale).into_dataset();
    let grid = GridIndex::build(&data);
    let kdtree = KdTree::build(&data);
    for &threads in &[1usize, 2, 4, 8] {
        let policy = ExecPolicy::Threads(threads);
        group.bench_with_input(BenchmarkId::new("grid", threads), &threads, |b, _| {
            b.iter(|| grid.rho_delta_with_policy(DC, policy).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("kdtree", threads), &threads, |b, _| {
            b.iter(|| kdtree.rho_delta_with_policy(DC, policy).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
