//! Criterion companion to the pruning-ablation experiment: δ-query time of
//! the tree indices with both, one or neither of the paper's pruning rules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dpc_core::DpcIndex;
use dpc_datasets::DatasetKind;
use dpc_tree_index::{DeltaQueryConfig, Quadtree, RTree};

fn bench_pruning(c: &mut Criterion) {
    let kind = DatasetKind::Birch;
    let data = kind.generate(42, 0.02).into_dataset(); // 2 000 points
    let dc = kind.default_dc();
    let quadtree = Quadtree::build(&data);
    let rtree = RTree::build(&data);
    let rho_q = quadtree.rho(dc).unwrap();
    let rho_r = rtree.rho(dc).unwrap();

    let variants = [
        ("both", DeltaQueryConfig::default()),
        (
            "density_only",
            DeltaQueryConfig {
                density_pruning: true,
                distance_pruning: false,
            },
        ),
        (
            "distance_only",
            DeltaQueryConfig {
                density_pruning: false,
                distance_pruning: true,
            },
        ),
        ("none", DeltaQueryConfig::no_pruning()),
    ];

    let mut group = c.benchmark_group("delta_pruning_birch2k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::new("quadtree", name), &config, |b, cfg| {
            b.iter(|| quadtree.delta_with_config(dc, &rho_q, cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rtree", name), &config, |b, cfg| {
            b.iter(|| rtree.delta_with_config(dc, &rho_r, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
