//! Criterion companion to Figure 5 / Figure 6: ρ+δ query time of every index
//! on a fixed mid-size dataset, at a small and a large cut-off distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dpc_bench::IndexKind;
use dpc_core::DpcIndex;
use dpc_datasets::DatasetKind;

fn bench_query_time(c: &mut Criterion) {
    let kind = DatasetKind::Range;
    let data = kind.generate(42, 0.02).into_dataset(); // 4 000 points
    let indices: Vec<(IndexKind, Box<dyn DpcIndex>)> = [
        IndexKind::List,
        IndexKind::Ch,
        IndexKind::Quadtree,
        IndexKind::RTree,
        IndexKind::KdTree,
        IndexKind::Grid,
    ]
    .into_iter()
    .map(|k| (k, k.build(&data, kind)))
    .collect();

    let mut group = c.benchmark_group("query_time_range4k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dc in [300.0, 2_200.0] {
        for (kind, index) in &indices {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("dc={dc}")),
                &dc,
                |b, &dc| b.iter(|| index.rho_delta(dc).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_time);
criterion_main!(benches);
