//! Empirical scaling check for Theorems 1 and 2: how the ρ- and δ-query
//! times of the List Index and the CH Index grow with the dataset size `n`.
//!
//! The theorems predict `O(n log n)` for the List Index query (binary search
//! per object + constant expected probes for δ) and `O(n)` for the CH Index
//! ρ-query. Criterion reports per-`n` timings; the EXPERIMENTS.md shape check
//! is that doubling `n` roughly doubles both (i.e. neither behaves
//! quadratically like the naive baseline, which is also measured here on the
//! smaller sizes for contrast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dpc_baseline::LeanDpc;
use dpc_core::DpcIndex;
use dpc_datasets::generators::s1;
use dpc_datasets::DatasetKind;
use dpc_list_index::{ChIndex, ListIndex};

const DC: f64 = 30_000.0;

fn bench_query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[500usize, 1_000, 2_000, 4_000] {
        let scale = n as f64 / DatasetKind::S1.paper_size() as f64;
        let data = s1(42, scale).into_dataset();
        let list = ListIndex::build(&data);
        let ch = ChIndex::build(&data, DatasetKind::S1.default_bin_width());

        group.bench_with_input(BenchmarkId::new("list", n), &n, |b, _| {
            b.iter(|| list.rho_delta(DC).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ch", n), &n, |b, _| {
            b.iter(|| ch.rho_delta(DC).unwrap())
        });
        if n <= 2_000 {
            let naive = LeanDpc::build(&data);
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| naive.rho_delta(DC).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_scaling);
criterion_main!(benches);
