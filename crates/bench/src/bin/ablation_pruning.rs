//! Harness binary regenerating the `ablation_pruning` experiment.
//! Run with `cargo run -p dpc-bench --release --bin ablation_pruning -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("ablation_pruning");
}
