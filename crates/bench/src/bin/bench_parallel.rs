//! `bench_parallel`: measures parallel ρ/δ query scaling of the tree indexes
//! and writes the `BENCH_parallel.json` snapshot.
//!
//! ```text
//! bench_parallel [--n N] [--dc F] [--seed S] [--reps R]
//!                [--threads 1,2,4,8] [--out FILE | --no-out]
//! ```
//!
//! The committed snapshot at the repository root is produced with the
//! defaults (`--n 20000 --out BENCH_parallel.json`); CI runs a tiny smoke
//! invocation so the benchmark cannot rot.

use std::path::PathBuf;

use dpc_bench::parallel_scaling::{run, ScalingOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match main_with_args(args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: bench_parallel [--n N] [--dc F] [--seed S] [--reps R] \
                 [--threads 1,2,4,8] [--out FILE | --no-out]"
            );
            std::process::exit(2);
        }
    }
}

fn main_with_args(args: Vec<String>) -> Result<(), String> {
    let (options, out) = parse_args(args)?;
    let report = run(&options);
    print!("{}", report.render());
    if let Some(path) = out {
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("snapshot written to {}", path.display());
    }
    Ok(())
}

fn parse_args(args: Vec<String>) -> Result<(ScalingOptions, Option<PathBuf>), String> {
    let mut options = ScalingOptions::default();
    let mut out = Some(PathBuf::from("target/experiments/BENCH_parallel.json"));
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--n" => {
                options.n = value_of("--n")?
                    .parse()
                    .map_err(|_| "invalid --n value".to_string())?;
                if options.n == 0 {
                    return Err("--n must be positive".into());
                }
            }
            "--dc" => {
                options.dc = value_of("--dc")?
                    .parse()
                    .map_err(|_| "invalid --dc value".to_string())?;
                if !(options.dc.is_finite() && options.dc > 0.0) {
                    return Err("--dc must be a positive finite number".into());
                }
            }
            "--seed" => {
                options.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--reps" => {
                options.repetitions = value_of("--reps")?
                    .parse()
                    .map_err(|_| "invalid --reps value".to_string())?;
                if options.repetitions == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--threads" => {
                let list = value_of("--threads")?;
                options.threads = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("invalid --threads list {list:?}"))?;
                if options.threads.is_empty() || options.threads.contains(&0) {
                    return Err("--threads needs a comma-separated list of positive counts".into());
                }
                if options.threads.first() != Some(&1) {
                    return Err("--threads must start with 1 (the speedup baseline)".into());
                }
            }
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--no-out" => out = None,
            other => return Err(format!("unrecognised argument {other:?}")),
        }
    }
    if let Some(path) = &out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    Ok((options, out))
}
