//! `bench_serve`: measures reader query latency percentiles against writer
//! epoch throughput in the concurrent serving layer, and writes the
//! `BENCH_serve.json` snapshot.
//!
//! ```text
//! bench_serve [--readers 0,1,2,4] [--window N] [--batch N] [--epochs N]
//!             [--ring N] [--dc F] [--seed S] [--out FILE | --no-out]
//! ```
//!
//! Each sweep row runs the same sliding-window replay (grid engine) with a
//! different number of concurrent reader threads issuing mixed point-lookup,
//! ε-neighbourhood and subscription queries; row 0 readers is the writer's
//! uncontended baseline. The committed snapshot default is
//! `target/experiments/BENCH_serve.json`; CI runs a tiny smoke invocation so
//! the benchmark cannot rot.

use std::path::PathBuf;

use dpc_bench::serve_throughput::{run, ServeBenchOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match main_with_args(args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: bench_serve [--readers 0,1,2,4] [--window N] [--batch N] \
                 [--epochs N] [--ring N] [--dc F] [--seed S] [--out FILE | --no-out]"
            );
            std::process::exit(2);
        }
    }
}

fn main_with_args(args: Vec<String>) -> Result<(), String> {
    let (options, out) = parse_args(args)?;
    let report = run(&options);
    print!("{}", report.render());
    if let Some(path) = out {
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("snapshot written to {}", path.display());
    }
    Ok(())
}

fn parse_args(args: Vec<String>) -> Result<(ServeBenchOptions, Option<PathBuf>), String> {
    let mut options = ServeBenchOptions::default();
    let mut out = Some(PathBuf::from("target/experiments/BENCH_serve.json"));
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--readers" => {
                let list = value_of("--readers")?;
                options.reader_counts = list
                    .split(',')
                    .map(|r| r.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("invalid --readers list {list:?}"))?;
                if options.reader_counts.is_empty() {
                    return Err("--readers needs a comma-separated list of counts".into());
                }
            }
            "--window" => {
                options.window = value_of("--window")?
                    .parse()
                    .map_err(|_| "invalid --window value".to_string())?;
                if options.window == 0 {
                    return Err("--window must be positive".into());
                }
            }
            "--batch" => {
                options.batch = value_of("--batch")?
                    .parse()
                    .map_err(|_| "invalid --batch value".to_string())?;
                if options.batch == 0 {
                    return Err("--batch must be positive".into());
                }
            }
            "--epochs" => {
                options.epochs = value_of("--epochs")?
                    .parse()
                    .map_err(|_| "invalid --epochs value".to_string())?;
                if options.epochs == 0 {
                    return Err("--epochs must be positive".into());
                }
            }
            "--ring" => {
                options.ring = value_of("--ring")?
                    .parse()
                    .map_err(|_| "invalid --ring value".to_string())?;
                if options.ring == 0 {
                    return Err("--ring must be positive".into());
                }
            }
            "--dc" => {
                options.dc = value_of("--dc")?
                    .parse()
                    .map_err(|_| "invalid --dc value".to_string())?;
                if !(options.dc.is_finite() && options.dc > 0.0) {
                    return Err("--dc must be a positive finite number".into());
                }
            }
            "--seed" => {
                options.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--no-out" => out = None,
            other => return Err(format!("unrecognised argument {other:?}")),
        }
    }
    if options.batch > options.window {
        return Err(format!(
            "--batch {} exceeds --window {}: a sliding epoch cannot evict more \
             points than the window holds",
            options.batch, options.window
        ));
    }
    if let Some(path) = &out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    Ok((options, out))
}
