//! `bench_stream`: measures sliding-window streaming throughput
//! (incremental affected-set maintenance vs rebuild-from-scratch) and writes
//! the `BENCH_stream.json` snapshot.
//!
//! ```text
//! bench_stream [--engines grid,kdtree,rtree] [--windows 1000,4000]
//!              [--batches 1,64] [--policy incremental,rebuild,adaptive]
//!              [--kernels cutoff,gaussian[:H],exponential[:H]]
//!              [--updates N] [--dc F] [--seed S] [--threads N]
//!              [--out FILE | --no-out]
//! ```
//!
//! `--engine` is an alias of `--engines`; both take a comma-separated list
//! of updatable index families. `--batches` (alias `--batch`) sweeps the
//! epoch batch size: 1 is per-update maintenance, larger values amortise
//! the ρ/δ repairs and the clustering over whole epochs. `--policy` (alias
//! `--modes`) restricts which maintenance strategies are timed per cell —
//! by default all three run, so the snapshot shows the adaptive commit
//! policy next to both fixed strategies it chooses between. `--kernels`
//! (alias `--kernel`) sweeps density kernels: the default is the
//! paper-faithful cut-off alone, and a weighted kernel without an explicit
//! `:H` bandwidth uses `H = dc`. The committed snapshot at the repository
//! root is produced with `--kernels cutoff,gaussian --out
//! BENCH_stream.json`; CI runs tiny smoke invocations so the benchmark
//! cannot rot.

use std::path::PathBuf;

use dpc_bench::stream_throughput::{
    parse_kernel_spec, run, StreamBenchOptions, StreamEngine, StreamMode,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match main_with_args(args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: bench_stream [--engines grid,kdtree,rtree] [--windows 1000,4000] \
                 [--batches 1,64] [--policy incremental,rebuild,adaptive] \
                 [--kernels cutoff,gaussian[:H],exponential[:H]] [--updates N] \
                 [--dc F] [--seed S] [--threads N] [--out FILE | --no-out]"
            );
            std::process::exit(2);
        }
    }
}

fn main_with_args(args: Vec<String>) -> Result<(), String> {
    let (options, out) = parse_args(args)?;
    let report = run(&options);
    print!("{}", report.render());
    if let Some(path) = out {
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("snapshot written to {}", path.display());
    }
    Ok(())
}

fn parse_args(args: Vec<String>) -> Result<(StreamBenchOptions, Option<PathBuf>), String> {
    let mut options = StreamBenchOptions::default();
    let mut out = Some(PathBuf::from("target/experiments/BENCH_stream.json"));
    // Kernel specs are resolved after the loop: a weighted kernel without an
    // explicit bandwidth defaults to `dc`, which may be set by a later flag.
    let mut kernel_specs: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| iter.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--engines" | "--engine" => {
                let list = value_of("--engines")?;
                options.engines = list
                    .split(',')
                    .map(StreamEngine::parse)
                    .collect::<Result<Vec<_>, _>>()?;
                if options.engines.is_empty() {
                    return Err("--engines needs a comma-separated list of engines".into());
                }
            }
            "--windows" => {
                let list = value_of("--windows")?;
                options.windows = list
                    .split(',')
                    .map(|w| w.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("invalid --windows list {list:?}"))?;
                if options.windows.is_empty() || options.windows.contains(&0) {
                    return Err("--windows needs a comma-separated list of positive sizes".into());
                }
            }
            "--policy" | "--modes" => {
                let list = value_of("--policy")?;
                options.modes = list
                    .split(',')
                    .map(StreamMode::parse)
                    .collect::<Result<Vec<_>, _>>()?;
                if options.modes.is_empty() {
                    return Err("--policy needs a comma-separated list of modes".into());
                }
            }
            "--batches" | "--batch" => {
                let list = value_of("--batches")?;
                options.batches = list
                    .split(',')
                    .map(|b| b.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("invalid --batches list {list:?}"))?;
                if options.batches.is_empty() || options.batches.contains(&0) {
                    return Err("--batches needs a comma-separated list of positive sizes".into());
                }
            }
            "--kernels" | "--kernel" => kernel_specs = Some(value_of("--kernels")?),
            "--updates" => {
                options.updates = value_of("--updates")?
                    .parse()
                    .map_err(|_| "invalid --updates value".to_string())?;
                if options.updates == 0 {
                    return Err("--updates must be positive".into());
                }
            }
            "--dc" => {
                options.dc = value_of("--dc")?
                    .parse()
                    .map_err(|_| "invalid --dc value".to_string())?;
                if !(options.dc.is_finite() && options.dc > 0.0) {
                    return Err("--dc must be a positive finite number".into());
                }
            }
            "--seed" => {
                options.seed = value_of("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--threads" => {
                options.threads = value_of("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads value".to_string())?;
                if options.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--no-out" => out = None,
            other => return Err(format!("unrecognised argument {other:?}")),
        }
    }
    if let Some(list) = kernel_specs {
        options.kernels = list
            .split(',')
            .map(|spec| parse_kernel_spec(spec, options.dc))
            .collect::<Result<Vec<_>, _>>()?;
        if options.kernels.is_empty() {
            return Err("--kernels needs a comma-separated list of kernels".into());
        }
    }
    if let Some(path) = &out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    Ok((options, out))
}
