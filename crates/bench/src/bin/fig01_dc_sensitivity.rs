//! Harness binary regenerating the `fig01_dc_sensitivity` experiment.
//! Run with `cargo run -p dpc-bench --release --bin fig01_dc_sensitivity -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("fig01_dc_sensitivity");
}
