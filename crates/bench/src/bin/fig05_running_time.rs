//! Harness binary regenerating the `fig05_running_time` experiment.
//! Run with `cargo run -p dpc-bench --release --bin fig05_running_time -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("fig05_running_time");
}
