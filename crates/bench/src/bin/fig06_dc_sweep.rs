//! Harness binary regenerating the `fig06_dc_sweep` experiment.
//! Run with `cargo run -p dpc-bench --release --bin fig06_dc_sweep -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("fig06_dc_sweep");
}
