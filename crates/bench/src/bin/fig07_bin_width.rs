//! Harness binary regenerating the `fig07_bin_width` experiment.
//! Run with `cargo run -p dpc-bench --release --bin fig07_bin_width -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("fig07_bin_width");
}
