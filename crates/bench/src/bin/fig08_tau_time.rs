//! Harness binary regenerating the `fig08_tau_time` experiment.
//! Run with `cargo run -p dpc-bench --release --bin fig08_tau_time -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("fig08_tau_time");
}
