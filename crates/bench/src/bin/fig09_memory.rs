//! Harness binary regenerating the `fig09_memory` experiment.
//! Run with `cargo run -p dpc-bench --release --bin fig09_memory -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("fig09_memory");
}
