//! Harness binary regenerating the `fig10_quality` experiment.
//! Run with `cargo run -p dpc-bench --release --bin fig10_quality -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("fig10_quality");
}
