//! Harness binary that regenerates every table and figure of the paper
//! (or a selected subset).
//!
//! ```text
//! cargo run -p dpc-bench --release --bin repro -- all --scale 0.05
//! cargo run -p dpc-bench --release --bin repro -- fig05_running_time table3_memory
//! cargo run -p dpc-bench --release --bin repro -- --list
//! ```

fn main() {
    dpc_bench::run_repro_cli();
}
