//! Harness binary regenerating the `table3_memory` experiment.
//! Run with `cargo run -p dpc-bench --release --bin table3_memory -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("table3_memory");
}
