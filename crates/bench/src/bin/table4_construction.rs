//! Harness binary regenerating the `table4_construction` experiment.
//! Run with `cargo run -p dpc-bench --release --bin table4_construction -- [--scale S] [--seed N] [--reps R] [--out-dir DIR]`.

fn main() {
    dpc_bench::run_cli("table4_construction");
}
