//! Shared command-line entry point used by every harness binary.

use crate::experiments::{registry, support};
use crate::ExperimentConfig;

/// Runs a single named experiment with a configuration parsed from
/// `std::env::args`, printing its tables and persisting CSVs.
///
/// Exits the process with a non-zero status on a usage error.
pub fn run_cli(experiment: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_with_args(experiment, args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: {experiment} [--scale S] [--seed N] [--reps R] [--threads N] [--out-dir DIR | --no-out]"
            );
            std::process::exit(2);
        }
    }
}

/// Testable core of [`run_cli`]: runs `experiment` with the given raw
/// arguments.
pub fn run_with_args(experiment: &str, args: Vec<String>) -> Result<(), String> {
    let (config, rest) = ExperimentConfig::from_args(args)?;
    if !rest.is_empty() {
        return Err(format!("unrecognised arguments: {rest:?}"));
    }
    config.ensure_output_dir()?;
    let reg = registry();
    let (name, description, run) = reg
        .iter()
        .find(|(name, _, _)| *name == experiment)
        .ok_or_else(|| format!("unknown experiment {experiment:?}"))?;
    println!("== {description} ==");
    println!(
        "(scale = {}, seed = {}, repetitions = {})\n",
        config.scale, config.seed, config.repetitions
    );
    let tables = run(&config);
    support::emit(&config, name, &tables);
    Ok(())
}

/// Entry point of the `repro` binary: runs a list of experiments (or all of
/// them), sharing one configuration.
pub fn run_repro_cli() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_repro_with_args(args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: repro [all | <experiment>...] [--list] [--scale S] [--seed N] [--reps R] [--threads N] [--out-dir DIR | --no-out]");
            eprintln!("experiments:");
            for (name, description, _) in registry() {
                eprintln!("  {name:<24} {description}");
            }
            std::process::exit(2);
        }
    }
}

/// Testable core of [`run_repro_cli`].
pub fn run_repro_with_args(args: Vec<String>) -> Result<(), String> {
    let (config, rest) = ExperimentConfig::from_args(args)?;
    if rest.iter().any(|a| a == "--list") {
        for (name, description, _) in registry() {
            println!("{name:<24} {description}");
        }
        return Ok(());
    }
    config.ensure_output_dir()?;
    let reg = registry();
    let selected: Vec<&(&str, &str, crate::experiments::ExperimentFn)> =
        if rest.is_empty() || rest.iter().any(|a| a == "all") {
            reg.iter().collect()
        } else {
            let mut picked = Vec::new();
            for want in &rest {
                let found = reg
                    .iter()
                    .find(|(name, _, _)| name == want)
                    .ok_or_else(|| format!("unknown experiment {want:?}"))?;
                picked.push(found);
            }
            picked
        };
    for (name, description, run) in selected {
        println!("== {description} ==\n");
        let tables = run(&config);
        support::emit(&config, name, &tables);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(run_with_args("does_not_exist", vec!["--no-out".into()]).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(run_with_args("fig01_dc_sensitivity", vec!["--bogus".into()]).is_err());
    }

    #[test]
    fn repro_list_mode_succeeds_without_running_experiments() {
        assert!(run_repro_with_args(vec!["--list".into(), "--no-out".into()]).is_ok());
    }

    #[test]
    fn repro_rejects_unknown_experiment_names() {
        assert!(run_repro_with_args(vec!["nope".into(), "--no-out".into()]).is_err());
    }

    #[test]
    fn single_experiment_runs_end_to_end() {
        // The cheapest experiment at smoke scale, without persistence.
        assert!(run_with_args(
            "fig01_dc_sensitivity",
            vec![
                "--scale".into(),
                "0.002".into(),
                "--reps".into(),
                "1".into(),
                "--no-out".into()
            ],
        )
        .is_ok());
    }
}
