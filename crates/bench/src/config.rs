//! Experiment configuration and command-line parsing shared by all harness
//! binaries.

use std::path::PathBuf;

use dpc_core::ExecPolicy;

/// Configuration common to every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Dataset size multiplier relative to the paper (1.0 = paper scale).
    pub scale: f64,
    /// Seed for every dataset generator.
    pub seed: u64,
    /// Repetitions per timing measurement (median is reported).
    pub repetitions: usize,
    /// Worker threads for the ρ/δ queries (1 = sequential, the
    /// paper-faithful default).
    pub threads: usize,
    /// Directory where result CSVs are written (`None` = don't persist).
    pub output_dir: Option<PathBuf>,
}

/// Default output directory of every experiment binary (`--out-dir`
/// overrides it, `--no-out` disables persistence).
pub const DEFAULT_OUTPUT_DIR: &str = "target/experiments";

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.02,
            seed: 42,
            repetitions: 3,
            threads: 1,
            output_dir: Some(PathBuf::from(DEFAULT_OUTPUT_DIR)),
        }
    }
}

impl ExperimentConfig {
    /// A very small configuration for tests and CI smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            scale: 0.002,
            seed: 42,
            repetitions: 1,
            threads: 1,
            output_dir: None,
        }
    }

    /// The execution policy the configured thread count maps to.
    pub fn exec_policy(&self) -> ExecPolicy {
        ExecPolicy::from_threads(self.threads)
    }

    /// Parses `--scale`, `--seed`, `--reps`, `--threads`, `--out-dir` (alias
    /// `--out`) and `--no-out` from an argument list (unrecognised arguments
    /// are returned for the caller to handle).
    ///
    /// Returns the parsed configuration together with the leftover
    /// arguments.
    pub fn from_args<I>(args: I) -> Result<(Self, Vec<String>), String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut config = ExperimentConfig::default();
        let mut rest = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = iter.next().ok_or("--scale needs a value")?;
                    config.scale = v
                        .parse()
                        .map_err(|_| format!("invalid --scale value {v:?}"))?;
                    if config.scale <= 0.0 {
                        return Err("--scale must be positive".to_string());
                    }
                }
                "--seed" => {
                    let v = iter.next().ok_or("--seed needs a value")?;
                    config.seed = v
                        .parse()
                        .map_err(|_| format!("invalid --seed value {v:?}"))?;
                }
                "--reps" => {
                    let v = iter.next().ok_or("--reps needs a value")?;
                    config.repetitions = v
                        .parse()
                        .map_err(|_| format!("invalid --reps value {v:?}"))?;
                    if config.repetitions == 0 {
                        return Err("--reps must be at least 1".to_string());
                    }
                }
                "--threads" => {
                    let v = iter.next().ok_or("--threads needs a value")?;
                    config.threads = v
                        .parse()
                        .map_err(|_| format!("invalid --threads value {v:?}"))?;
                    if config.threads == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                }
                "--out-dir" | "--out" => {
                    let v = iter.next().ok_or_else(|| format!("{arg} needs a value"))?;
                    config.output_dir = Some(PathBuf::from(v));
                }
                "--no-out" => config.output_dir = None,
                other => rest.push(other.to_string()),
            }
        }
        Ok((config, rest))
    }

    /// Path for one result CSV, or `None` when persistence is disabled.
    pub fn csv_path(&self, name: &str) -> Option<PathBuf> {
        self.output_dir
            .as_ref()
            .map(|d| d.join(format!("{name}.csv")))
    }

    /// Ensures the output directory exists before any experiment runs.
    ///
    /// Returns a clear, actionable error (instead of letting every table
    /// write fail later) when the directory cannot be created — e.g. a
    /// read-only working directory. A `None` output directory is fine: it
    /// means persistence is disabled.
    pub fn ensure_output_dir(&self) -> Result<(), String> {
        if let Some(dir) = &self.output_dir {
            std::fs::create_dir_all(dir).map_err(|e| {
                format!(
                    "cannot create output directory {}: {e}\n\
                     (pass --out-dir DIR to choose a writable directory, or \
                     --no-out to skip writing CSVs)",
                    dir.display()
                )
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_sensible() {
        let c = ExperimentConfig::default();
        assert!(c.scale > 0.0 && c.scale < 1.0);
        assert!(c.repetitions >= 1);
        assert!(c.output_dir.is_some());
    }

    #[test]
    fn parses_all_flags() {
        let (c, rest) = ExperimentConfig::from_args(args(&[
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--reps",
            "5",
            "--out",
            "/tmp/results",
            "extra",
        ]))
        .unwrap();
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.repetitions, 5);
        assert_eq!(c.output_dir, Some(PathBuf::from("/tmp/results")));
        assert_eq!(rest, vec!["extra".to_string()]);
    }

    #[test]
    fn no_out_disables_persistence() {
        let (c, _) = ExperimentConfig::from_args(args(&["--no-out"])).unwrap();
        assert_eq!(c.output_dir, None);
        assert_eq!(c.csv_path("t"), None);
    }

    #[test]
    fn rejects_invalid_values() {
        assert!(ExperimentConfig::from_args(args(&["--scale", "zero"])).is_err());
        assert!(ExperimentConfig::from_args(args(&["--scale", "-1"])).is_err());
        assert!(ExperimentConfig::from_args(args(&["--reps", "0"])).is_err());
        assert!(ExperimentConfig::from_args(args(&["--seed"])).is_err());
        assert!(ExperimentConfig::from_args(args(&["--threads", "0"])).is_err());
        assert!(ExperimentConfig::from_args(args(&["--threads", "x"])).is_err());
    }

    #[test]
    fn threads_flag_maps_to_an_exec_policy() {
        let (c, _) = ExperimentConfig::from_args(args(&[])).unwrap();
        assert_eq!(c.threads, 1);
        assert_eq!(c.exec_policy(), ExecPolicy::Sequential);
        let (c, _) = ExperimentConfig::from_args(args(&["--threads", "4"])).unwrap();
        assert_eq!(c.threads, 4);
        assert_eq!(c.exec_policy(), ExecPolicy::Threads(4));
    }

    #[test]
    fn csv_path_joins_name() {
        let c = ExperimentConfig::default();
        let p = c.csv_path("fig05_running_time").unwrap();
        assert!(p.ends_with("fig05_running_time.csv"));
    }

    #[test]
    fn default_output_dir_is_under_target() {
        let c = ExperimentConfig::default();
        assert_eq!(c.output_dir, Some(PathBuf::from(DEFAULT_OUTPUT_DIR)));
        assert_eq!(DEFAULT_OUTPUT_DIR, "target/experiments");
    }

    #[test]
    fn out_dir_flag_and_out_alias_agree() {
        let (a, _) = ExperimentConfig::from_args(args(&["--out-dir", "/tmp/dpc-out"])).unwrap();
        let (b, _) = ExperimentConfig::from_args(args(&["--out", "/tmp/dpc-out"])).unwrap();
        assert_eq!(a.output_dir, Some(PathBuf::from("/tmp/dpc-out")));
        assert_eq!(a.output_dir, b.output_dir);
        assert!(ExperimentConfig::from_args(args(&["--out-dir"])).is_err());
    }

    #[test]
    fn ensure_output_dir_reports_a_clear_error() {
        // A directory path whose parent is a regular file cannot be created
        // on any platform.
        let blocker = std::env::temp_dir().join(format!("dpc-config-test-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let c = ExperimentConfig {
            output_dir: Some(blocker.join("nested/out")),
            ..ExperimentConfig::smoke()
        };
        let err = c.ensure_output_dir().unwrap_err();
        std::fs::remove_file(&blocker).unwrap();
        assert!(err.contains("--no-out"), "error must be actionable: {err}");
        assert!(
            err.contains("dpc-config-test"),
            "error names the dir: {err}"
        );
        // Disabled persistence never touches the filesystem.
        assert!(ExperimentConfig::smoke().ensure_output_dir().is_ok());
    }
}
