//! Ablation study: how much do the two pruning rules (Lemma 1 and Lemma 2)
//! contribute, and how do the four tree variants compare?
//!
//! Not a figure of the paper, but the design decisions the paper motivates
//! qualitatively ("this is highly effectual in case of peak objects", "the
//! pruning we developed avoids exploring most of the tree nodes") deserve
//! numbers. For two representative datasets (grid-structured Birch and
//! heavily skewed Gowalla) and each tree index, the δ-query runs with both
//! prunings, each pruning alone, and no pruning at all.

use dpc_core::{DeltaResult, Rho};
use dpc_datasets::DatasetKind;
use dpc_metrics::ResultTable;
use dpc_tree_index::{DeltaQueryConfig, GridIndex, KdTree, Quadtree, QueryStats, RTree};

use crate::experiments::support;
use crate::ExperimentConfig;

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    [DatasetKind::Birch, DatasetKind::Gowalla]
        .into_iter()
        .map(|kind| ablate_one(kind, config))
        .collect()
}

/// The four pruning configurations compared.
fn pruning_variants() -> [(&'static str, DeltaQueryConfig); 4] {
    [
        ("density + distance", DeltaQueryConfig::default()),
        (
            "density only",
            DeltaQueryConfig {
                density_pruning: true,
                distance_pruning: false,
            },
        ),
        (
            "distance only",
            DeltaQueryConfig {
                density_pruning: false,
                distance_pruning: true,
            },
        ),
        ("none", DeltaQueryConfig::no_pruning()),
    ]
}

fn ablate_one(kind: DatasetKind, config: &ExperimentConfig) -> ResultTable {
    let data = support::dataset_for(kind, config);
    let dc = kind.default_dc();

    let quadtree = Quadtree::build(&data);
    let rtree = RTree::build(&data);
    let kdtree = KdTree::build(&data);
    let grid = GridIndex::build(&data);

    let mut table = ResultTable::new(
        format!(
            "Pruning ablation ({}) — delta-query cost per index and pruning configuration (n = {}, dc = {dc})",
            kind.name(),
            data.len()
        ),
        &["index", "pruning", "delta time (s)", "points scanned", "nodes visited"],
    );

    type DeltaFn<'a> = Box<dyn Fn(&[Rho], &DeltaQueryConfig) -> (DeltaResult, QueryStats) + 'a>;
    let indices: Vec<(&str, Vec<Rho>, DeltaFn)> = vec![
        (
            "Quadtree",
            dpc_core::DpcIndex::rho(&quadtree, dc).expect("rho"),
            Box::new(|rho: &[Rho], cfg: &DeltaQueryConfig| {
                quadtree.delta_with_config(dc, rho, cfg).expect("delta")
            }),
        ),
        (
            "R-tree",
            dpc_core::DpcIndex::rho(&rtree, dc).expect("rho"),
            Box::new(|rho: &[Rho], cfg: &DeltaQueryConfig| {
                rtree.delta_with_config(dc, rho, cfg).expect("delta")
            }),
        ),
        (
            "k-d tree",
            dpc_core::DpcIndex::rho(&kdtree, dc).expect("rho"),
            Box::new(|rho: &[Rho], cfg: &DeltaQueryConfig| {
                kdtree.delta_with_config(dc, rho, cfg).expect("delta")
            }),
        ),
        (
            "Grid",
            dpc_core::DpcIndex::rho(&grid, dc).expect("rho"),
            Box::new(|rho: &[Rho], cfg: &DeltaQueryConfig| {
                grid.delta_with_config(dc, rho, cfg).expect("delta")
            }),
        ),
    ];

    for (name, rho, delta_fn) in &indices {
        for (pruning_name, pruning) in pruning_variants() {
            let reps = config.repetitions.max(1);
            let (time, (_, stats)) = dpc_metrics::measure_median(reps, || delta_fn(rho, &pruning));
            table.add_row(&[
                name.to_string(),
                pruning_name.to_string(),
                support::secs(time),
                stats.points_scanned.to_string(),
                stats.nodes_visited.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_tables_with_sixteen_rows() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.num_rows(), 16);
        }
    }

    #[test]
    fn full_pruning_scans_no_more_points_than_no_pruning() {
        let tables = run(&ExperimentConfig::smoke());
        for t in &tables {
            let rows: Vec<Vec<String>> = t
                .to_csv()
                .lines()
                .skip(1)
                .map(|l| l.split(',').map(str::to_string).collect())
                .collect();
            for chunk in rows.chunks(4) {
                let full: u64 = chunk[0][3].parse().unwrap();
                let none: u64 = chunk[3][3].parse().unwrap();
                assert!(full <= none, "index {}: {full} > {none}", chunk[0][0]);
            }
        }
    }
}
