//! Figure 1: the clustering produced by DPC changes drastically with `dc`.
//!
//! The paper illustrates this on the Gowalla check-in dataset with
//! `dc ∈ {0.001, 0.01, 1.0, 10.0}`. We run the two index queries (R-tree
//! index) on the Gowalla-like generator, select centres with the natural
//! decision-graph rule — a centre has above-average density and `δ > dc`
//! (i.e. it is a density peak at the chosen scale) — and report how the
//! number of clusters and the assignment change with `dc`.

use dpc_core::{assign_clusters, AssignmentOptions, CenterSelection, DecisionGraph, DensityOrder};
use dpc_datasets::DatasetKind;
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::{ExperimentConfig, IndexKind};

/// The four cut-off distances of Figure 1.
pub const FIG1_DC_VALUES: [f64; 4] = [0.001, 0.01, 1.0, 10.0];

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    let kind = DatasetKind::Gowalla;
    let data = support::dataset_for(kind, config);
    let index = IndexKind::RTree.build(&data, kind);

    let mut table = ResultTable::new(
        format!(
            "Figure 1 — DPC clusterings of a Gowalla-like dataset (n = {}) under different dc",
            data.len()
        ),
        &[
            "dc",
            "clusters",
            "largest cluster %",
            "median cluster size",
            "query time (s)",
        ],
    );

    for dc in FIG1_DC_VALUES {
        let (query_time, (rho, deltas)) =
            dpc_metrics::measure_median(config.repetitions.max(1), || {
                index.rho_delta(dc).expect("queries must succeed")
            });
        let graph = DecisionGraph::new(rho.clone(), &deltas).expect("decision graph");
        // Centres: above-average density and a dependent distance larger than
        // dc (a local peak at scale dc). Fall back to the single densest
        // point when the rule selects nothing (enormous dc).
        let mean_rho = rho.iter().sum::<f64>() / data.len().max(1) as f64;
        let selection = CenterSelection::Threshold {
            rho_min: mean_rho.ceil(),
            delta_min: dc,
        };
        let centers = graph
            .select_centers(&selection)
            .or_else(|_| graph.select_centers(&CenterSelection::TopKGamma { k: 1 }))
            .expect("centre selection");
        let order = DensityOrder::new(&rho);
        let clustering = assign_clusters(
            &data,
            &order,
            &deltas,
            &centers,
            dc,
            &AssignmentOptions::default(),
        )
        .expect("assignment");

        let mut sizes = clustering.sizes();
        sizes.sort_unstable();
        let largest = *sizes.last().unwrap_or(&0);
        let median = sizes.get(sizes.len() / 2).copied().unwrap_or(0);
        table.add_row(&[
            format!("{dc}"),
            format!("{}", clustering.num_clusters()),
            format!("{:.1}", 100.0 * largest as f64 / data.len().max(1) as f64),
            format!("{median}"),
            support::secs(query_time),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_dc() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), FIG1_DC_VALUES.len());
    }

    #[test]
    fn cluster_count_depends_on_dc() {
        // The whole point of Figure 1: at least two different dc values must
        // give a different number of clusters.
        let tables = run(&ExperimentConfig::smoke());
        let csv = tables[0].to_csv();
        let clusters: Vec<&str> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap())
            .collect();
        assert!(
            clusters.windows(2).any(|w| w[0] != w[1]),
            "clusters: {clusters:?}"
        );
    }

    #[test]
    fn moderate_dc_yields_many_clusters_and_huge_dc_collapses_them() {
        let tables = run(&ExperimentConfig::smoke());
        let csv = tables[0].to_csv();
        let counts: Vec<usize> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        // Some dc in the sweep resolves many hotspots; the largest dc merges
        // almost everything — the qualitative story of Figure 1.
        let max = *counts.iter().max().unwrap();
        let last = *counts.last().unwrap();
        assert!(max > 5 * last.max(1), "{counts:?}");
        assert!(last <= 10, "{counts:?}");
    }
}
