//! Figure 5: ρ+δ query running time of every index on every dataset.
//!
//! The paper compares List, CH, R-tree, Quadtree and the original DPC
//! algorithm on the six datasets of Table 2 at one representative `dc` per
//! dataset. The full list-based indices and the naive baseline only run on
//! the smaller datasets (memory wall); larger datasets show `-` for them,
//! exactly as the paper's bar chart omits those bars.

use dpc_datasets::{DatasetKind, PAPER_DATASETS};
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::{ExperimentConfig, IndexKind};

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    let mut table = ResultTable::new(
        format!(
            "Figure 5 — query running time in seconds (scale = {}, dc = per-dataset default)",
            config.scale
        ),
        &[
            "dataset", "n", "dc", "List", "CH", "R-tree", "Quadtree", "DPC",
        ],
    );

    for kind in PAPER_DATASETS {
        let data = support::dataset_for(kind, config);
        let dc = kind.default_dc();
        let mut cells = vec![
            kind.name().to_string(),
            data.len().to_string(),
            format!("{dc}"),
        ];
        for index_kind in [
            IndexKind::List,
            IndexKind::Ch,
            IndexKind::RTree,
            IndexKind::Quadtree,
            IndexKind::Naive,
        ] {
            cells.push(measure(index_kind, kind, &data, dc, config));
        }
        table.add_row(&cells);
    }
    vec![table]
}

fn measure(
    index_kind: IndexKind,
    dataset_kind: DatasetKind,
    data: &dpc_core::Dataset,
    dc: f64,
    config: &ExperimentConfig,
) -> String {
    if !index_kind.feasible_for(dataset_kind, data.len())
        || data.len() > support::FULL_LIST_LIMIT && index_kind.is_list_based()
    {
        return "-".to_string();
    }
    let index = index_kind.build(data, dataset_kind);
    support::secs(support::query_time(index.as_ref(), dc, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_dataset() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), PAPER_DATASETS.len());
    }

    #[test]
    fn every_cell_is_a_time_or_a_dash() {
        let tables = run(&ExperimentConfig::smoke());
        for line in tables[0].to_csv().lines().skip(1) {
            for cell in line.split(',').skip(3) {
                assert!(cell == "-" || cell.parse::<f64>().is_ok(), "cell {cell:?}");
            }
        }
    }
}
