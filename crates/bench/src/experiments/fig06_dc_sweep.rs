//! Figure 6: query running time as a function of the cut-off distance `dc`.
//!
//! One sub-table per dataset. Rows are the five paper `dc` values plus `L`
//! (the largest possible `dc`, the bounding-box diameter); columns are the
//! four indices. List-based indices use their approximate variant on the
//! large datasets (the paper does the same, with the largest τ).

use dpc_core::DpcIndex;
use dpc_datasets::{DatasetKind, PAPER_DATASETS};
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::{ExperimentConfig, IndexKind};

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    PAPER_DATASETS
        .into_iter()
        .map(|kind| sweep_one(kind, config))
        .collect()
}

fn sweep_one(kind: DatasetKind, config: &ExperimentConfig) -> ResultTable {
    let data = support::dataset_for(kind, config);
    let approximate_lists = !kind.full_list_feasible() || data.len() > support::FULL_LIST_LIMIT;
    let (list_kind, ch_kind, suffix) = if approximate_lists {
        (
            IndexKind::ListApprox,
            IndexKind::ChApprox,
            " (approx. lists)",
        )
    } else {
        (IndexKind::List, IndexKind::Ch, "")
    };

    let list = list_kind.build(&data, kind);
    let ch = ch_kind.build(&data, kind);
    let quadtree = IndexKind::Quadtree.build(&data, kind);
    let rtree = IndexKind::RTree.build(&data, kind);
    let indices: [(&str, &dyn DpcIndex); 4] = [
        ("List", list.as_ref()),
        ("CH", ch.as_ref()),
        ("Quadtree", quadtree.as_ref()),
        ("R-tree", rtree.as_ref()),
    ];

    let mut table = ResultTable::new(
        format!(
            "Figure 6 ({}) — query time in seconds vs dc (n = {}){}",
            kind.name(),
            data.len(),
            suffix
        ),
        &["dc", "List", "CH", "Quadtree", "R-tree"],
    );

    let mut dcs: Vec<(String, f64)> = kind
        .fig6_dc_values()
        .iter()
        .map(|&dc| (format!("{dc}"), dc))
        .collect();
    // "L": the largest meaningful dc (bounding-box diameter, slightly
    // inflated so every pair is within range).
    dcs.push(("L".to_string(), data.bbox_diameter() * 1.01));

    for (label, dc) in dcs {
        let mut cells = vec![label];
        for (_, index) in &indices {
            cells.push(support::secs(support::query_time(*index, dc, config)));
        }
        table.add_row(&cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_table_per_dataset_with_six_rows() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), PAPER_DATASETS.len());
        for t in &tables {
            assert_eq!(t.num_rows(), 6);
        }
    }

    #[test]
    fn last_row_is_the_largest_dc() {
        let tables = run(&ExperimentConfig::smoke());
        let csv = tables[0].to_csv();
        assert!(csv.lines().last().unwrap().starts_with("L,"));
    }
}
