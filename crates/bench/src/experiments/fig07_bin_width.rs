//! Figure 7: influence of the CH Index bin width `w` on query time.
//!
//! For each of the four large datasets the paper sweeps four bin widths at
//! three `dc` values. Larger bins mean a larger list section to search per
//! object, so the query time grows with `w`. The CH Index is built once per
//! `w` (reusing the same RN-Lists) and queried at every `dc`.

use dpc_datasets::DatasetKind;
use dpc_list_index::{ChIndex, NeighborLists};
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::ExperimentConfig;

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    support::large_datasets()
        .into_iter()
        .map(|kind| sweep_one(kind, config))
        .collect()
}

fn sweep_one(kind: DatasetKind, config: &ExperimentConfig) -> ResultTable {
    let data = support::dataset_for(kind, config);
    let tau = kind
        .largest_tau()
        .expect("large datasets define a largest tau");
    let w_values = kind
        .fig7_w_values()
        .expect("large datasets define w values");
    let dc_values = kind
        .fig7_dc_values()
        .expect("large datasets define fig7 dc values");

    // The RN-Lists are independent of w; build them once.
    let lists = NeighborLists::build(&data, Some(tau));

    let mut columns = vec!["w".to_string()];
    columns.extend(dc_values.iter().map(|dc| format!("dc={dc}")));
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        format!(
            "Figure 7 ({}) — CH Index query time in seconds vs bin width w (n = {}, tau = {tau})",
            kind.name(),
            data.len()
        ),
        &column_refs,
    );

    for &w in w_values {
        let ch = ChIndex::from_lists(&data, lists.clone(), w);
        let mut cells = vec![format!("{w}")];
        for &dc in dc_values {
            cells.push(support::secs(support::query_time(&ch, dc, config)));
        }
        table.add_row(&cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_tables_with_one_row_per_w() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 4);
        for (t, kind) in tables.iter().zip(support::large_datasets()) {
            assert_eq!(t.num_rows(), kind.fig7_w_values().unwrap().len());
        }
    }
}
