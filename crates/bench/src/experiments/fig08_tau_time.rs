//! Figure 8: influence of the neighbour threshold `τ` on the query time of
//! the approximate list-based indices.
//!
//! For each large dataset the paper fixes `dc` (§5.4) and sweeps three τ
//! values above it: the shorter the RN-Lists, the faster both indices
//! answer, with the CH Index varying less because its ρ-query already
//! touches only one bin.

use dpc_datasets::DatasetKind;
use dpc_list_index::{ChIndex, ListIndex};
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::ExperimentConfig;

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    support::large_datasets()
        .into_iter()
        .map(|kind| sweep_one(kind, config))
        .collect()
}

fn sweep_one(kind: DatasetKind, config: &ExperimentConfig) -> ResultTable {
    let data = support::dataset_for(kind, config);
    let dc = kind
        .approx_dc()
        .expect("large datasets define a fixed dc for the tau study");
    let taus = kind
        .fig8_tau_values()
        .expect("large datasets define tau values");

    let mut table = ResultTable::new(
        format!(
            "Figure 8 ({}) — approximate index query time in seconds vs tau (n = {}, dc = {dc})",
            kind.name(),
            data.len()
        ),
        &["tau", "List", "CH Index"],
    );

    for &tau in taus {
        let list = ListIndex::build_approx(&data, tau);
        let ch = ChIndex::build_approx(&data, kind.default_bin_width(), tau);
        table.add_row(&[
            format!("{tau}"),
            support::secs(support::query_time(&list, dc, config)),
            support::secs(support::query_time(&ch, dc, config)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_tables_with_one_row_per_tau() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 4);
        for (t, kind) in tables.iter().zip(support::large_datasets()) {
            assert_eq!(t.num_rows(), kind.fig8_tau_values().unwrap().len());
        }
    }
}
