//! Figure 9: memory of the CH histograms as a function of `w` (9a) and
//! memory of the approximate List Index as a function of `τ` (9b).

use dpc_core::DpcIndex;
use dpc_list_index::{ChIndex, ListIndex, NeighborLists};
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::ExperimentConfig;

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    vec![histogram_memory(config), tau_memory(config)]
}

/// Figure 9a: histogram memory (MiB) for each bin width, per dataset.
fn histogram_memory(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        format!(
            "Figure 9a — CH histogram memory in MiB vs bin width w (scale = {})",
            config.scale
        ),
        &["dataset", "w", "histogram MiB", "total index MiB"],
    );
    for kind in support::large_datasets() {
        let data = support::dataset_for(kind, config);
        let tau = kind
            .largest_tau()
            .expect("large datasets define a largest tau");
        let lists = NeighborLists::build(&data, Some(tau));
        for &w in kind.fig7_w_values().expect("w values") {
            let ch = ChIndex::from_lists(&data, lists.clone(), w);
            table.add_row(&[
                kind.name().to_string(),
                format!("{w}"),
                support::mib(ch.histogram_memory_bytes()),
                support::mib(ch.memory_bytes()),
            ]);
        }
    }
    table
}

/// Figure 9b: approximate List Index memory (MiB) for each τ, per dataset.
fn tau_memory(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        format!(
            "Figure 9b — approximate List Index memory in MiB vs tau (scale = {})",
            config.scale
        ),
        &["dataset", "tau", "List Index MiB", "stored entries"],
    );
    for kind in support::large_datasets() {
        let data = support::dataset_for(kind, config);
        for &tau in kind.fig8_tau_values().expect("tau values") {
            let list = ListIndex::build_approx(&data, tau);
            table.add_row(&[
                kind.name().to_string(),
                format!("{tau}"),
                support::mib(list.memory_bytes()),
                list.lists().total_entries().to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_tables() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 2);
        assert!(tables[0].num_rows() > 0);
        assert!(tables[1].num_rows() > 0);
    }

    #[test]
    fn histogram_memory_shrinks_as_w_grows() {
        let tables = run(&ExperimentConfig::smoke());
        let csv = tables[0].to_csv();
        // Within the first dataset block, the histogram memory of the first
        // (smallest) w must be at least that of the last (largest) w.
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .filter(|l| l.starts_with("Birch"))
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let first: f64 = rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(first >= last, "first = {first}, last = {last}");
    }

    #[test]
    fn list_memory_grows_with_tau() {
        let tables = run(&ExperimentConfig::smoke());
        let csv = tables[1].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .filter(|l| l.starts_with("Birch"))
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let first: usize = rows.first().unwrap()[3].parse().unwrap();
        let last: usize = rows.last().unwrap()[3].parse().unwrap();
        assert!(last >= first, "entries must not shrink as tau grows");
    }
}
