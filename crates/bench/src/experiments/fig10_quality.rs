//! Figure 10: clustering quality of the approximate List Index against the
//! exact DPC clustering, as the neighbour threshold `τ` shrinks.
//!
//! The reference clustering is produced by an exact index (the R-tree — any
//! exact index yields the identical clustering) at the dataset's fixed `dc`;
//! the obtained clustering uses the approximate List Index with RN-Lists
//! truncated at `τ`. Precision, Recall and F1 are the paper's pair-counting
//! metrics (Equations 3–5); the Adjusted Rand Index is reported as an extra
//! column. Expected shape: quality ≈ 1 while `τ ≥ dc`, collapsing once `τ`
//! drops below `dc`.

use dpc_core::pipeline::cluster_with_index;
use dpc_core::ClusterId;
use dpc_datasets::DatasetKind;
use dpc_list_index::ListIndex;
use dpc_metrics::PairScores;
use dpc_metrics::{adjusted_rand_index, pair_counting_scores_for, ResultTable};

use crate::experiments::support;
use crate::{ExperimentConfig, IndexKind};

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    support::large_datasets()
        .into_iter()
        .map(|kind| quality_one(kind, config))
        .collect()
}

fn quality_one(kind: DatasetKind, config: &ExperimentConfig) -> ResultTable {
    let data = support::dataset_for(kind, config);
    let dc = kind
        .approx_dc()
        .expect("large datasets define a fixed dc for the quality study");
    let taus = kind
        .fig10_tau_values()
        .expect("large datasets define fig10 tau values");
    // Both clusterings use the same, deterministic centre selection: the
    // top-k points by γ, with k the dataset's documented component count
    // (capped for very small scaled-down instances). This mirrors the paper,
    // where the same decision-graph centres are used for the reference and
    // the approximate runs.
    let k = kind.natural_clusters().min(data.len() / 5).max(2);
    let params =
        dpc_core::DpcParams::new(dc).with_centers(dpc_core::CenterSelection::TopKGamma { k });

    let reference_index = IndexKind::RTree.build(&data, kind);
    let reference = cluster_with_index(reference_index.as_ref(), &params)
        .expect("reference clustering must succeed");

    let mut table = ResultTable::new(
        format!(
            "Figure 10 ({}) — quality of the approximate List Index vs tau (n = {}, dc = {dc}, reference = exact DPC)",
            kind.name(),
            data.len()
        ),
        &["tau", "precision", "recall", "f1", "ari", "clusters"],
    );

    for &tau in taus {
        let approx = ListIndex::build_approx(&data, tau);
        let obtained =
            cluster_with_index(&approx, &params).expect("approximate clustering must succeed");
        let scores: PairScores = pair_counting_scores_for(&obtained, &reference);
        let obtained_labels: Vec<Option<ClusterId>> =
            obtained.labels().iter().map(|&l| Some(l)).collect();
        let reference_labels: Vec<Option<ClusterId>> =
            reference.labels().iter().map(|&l| Some(l)).collect();
        let ari = adjusted_rand_index(&obtained_labels, &reference_labels);
        table.add_row(&[
            format!("{tau}"),
            format!("{:.4}", scores.precision),
            format!("{:.4}", scores.recall),
            format!("{:.4}", scores.f1),
            format!("{:.4}", ari),
            obtained.num_clusters().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_tables_with_one_row_per_tau() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 4);
        for (t, kind) in tables.iter().zip(support::large_datasets()) {
            assert_eq!(t.num_rows(), kind.fig10_tau_values().unwrap().len());
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let tables = run(&ExperimentConfig::smoke());
        for t in &tables {
            for line in t.to_csv().lines().skip(1) {
                let cells: Vec<&str> = line.split(',').collect();
                for cell in &cells[1..4] {
                    let v: f64 = cell.parse().unwrap();
                    assert!((0.0..=1.0).contains(&v), "{cell}");
                }
            }
        }
    }

    #[test]
    fn quality_is_high_when_tau_is_at_least_dc() {
        // For the Birch-like dataset the largest tau is far above dc, so the
        // approximate clustering must essentially match the exact one.
        let config = ExperimentConfig {
            scale: 0.005,
            ..ExperimentConfig::smoke()
        };
        let tables = run(&config);
        let birch = &tables[0];
        let last_row = birch.to_csv().lines().last().unwrap().to_string();
        let f1: f64 = last_row.split(',').nth(3).unwrap().parse().unwrap();
        assert!(f1 > 0.9, "f1 = {f1} for the largest tau");
    }
}
