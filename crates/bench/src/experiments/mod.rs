//! One module per table/figure of the paper's evaluation, plus the pruning
//! ablation. Every experiment is a pure function from an
//! [`ExperimentConfig`] to a list of [`ResultTable`]s; the binaries only
//! print and persist.

pub mod ablation_pruning;
pub mod fig01_dc_sensitivity;
pub mod fig05_running_time;
pub mod fig06_dc_sweep;
pub mod fig07_bin_width;
pub mod fig08_tau_time;
pub mod fig09_memory;
pub mod fig10_quality;
pub mod support;
pub mod table3_memory;
pub mod table4_construction;

use crate::ExperimentConfig;
use dpc_metrics::ResultTable;

/// Signature every experiment exposes.
pub type ExperimentFn = fn(&ExperimentConfig) -> Vec<ResultTable>;

/// Registry of all experiments: `(name, paper reference, function)`.
pub fn registry() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        (
            "fig01_dc_sensitivity",
            "Figure 1: clustering sensitivity to dc",
            fig01_dc_sensitivity::run as ExperimentFn,
        ),
        (
            "fig05_running_time",
            "Figure 5: query running time per index per dataset",
            fig05_running_time::run as ExperimentFn,
        ),
        (
            "table3_memory",
            "Table 3: index memory usage",
            table3_memory::run as ExperimentFn,
        ),
        (
            "table4_construction",
            "Table 4: index construction time",
            table4_construction::run as ExperimentFn,
        ),
        (
            "fig06_dc_sweep",
            "Figure 6: running time vs dc",
            fig06_dc_sweep::run as ExperimentFn,
        ),
        (
            "fig07_bin_width",
            "Figure 7: CH Index running time vs bin width w",
            fig07_bin_width::run as ExperimentFn,
        ),
        (
            "fig08_tau_time",
            "Figure 8: approximate index running time vs tau",
            fig08_tau_time::run as ExperimentFn,
        ),
        (
            "fig09_memory",
            "Figure 9: memory vs w and vs tau",
            fig09_memory::run as ExperimentFn,
        ),
        (
            "fig10_quality",
            "Figure 10: clustering quality of the approximate List Index vs tau",
            fig10_quality::run as ExperimentFn,
        ),
        (
            "ablation_pruning",
            "Ablation: pruning rules and tree-index variants",
            ablation_pruning::run as ExperimentFn,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let reg = registry();
        assert_eq!(reg.len(), 10);
        let mut names: Vec<&str> = reg.iter().map(|(n, _, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
    }
}
