//! Shared helpers for the experiment modules.

use std::time::Duration;

use dpc_core::{CenterSelection, Dataset, DpcIndex, DpcParams, Rho};
use dpc_datasets::{DatasetKind, DatasetSpec};
use dpc_metrics::ResultTable;

use crate::ExperimentConfig;

/// Hard cap on the size of any generated dataset, protecting the quadratic
/// list-based experiments from accidental huge `--scale` values. The paper's
/// own machine hits the same wall around this size.
pub const MAX_POINTS: usize = 200_000;

/// Above this size the full list-based indices and the naive baseline are
/// skipped (reported as `-`), mirroring the paper's memory wall.
pub const FULL_LIST_LIMIT: usize = 30_000;

/// Generates a dataset for one of the paper's dataset kinds at the
/// configured scale, capping the size at [`MAX_POINTS`].
pub fn dataset_for(kind: DatasetKind, config: &ExperimentConfig) -> Dataset {
    let mut scale = config.scale;
    let target = (kind.paper_size() as f64 * scale) as usize;
    if target > MAX_POINTS {
        scale = MAX_POINTS as f64 / kind.paper_size() as f64;
    }
    DatasetSpec::new(kind, scale, config.seed)
        .generate()
        .into_dataset()
}

/// Scales a paper distance parameter to the generated dataset.
///
/// The generators reproduce the paper's domains 1:1, so distances (`dc`, `w`,
/// `τ`) transfer unchanged; this hook exists so every experiment documents
/// that fact in one place.
pub fn scaled_distance(value: f64, _kind: DatasetKind, _config: &ExperimentConfig) -> f64 {
    value
}

/// Measures the combined ρ+δ query time (the quantity the paper's running-
/// time figures report), returning the median over the configured
/// repetitions. Runs under the configured thread count (`--threads`, default
/// sequential).
pub fn query_time(index: &dyn DpcIndex, dc: f64, config: &ExperimentConfig) -> Duration {
    let reps = config.repetitions.max(1);
    let policy = config.exec_policy();
    let (time, _) = dpc_metrics::measure_median(reps, || {
        index
            .rho_delta_with_policy(dc, policy)
            .expect("query must succeed")
    });
    time
}

/// Measures only the ρ-query time, under the configured thread count.
pub fn rho_time(index: &dyn DpcIndex, dc: f64, config: &ExperimentConfig) -> (Duration, Vec<Rho>) {
    let reps = config.repetitions.max(1);
    let policy = config.exec_policy();
    dpc_metrics::measure_median(reps, || {
        index
            .rho_with_policy(dc, policy)
            .expect("rho query must succeed")
    })
}

/// Standard clustering parameters used when an experiment needs an actual
/// clustering (Figures 1 and 10): automatic γ-gap centre selection capped at
/// 64 clusters.
pub fn clustering_params(dc: f64) -> DpcParams {
    DpcParams::new(dc).with_centers(CenterSelection::GammaGap { max_centers: 64 })
}

/// Formats a duration in seconds with four significant decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats a byte count in MiB with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Prints every table and persists it as CSV when the configuration asks for
/// it.
pub fn emit(config: &ExperimentConfig, experiment: &str, tables: &[ResultTable]) {
    for (i, table) in tables.iter().enumerate() {
        println!("{}", table.render());
        if let Some(path) = config.csv_path(&format!("{experiment}_{i}")) {
            if let Err(e) = table.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// The datasets used by the §5.3–5.4 parameter studies (the four the paper
/// can only handle with approximation).
pub fn large_datasets() -> [DatasetKind; 4] {
    [
        DatasetKind::Birch,
        DatasetKind::Range,
        DatasetKind::Brightkite,
        DatasetKind::Gowalla,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_for_respects_scale_and_cap() {
        let config = ExperimentConfig {
            scale: 0.01,
            ..ExperimentConfig::smoke()
        };
        let d = dataset_for(DatasetKind::Query, &config);
        assert_eq!(d.len(), 500);

        let huge = ExperimentConfig {
            scale: 1000.0,
            ..ExperimentConfig::smoke()
        };
        let d = dataset_for(DatasetKind::S1, &huge);
        assert!(d.len() <= MAX_POINTS);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.5000");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
    }

    #[test]
    fn query_time_is_positive() {
        let config = ExperimentConfig::smoke();
        let data = dataset_for(DatasetKind::S1, &config);
        let index = crate::IndexKind::RTree.build(&data, DatasetKind::S1);
        let t = query_time(index.as_ref(), DatasetKind::S1.default_dc(), &config);
        assert!(t > Duration::ZERO);
    }
}
