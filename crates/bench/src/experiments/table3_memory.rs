//! Table 3: memory usage of every index on every dataset (MiB).
//!
//! For the four large datasets the paper can only store the list-based
//! indices in their approximate form (RN-Lists truncated at the largest τ
//! that fits); those entries are marked with `*`, as in the paper.

use dpc_datasets::PAPER_DATASETS;
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::{ExperimentConfig, IndexKind};

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    let mut table = ResultTable::new(
        format!(
            "Table 3 — index memory usage in MiB (scale = {})",
            config.scale
        ),
        &[
            "dataset",
            "n",
            "List Index",
            "CH Index",
            "R-tree",
            "Quadtree",
        ],
    );

    for kind in PAPER_DATASETS {
        let data = support::dataset_for(kind, config);
        let approximate_lists = !kind.full_list_feasible() || data.len() > support::FULL_LIST_LIMIT;
        let (list_kind, ch_kind, marker) = if approximate_lists {
            (IndexKind::ListApprox, IndexKind::ChApprox, "*")
        } else {
            (IndexKind::List, IndexKind::Ch, "")
        };
        let list = list_kind.build(&data, kind);
        let ch = ch_kind.build(&data, kind);
        let rtree = IndexKind::RTree.build(&data, kind);
        let quadtree = IndexKind::Quadtree.build(&data, kind);
        table.add_row(&[
            kind.name().to_string(),
            data.len().to_string(),
            format!("{}{marker}", support::mib(list.memory_bytes())),
            format!("{}{marker}", support::mib(ch.memory_bytes())),
            support::mib(rtree.memory_bytes()),
            support::mib(quadtree.memory_bytes()),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_rows_of_numeric_cells() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables[0].num_rows(), PAPER_DATASETS.len());
        for line in tables[0].to_csv().lines().skip(1) {
            for cell in line.split(',').skip(2) {
                assert!(
                    cell.trim_end_matches('*').parse::<f64>().is_ok(),
                    "cell {cell:?}"
                );
            }
        }
    }

    #[test]
    fn list_indices_use_more_memory_than_trees() {
        // At the smoke scale the table's 2-decimal MiB formatting rounds the
        // tiny indices to zero, so this invariant is checked on raw bytes for
        // a moderately sized exact dataset instead of through the table.
        use crate::IndexKind;
        use dpc_datasets::DatasetKind;
        let config = ExperimentConfig {
            scale: 0.01,
            ..ExperimentConfig::smoke()
        };
        let data = support::dataset_for(DatasetKind::Query, &config); // 500 points
        let list = IndexKind::List.build(&data, DatasetKind::Query);
        let rtree = IndexKind::RTree.build(&data, DatasetKind::Query);
        let quadtree = IndexKind::Quadtree.build(&data, DatasetKind::Query);
        assert!(list.memory_bytes() > 10 * rtree.memory_bytes());
        assert!(list.memory_bytes() > 10 * quadtree.memory_bytes());
    }

    #[test]
    fn large_datasets_are_marked_approximate() {
        let tables = run(&ExperimentConfig::smoke());
        let csv = tables[0].to_csv();
        let gowalla = csv.lines().last().unwrap();
        assert!(gowalla.contains('*'), "{gowalla}");
    }
}
