//! Table 4: index construction time (seconds).
//!
//! Following the paper, the CH Index column reports only the *extra* time
//! needed to build the cumulative histograms on top of an already built List
//! Index, while the List Index column reports the full N-List (or RN-List)
//! construction.

use dpc_core::Timer;
use dpc_datasets::PAPER_DATASETS;
use dpc_list_index::{ChIndex, NeighborLists};
use dpc_metrics::ResultTable;

use crate::experiments::support;
use crate::{ExperimentConfig, IndexKind};

/// Runs the experiment.
pub fn run(config: &ExperimentConfig) -> Vec<ResultTable> {
    let mut table = ResultTable::new(
        format!(
            "Table 4 — index construction time in seconds (scale = {})",
            config.scale
        ),
        &[
            "dataset",
            "n",
            "List Index",
            "CH Index (extra)",
            "R-tree",
            "Quadtree",
        ],
    );

    for kind in PAPER_DATASETS {
        let data = support::dataset_for(kind, config);
        let approximate_lists = !kind.full_list_feasible() || data.len() > support::FULL_LIST_LIMIT;
        let tau = if approximate_lists {
            kind.largest_tau()
        } else {
            None
        };
        let marker = if approximate_lists { "*" } else { "" };

        // List construction (full or approximate).
        let timer = Timer::start();
        let lists = NeighborLists::build(&data, tau);
        let list_time = timer.elapsed();

        // CH construction on top of the existing lists: histogram time only.
        let timer = Timer::start();
        let _ch = ChIndex::from_lists(&data, lists, kind.default_bin_width());
        let ch_time = timer.elapsed();

        let rtree = IndexKind::RTree.build(&data, kind);
        let quadtree = IndexKind::Quadtree.build(&data, kind);

        table.add_row(&[
            kind.name().to_string(),
            data.len().to_string(),
            format!("{}{marker}", support::secs(list_time)),
            format!("{}{marker}", support::secs(ch_time)),
            support::secs(rtree.stats().construction_time),
            support::secs(quadtree.stats().construction_time),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_dataset() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables[0].num_rows(), PAPER_DATASETS.len());
    }

    #[test]
    fn tree_construction_is_cheaper_than_list_construction() {
        // Use a slightly larger scale so the asymptotic gap is visible.
        let config = ExperimentConfig {
            scale: 0.01,
            repetitions: 1,
            output_dir: None,
            ..ExperimentConfig::smoke()
        };
        let tables = run(&config);
        let csv = tables[0].to_csv();
        // Check on the Query dataset row (exact lists, 500 points).
        let row = csv.lines().find(|l| l.starts_with("Query")).unwrap();
        let cells: Vec<&str> = row.split(',').collect();
        let list: f64 = cells[2].trim_end_matches('*').parse().unwrap();
        let rtree: f64 = cells[4].parse().unwrap();
        assert!(rtree <= list, "rtree = {rtree}, list = {list}");
    }
}
