//! Uniform construction of every index the experiments compare.

use dpc_baseline::LeanDpc;
use dpc_core::{Dataset, DpcIndex};
use dpc_datasets::DatasetKind;
use dpc_list_index::{ChIndex, ListIndex};
use dpc_tree_index::{GridIndex, KdTree, Quadtree, RTree};

/// The index structures compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// The paper's List Index (full N-Lists).
    List,
    /// The paper's Cumulative Histogram Index (full N-Lists + histograms).
    Ch,
    /// The approximate List Index (RN-Lists truncated at the dataset's
    /// largest τ).
    ListApprox,
    /// The approximate CH Index.
    ChApprox,
    /// The point-region quadtree.
    Quadtree,
    /// The STR-packed R-tree.
    RTree,
    /// The k-d tree (extension / ablation).
    KdTree,
    /// The uniform grid (extension / ablation).
    Grid,
    /// The original O(n²) DPC algorithm (memory-lean variant).
    Naive,
}

impl IndexKind {
    /// The four exact indices the paper's headline comparison covers, plus
    /// the naive baseline.
    pub const PAPER_SET: [IndexKind; 5] = [
        IndexKind::List,
        IndexKind::Ch,
        IndexKind::RTree,
        IndexKind::Quadtree,
        IndexKind::Naive,
    ];

    /// All tree-based indices (low-memory family).
    pub const TREES: [IndexKind; 4] = [
        IndexKind::Quadtree,
        IndexKind::RTree,
        IndexKind::KdTree,
        IndexKind::Grid,
    ];

    /// Short name used in table columns.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::List => "List",
            IndexKind::Ch => "CH",
            IndexKind::ListApprox => "List*",
            IndexKind::ChApprox => "CH*",
            IndexKind::Quadtree => "Quadtree",
            IndexKind::RTree => "R-tree",
            IndexKind::KdTree => "k-d tree",
            IndexKind::Grid => "Grid",
            IndexKind::Naive => "DPC",
        }
    }

    /// Parses an index name (case-insensitive; accepts the display names
    /// above and a few obvious aliases).
    pub fn parse(name: &str) -> Option<IndexKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "list" => Some(IndexKind::List),
            "ch" | "histogram" => Some(IndexKind::Ch),
            "list*" | "list-approx" | "listapprox" => Some(IndexKind::ListApprox),
            "ch*" | "ch-approx" | "chapprox" => Some(IndexKind::ChApprox),
            "quadtree" | "quad" => Some(IndexKind::Quadtree),
            "rtree" | "r-tree" => Some(IndexKind::RTree),
            "kdtree" | "kd" | "k-d tree" => Some(IndexKind::KdTree),
            "grid" => Some(IndexKind::Grid),
            "dpc" | "naive" | "baseline" => Some(IndexKind::Naive),
            _ => None,
        }
    }

    /// Whether the index stores per-object lists and therefore has `Θ(n²)`
    /// memory unless approximated.
    pub fn is_list_based(&self) -> bool {
        matches!(
            self,
            IndexKind::List | IndexKind::Ch | IndexKind::ListApprox | IndexKind::ChApprox
        )
    }

    /// Whether the index returns results identical to the baseline.
    pub fn is_exact(&self) -> bool {
        !matches!(self, IndexKind::ListApprox | IndexKind::ChApprox)
    }

    /// Builds the index over a dataset. The `dataset_kind` supplies the
    /// paper's per-dataset parameters (CH bin width `w`, approximation
    /// threshold `τ`).
    pub fn build(&self, dataset: &Dataset, dataset_kind: DatasetKind) -> Box<dyn DpcIndex> {
        let w = dataset_kind.default_bin_width();
        let tau = dataset_kind
            .largest_tau()
            .unwrap_or_else(|| dataset.bbox_diameter() / 4.0);
        match self {
            IndexKind::List => Box::new(ListIndex::build(dataset)),
            IndexKind::Ch => Box::new(ChIndex::build(dataset, w)),
            IndexKind::ListApprox => Box::new(ListIndex::build_approx(dataset, tau)),
            IndexKind::ChApprox => Box::new(ChIndex::build_approx(dataset, w, tau)),
            IndexKind::Quadtree => Box::new(Quadtree::build(dataset)),
            IndexKind::RTree => Box::new(RTree::build(dataset)),
            IndexKind::KdTree => Box::new(KdTree::build(dataset)),
            IndexKind::Grid => Box::new(GridIndex::build(dataset)),
            IndexKind::Naive => Box::new(LeanDpc::build(dataset)),
        }
    }

    /// Whether running the full (non-approximate) variant of this index at
    /// the given dataset size would be unreasonable, mirroring the paper's
    /// memory wall: the list-based indices and the naive baseline are only
    /// run in full on the small and medium datasets.
    pub fn feasible_for(&self, dataset_kind: DatasetKind, n: usize) -> bool {
        match self {
            IndexKind::List | IndexKind::Ch | IndexKind::Naive => {
                dataset_kind.full_list_feasible() || n <= 20_000
            }
            _ => true,
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_datasets::generators::s1;

    #[test]
    fn parse_round_trips_names() {
        for kind in [
            IndexKind::List,
            IndexKind::Ch,
            IndexKind::Quadtree,
            IndexKind::RTree,
            IndexKind::KdTree,
            IndexKind::Grid,
            IndexKind::Naive,
        ] {
            assert_eq!(IndexKind::parse(kind.name()), Some(kind), "{kind}");
        }
        assert_eq!(IndexKind::parse("nonsense"), None);
    }

    #[test]
    fn every_kind_builds_and_answers_queries() {
        let data = s1(1, 0.02).into_dataset(); // 100 points
        let kinds = [
            IndexKind::List,
            IndexKind::Ch,
            IndexKind::ListApprox,
            IndexKind::ChApprox,
            IndexKind::Quadtree,
            IndexKind::RTree,
            IndexKind::KdTree,
            IndexKind::Grid,
            IndexKind::Naive,
        ];
        for kind in kinds {
            let index = kind.build(&data, DatasetKind::S1);
            let (rho, deltas) = index.rho_delta(30_000.0).unwrap();
            assert_eq!(rho.len(), data.len(), "{kind}");
            assert_eq!(deltas.len(), data.len(), "{kind}");
            assert!(index.memory_bytes() > 0, "{kind}");
        }
    }

    #[test]
    fn exact_kinds_agree_with_each_other() {
        let data = s1(2, 0.02).into_dataset();
        let dc = 40_000.0;
        let reference = IndexKind::Naive.build(&data, DatasetKind::S1);
        let (ref_rho, ref_delta) = reference.rho_delta(dc).unwrap();
        for kind in [
            IndexKind::List,
            IndexKind::Ch,
            IndexKind::Quadtree,
            IndexKind::RTree,
            IndexKind::KdTree,
            IndexKind::Grid,
        ] {
            let index = kind.build(&data, DatasetKind::S1);
            let (rho, delta) = index.rho_delta(dc).unwrap();
            assert_eq!(rho, ref_rho, "{kind}");
            assert_eq!(delta.mu, ref_delta.mu, "{kind}");
        }
    }

    #[test]
    fn feasibility_mirrors_the_papers_memory_wall() {
        assert!(IndexKind::List.feasible_for(DatasetKind::S1, 5_000));
        assert!(IndexKind::List.feasible_for(DatasetKind::Query, 50_000));
        assert!(!IndexKind::List.feasible_for(DatasetKind::Gowalla, 1_256_680));
        assert!(IndexKind::RTree.feasible_for(DatasetKind::Gowalla, 1_256_680));
        assert!(IndexKind::ListApprox.feasible_for(DatasetKind::Gowalla, 1_256_680));
    }

    #[test]
    fn classification_helpers() {
        assert!(IndexKind::Ch.is_list_based());
        assert!(!IndexKind::RTree.is_list_based());
        assert!(IndexKind::List.is_exact());
        assert!(!IndexKind::ChApprox.is_exact());
    }
}
