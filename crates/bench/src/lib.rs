//! # dpc-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§5), plus Criterion micro-benchmarks.
//!
//! Each experiment lives in [`experiments`] as a `run(&ExperimentConfig)`
//! function returning one or more [`dpc_metrics::ResultTable`]s; the binaries
//! under `src/bin/` are thin wrappers that parse the command line, run one
//! experiment and print/persist its tables, and `src/bin/repro.rs` runs any
//! subset of them.
//!
//! ## Scale
//!
//! The paper's datasets reach 1.26 M points; the list-based indices are
//! `Θ(n²)` in memory and construction, so running the full grid at paper
//! scale is a batch job, not a default. Every experiment therefore accepts a
//! `--scale` factor relative to the paper's dataset sizes
//! ([`ExperimentConfig::scale`], default `0.02`). The *shape* of every result
//! — which index wins, how curves move with `dc`, `w` and `τ` — is preserved
//! at small scale; absolute numbers obviously shrink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod config;
pub mod experiments;
pub mod indexes;
pub mod parallel_scaling;
pub mod serve_throughput;
pub mod stream_throughput;

pub use cli::{run_cli, run_repro_cli};
pub use config::ExperimentConfig;
pub use indexes::IndexKind;
pub use parallel_scaling::{ScalingOptions, ScalingReport};
pub use serve_throughput::{ServeBenchOptions, ServeBenchReport};
pub use stream_throughput::{StreamBenchOptions, StreamBenchReport};
