//! The parallel query scaling benchmark behind `BENCH_parallel.json`.
//!
//! Measures the combined ρ+δ query time of the tree indexes at a fixed
//! dataset size across a sweep of thread counts, and renders the result as a
//! small JSON snapshot (machine info, per-run medians, speedups relative to
//! one thread). The committed `BENCH_parallel.json` at the repository root is
//! produced by the `bench_parallel` binary and gives future PRs a perf
//! baseline to compare against.
//!
//! Speedups here are *wall-clock* speedups, so they are bounded by the
//! number of physical cores the measuring machine exposes; the snapshot
//! records that number so a 1-core CI container is not mistaken for a
//! scaling regression.

use std::time::Duration;

use dpc_core::{DpcIndex, ExecPolicy};
use dpc_datasets::{DatasetKind, DatasetSpec};
use dpc_tree_index::{GridIndex, KdTree, Quadtree, RTree};

/// What to measure: dataset size, cut-off, thread sweep, repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingOptions {
    /// Number of points (the S1 generator is scaled to this size).
    pub n: usize,
    /// Cut-off distance of the measured queries.
    pub dc: f64,
    /// Seed of the dataset generator.
    pub seed: u64,
    /// Repetitions per (index, threads) cell; the median is reported.
    pub repetitions: usize,
    /// Thread counts to sweep. Must start with 1: the first entry is the
    /// speedup baseline the later entries are divided by.
    pub threads: Vec<usize>,
}

impl Default for ScalingOptions {
    fn default() -> Self {
        ScalingOptions {
            n: 20_000,
            dc: 30_000.0,
            seed: 42,
            repetitions: 3,
            threads: vec![1, 2, 4, 8],
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingMeasurement {
    /// Index name (`grid`, `kdtree`, `quadtree`, `rtree`).
    pub index: &'static str,
    /// Worker threads the queries ran on.
    pub threads: usize,
    /// Median combined ρ+δ query time.
    pub median: Duration,
    /// `median(1 thread) / median(this)` for the same index.
    pub speedup: f64,
}

/// The whole benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingReport {
    /// The options the benchmark ran with.
    pub options: ScalingOptions,
    /// CPUs the machine exposes (`std::thread::available_parallelism`).
    pub cpus: usize,
    /// All measurements, grouped by index in sweep order.
    pub measurements: Vec<ScalingMeasurement>,
}

/// Runs the sweep: builds each tree index once over an S1 dataset of
/// `options.n` points, then measures `rho_delta_with_policy` for every thread
/// count. Results are bit-identical across the sweep (asserted here), only
/// the wall-clock time varies.
///
/// # Panics
/// Panics if `options.threads` does not start with 1, or `repetitions == 0`.
pub fn run(options: &ScalingOptions) -> ScalingReport {
    assert_eq!(
        options.threads.first(),
        Some(&1),
        "the thread sweep must start with 1, the speedup baseline"
    );
    assert!(options.repetitions > 0, "need at least one repetition");
    let scale = options.n as f64 / DatasetKind::S1.paper_size() as f64;
    let data = DatasetSpec::new(DatasetKind::S1, scale, options.seed)
        .generate()
        .into_dataset();

    let indexes: Vec<(&'static str, Box<dyn DpcIndex>)> = vec![
        ("grid", Box::new(GridIndex::build(&data))),
        ("kdtree", Box::new(KdTree::build(&data))),
        ("quadtree", Box::new(Quadtree::build(&data))),
        ("rtree", Box::new(RTree::build(&data))),
    ];

    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut measurements = Vec::new();
    for (name, index) in &indexes {
        let reference = index
            .rho_delta(options.dc)
            .expect("sequential query must succeed");
        let mut base = Duration::ZERO;
        for &threads in &options.threads {
            let policy = ExecPolicy::Threads(threads);
            let (median, result) = dpc_metrics::measure_median(options.repetitions, || {
                index
                    .rho_delta_with_policy(options.dc, policy)
                    .expect("parallel query must succeed")
            });
            assert_eq!(
                result.0, reference.0,
                "{name}: parallel rho must be bit-identical"
            );
            assert_eq!(
                result.1.mu, reference.1.mu,
                "{name}: parallel mu must be bit-identical"
            );
            if threads == 1 {
                base = median;
            }
            let speedup = if median.as_nanos() == 0 {
                1.0
            } else {
                base.as_secs_f64() / median.as_secs_f64()
            };
            measurements.push(ScalingMeasurement {
                index: name,
                threads,
                median,
                speedup,
            });
        }
    }
    ScalingReport {
        options: options.clone(),
        cpus,
        measurements,
    }
}

impl ScalingReport {
    /// Renders the report as the `BENCH_parallel.json` snapshot (no external
    /// JSON dependency; every value is numeric or a fixed identifier).
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, m) in self.measurements.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{ \"index\": \"{}\", \"threads\": {}, \"median_query_ms\": {:.3}, \"speedup\": {:.2} }}",
                m.index,
                m.threads,
                m.median.as_secs_f64() * 1e3,
                m.speedup
            ));
        }
        let max_threads = self.options.threads.iter().copied().max().unwrap_or(1);
        let note = if self.cpus < max_threads {
            format!(
                "wall-clock speedup is bounded by the {} available CPU core(s); \
                 regenerate on multi-core hardware for a meaningful scaling curve",
                self.cpus
            )
        } else {
            "thread counts within the available cores; speedups are meaningful".to_string()
        };
        format!(
            "{{\n  \"benchmark\": \"parallel_scaling\",\n  \"dataset\": \"s1\",\n  \
             \"n\": {},\n  \"dc\": {},\n  \"seed\": {},\n  \"repetitions\": {},\n  \
             \"machine\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {} }},\n  \
             \"note\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
            self.options.n,
            self.options.dc,
            self.options.seed,
            self.options.repetitions,
            std::env::consts::OS,
            std::env::consts::ARCH,
            self.cpus,
            note,
            rows
        )
    }

    /// Renders a human-readable table (printed by the `bench_parallel`
    /// binary next to the JSON).
    pub fn render(&self) -> String {
        let mut out = format!(
            "parallel scaling @ n = {}, dc = {}, {} repetition(s), {} cpu(s)\n\
             {:<10} {:>8} {:>16} {:>9}\n",
            self.options.n,
            self.options.dc,
            self.options.repetitions,
            self.cpus,
            "index",
            "threads",
            "median (ms)",
            "speedup"
        );
        for m in &self.measurements {
            out.push_str(&format!(
                "{:<10} {:>8} {:>16.3} {:>8.2}x\n",
                m.index,
                m.threads,
                m.median.as_secs_f64() * 1e3,
                m.speedup
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ScalingOptions {
        ScalingOptions {
            n: 300,
            dc: 30_000.0,
            seed: 7,
            repetitions: 1,
            threads: vec![1, 2],
        }
    }

    #[test]
    fn sweep_covers_every_index_and_thread_count() {
        let report = run(&tiny_options());
        assert_eq!(report.measurements.len(), 4 * 2);
        for index in ["grid", "kdtree", "quadtree", "rtree"] {
            let rows: Vec<_> = report
                .measurements
                .iter()
                .filter(|m| m.index == index)
                .collect();
            assert_eq!(rows.len(), 2, "{index}");
            assert_eq!(rows[0].threads, 1);
            assert!((rows[0].speedup - 1.0).abs() < 1e-9, "{index}");
            assert!(rows.iter().all(|m| m.speedup > 0.0), "{index}");
        }
    }

    #[test]
    fn json_snapshot_has_the_expected_fields() {
        let report = run(&tiny_options());
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"parallel_scaling\"",
            "\"n\": 300",
            "\"machine\"",
            "\"cpus\"",
            "\"results\"",
            "\"median_query_ms\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.render().contains("kdtree"));
    }

    #[test]
    #[should_panic(expected = "speedup baseline")]
    fn sweep_not_starting_with_one_thread_panics() {
        run(&ScalingOptions {
            threads: vec![2, 1, 4],
            ..tiny_options()
        });
    }
}
