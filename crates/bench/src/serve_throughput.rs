//! The serving-layer benchmark behind `BENCH_serve.json`: reader latency
//! percentiles vs writer epoch throughput.
//!
//! One writer drives a [`StreamingDpc`] over a sliding check-in window at a
//! fixed epoch cadence while `readers` threads issue a deterministic mix of
//! the three serving query families — point lookup, ε-neighbourhood, and
//! delta subscription — against the published epoch snapshots
//! ([`dpc_serve::Server`]). Each sweep row holds one reader count, so the
//! report answers the serving layer's two headline questions:
//!
//! * does reader concurrency degrade writer epoch throughput? (it must not:
//!   the read path takes no lock the writer contends on); and
//! * what do reader p50/p99 latencies look like while the writer is
//!   committing at full speed?
//!
//! The committed `BENCH_serve.json` under `target/experiments/` is produced
//! by the `bench_serve` binary; CI runs a tiny smoke invocation so the
//! benchmark cannot rot.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dpc_core::{CenterSelection, Dataset, DpcParams};
use dpc_datasets::generators::{checkins, CheckinConfig};
use dpc_datasets::SplitMix64;
use dpc_obs::Histogram;
use dpc_serve::{Replay, Server};
use dpc_stream::{StreamParams, StreamingDpc};
use dpc_tree_index::GridIndex;

/// Sweep configuration for the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Sliding-window size the writer maintains.
    pub window: usize,
    /// Points per epoch (one `advance` slides `batch` in, `batch` out).
    pub batch: usize,
    /// Number of epochs the writer commits per sweep row.
    pub epochs: usize,
    /// Reader-thread counts to sweep (0 measures the writer alone).
    pub reader_counts: Vec<usize>,
    /// Subscription delta-ring capacity.
    pub ring: usize,
    /// Cut-off distance for the engine and the readers' ε-queries.
    pub dc: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            window: 2_000,
            batch: 50,
            epochs: 100,
            reader_counts: vec![0, 1, 2, 4],
            ring: 64,
            dc: 0.5,
            seed: 42,
        }
    }
}

/// One sweep row: the writer's throughput and the merged reader tallies at
/// one reader count.
#[derive(Debug)]
pub struct ServeMeasurement {
    /// Concurrent reader threads during this row.
    pub readers: usize,
    /// Epochs the writer committed.
    pub epochs: usize,
    /// Wall-clock time of the writer's replay loop.
    pub total: Duration,
    /// Writer throughput in epochs per second.
    pub epochs_per_sec: f64,
    /// Total queries answered across all readers and families.
    pub queries: u64,
    /// Subscription resyncs (ring wrapped under the readers).
    pub resyncs: u64,
    /// Point-lookup latency distribution (µs).
    pub lookup: Histogram,
    /// ε-neighbourhood latency distribution (µs).
    pub eps: Histogram,
    /// Subscription-poll latency distribution (µs).
    pub sub: Histogram,
}

/// The full sweep.
#[derive(Debug)]
pub struct ServeBenchReport {
    /// The options the sweep ran with.
    pub options: ServeBenchOptions,
    /// Logical CPUs on the measuring machine.
    pub cpus: usize,
    /// One row per reader count, in sweep order.
    pub measurements: Vec<ServeMeasurement>,
}

/// Runs the sweep: one serving replay per reader count, same data and
/// engine configuration throughout.
pub fn run(options: &ServeBenchOptions) -> ServeBenchReport {
    assert!(options.window > 0, "need a positive window");
    assert!(
        options.batch > 0 && options.batch <= options.window,
        "epoch batch must be positive and fit in the window"
    );
    assert!(options.epochs > 0, "need at least one epoch");
    assert!(options.ring > 0, "need a positive ring capacity");
    assert!(
        !options.reader_counts.is_empty(),
        "need at least one reader count"
    );
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let total_points = options.window + options.epochs * options.batch;
    let data = checkins(total_points, &CheckinConfig::gowalla(), options.seed).into_dataset();
    let measurements = options
        .reader_counts
        .iter()
        .map(|&readers| measure(options, readers, &data))
        .collect();
    ServeBenchReport {
        options: options.clone(),
        cpus,
        measurements,
    }
}

/// Per-reader-thread tallies, merged at join.
#[derive(Default)]
struct ReaderTally {
    queries: u64,
    resyncs: u64,
    lookup: Histogram,
    eps: Histogram,
    sub: Histogram,
}

fn measure(options: &ServeBenchOptions, readers: usize, data: &Dataset) -> ServeMeasurement {
    let points = data.points();
    let seed_window = Dataset::new(points[..options.window].to_vec());
    let arriving = &points[options.window..];
    let params = StreamParams::new(options.dc).with_dpc(
        DpcParams::new(options.dc).with_centers(CenterSelection::GammaGap { max_centers: 64 }),
    );
    let engine = StreamingDpc::new(GridIndex::build(&seed_window), params)
        .expect("seeding the streaming engine must succeed");
    let mut server = Server::new(engine, options.ring);
    let reader_handles: Vec<_> = (0..readers).map(|_| server.reader()).collect();

    let stop = AtomicBool::new(false);
    let eps = options.dc;
    let (total, tallies) = std::thread::scope(|s| {
        let stop = &stop;
        let workers: Vec<_> = reader_handles
            .into_iter()
            .enumerate()
            .map(|(i, mut reader)| {
                s.spawn(move || {
                    let mut rng =
                        SplitMix64::new(0xBE4C_4E21 ^ (i as u64).wrapping_mul(0x9E37_79B9));
                    let mut tally = ReaderTally::default();
                    let mut seen = reader.epoch();
                    while !stop.load(Ordering::Acquire) {
                        match rng.next_u64() % 3 {
                            0 => {
                                let snap = reader.current();
                                if snap.is_empty() {
                                    continue;
                                }
                                let h = snap.handle_at(rng.uniform_usize(snap.len()));
                                let start = Instant::now();
                                let _ = reader.cluster_of(h);
                                tally.lookup.record(start.elapsed().as_micros() as u64);
                            }
                            1 => {
                                let c = points[rng.uniform_usize(points.len())];
                                let start = Instant::now();
                                let _ = reader.eps_neighbors(c, eps);
                                tally.eps.record(start.elapsed().as_micros() as u64);
                            }
                            _ => {
                                let start = Instant::now();
                                match reader.deltas_since(seen) {
                                    Replay::Deltas(deltas) => {
                                        if let Some(last) = deltas.last() {
                                            seen = last.epoch;
                                        }
                                    }
                                    Replay::Resync(snapshot) => {
                                        seen = snapshot.epoch();
                                        tally.resyncs += 1;
                                    }
                                }
                                tally.sub.record(start.elapsed().as_micros() as u64);
                            }
                        }
                        tally.queries += 1;
                    }
                    tally
                })
            })
            .collect();

        let timer = dpc_core::Timer::start();
        for chunk in arriving.chunks(options.batch) {
            server
                .engine_mut()
                .advance(chunk, chunk.len())
                .expect("streaming update must succeed");
        }
        let total = timer.elapsed();
        stop.store(true, Ordering::Release);
        let tallies: Vec<ReaderTally> = workers
            .into_iter()
            .map(|w| w.join().expect("reader thread panicked"))
            .collect();
        (total, tallies)
    });

    let mut row = ServeMeasurement {
        readers,
        epochs: options.epochs,
        total,
        epochs_per_sec: options.epochs as f64 / total.as_secs_f64().max(1e-9),
        queries: 0,
        resyncs: 0,
        lookup: Histogram::new(),
        eps: Histogram::new(),
        sub: Histogram::new(),
    };
    for tally in tallies {
        row.queries += tally.queries;
        row.resyncs += tally.resyncs;
        row.lookup.merge(&tally.lookup);
        row.eps.merge(&tally.eps);
        row.sub.merge(&tally.sub);
    }
    row
}

fn quantile(h: &Histogram, q: f64) -> u64 {
    h.value_at_quantile(q).unwrap_or(0)
}

impl ServeBenchReport {
    /// Serialises the report as a JSON snapshot (`BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"options\": {{\"window\": {}, \"batch\": {}, \"epochs\": {}, \
             \"ring\": {}, \"dc\": {}, \"seed\": {}}},\n  \"cpus\": {},\n  \"rows\": [\n",
            self.options.window,
            self.options.batch,
            self.options.epochs,
            self.options.ring,
            self.options.dc,
            self.options.seed,
            self.cpus
        );
        for (i, m) in self.measurements.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"readers\": {}, \"epochs\": {}, \"elapsed_ms\": {:.3}, \
                 \"epochs_per_sec\": {:.1}, \"queries\": {}, \"resyncs\": {}, \
                 \"lookup_p50_us\": {}, \"lookup_p99_us\": {}, \
                 \"eps_p50_us\": {}, \"eps_p99_us\": {}, \
                 \"sub_p50_us\": {}, \"sub_p99_us\": {}}}{}",
                m.readers,
                m.epochs,
                m.total.as_secs_f64() * 1e3,
                m.epochs_per_sec,
                m.queries,
                m.resyncs,
                quantile(&m.lookup, 0.5),
                quantile(&m.lookup, 0.99),
                quantile(&m.eps, 0.5),
                quantile(&m.eps, 0.99),
                quantile(&m.sub, 0.5),
                quantile(&m.sub, 0.99),
                if i + 1 < self.measurements.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the sweep as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "serve throughput: window {}, batch {}, {} epochs, ring {}, dc {}, {} cpus\n\
             {:>7} {:>12} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            self.options.window,
            self.options.batch,
            self.options.epochs,
            self.options.ring,
            self.options.dc,
            self.cpus,
            "readers",
            "epochs/s",
            "queries",
            "resyncs",
            "look p50",
            "look p99",
            "eps p50",
            "eps p99",
            "sub p50",
            "sub p99",
        );
        for m in &self.measurements {
            let _ = writeln!(
                out,
                "{:>7} {:>12.1} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                m.readers,
                m.epochs_per_sec,
                m.queries,
                m.resyncs,
                quantile(&m.lookup, 0.5),
                quantile(&m.lookup, 0.99),
                quantile(&m.eps, 0.5),
                quantile(&m.eps, 0.99),
                quantile(&m.sub, 0.5),
                quantile(&m.sub, 0.99),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_a_row_per_reader_count() {
        let options = ServeBenchOptions {
            window: 120,
            batch: 20,
            epochs: 5,
            reader_counts: vec![0, 2],
            ring: 8,
            dc: 0.5,
            seed: 7,
        };
        let report = run(&options);
        assert_eq!(report.measurements.len(), 2);
        assert_eq!(report.measurements[0].readers, 0);
        assert_eq!(report.measurements[0].queries, 0);
        assert_eq!(report.measurements[1].readers, 2);
        assert!(report.measurements[1].queries > 0);
        for m in &report.measurements {
            assert_eq!(m.epochs, 5);
            assert!(m.epochs_per_sec > 0.0);
        }
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"readers\": 2"));
        assert!(report.render().contains("epochs/s"));
    }
}
