//! The streaming-throughput benchmark behind `BENCH_stream.json`.
//!
//! Measures sliding-window updates/second of the incremental engine
//! (`dpc-stream` over an updatable index) against the only alternative a
//! batch pipeline offers: rebuilding the index and re-running the full
//! ρ/δ/select/assign pipeline after every update. Both modes process the
//! *same* update sequence over the same data and must land on the same
//! clustering — asserted at the end of every sweep cell.
//!
//! Since every updatable index family can now drive the streaming engine,
//! the sweep covers one incremental/rebuild pair per engine
//! ([`StreamEngine`]): the uniform grid, the k-d tree (tombstone + partial
//! rebuild) and the R-tree (forced reinsertion + bbox shrinking).
//!
//! The committed `BENCH_stream.json` at the repository root is produced by
//! the `bench_stream` binary; CI runs a tiny smoke invocation so the
//! benchmark cannot rot.

use std::time::Duration;

use dpc_core::{CenterSelection, Dataset, DpcParams, DpcPipeline, Point, UpdatableIndex};
use dpc_datasets::generators::{checkins, CheckinConfig};
use dpc_stream::{StreamParams, StreamingDpc};
use dpc_tree_index::{GridIndex, KdTree, RTree};

/// The updatable index families the streaming benchmark can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEngine {
    /// Uniform grid (O(1) cell updates; the PR 3 baseline engine).
    Grid,
    /// k-d tree with tombstone + partial-rebuild maintenance.
    KdTree,
    /// R-tree with R*-style forced reinsertion and bbox shrinking.
    RTree,
}

impl StreamEngine {
    /// Every engine, in sweep order.
    pub const ALL: [StreamEngine; 3] = [
        StreamEngine::Grid,
        StreamEngine::KdTree,
        StreamEngine::RTree,
    ];

    /// The engine's stable name (CLI value and JSON field).
    pub fn name(self) -> &'static str {
        match self {
            StreamEngine::Grid => "grid",
            StreamEngine::KdTree => "kdtree",
            StreamEngine::RTree => "rtree",
        }
    }

    /// Parses a CLI engine name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "grid" => Ok(StreamEngine::Grid),
            "kdtree" | "kd" => Ok(StreamEngine::KdTree),
            "rtree" => Ok(StreamEngine::RTree),
            other => Err(format!("unknown engine {other:?} (grid, kdtree, rtree)")),
        }
    }
}

/// What to measure: engines, window sizes, updates per cell, cut-off, seed,
/// threads.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBenchOptions {
    /// Index families to sweep.
    pub engines: Vec<StreamEngine>,
    /// Window sizes to sweep (number of live points).
    pub windows: Vec<usize>,
    /// Sliding-window updates (one eviction + one insertion each) measured
    /// per sweep cell.
    pub updates: usize,
    /// Cut-off distance of the maintained clustering.
    pub dc: f64,
    /// Seed of the check-in generator.
    pub seed: u64,
    /// Worker threads for the maintenance passes (and the rebuild queries).
    pub threads: usize,
}

impl Default for StreamBenchOptions {
    fn default() -> Self {
        StreamBenchOptions {
            engines: StreamEngine::ALL.to_vec(),
            windows: vec![1_000, 4_000],
            updates: 1_000,
            dc: 0.1,
            seed: 42,
            threads: 1,
        }
    }
}

/// One measured mode of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMeasurement {
    /// Engine this row belongs to.
    pub engine: &'static str,
    /// Window size this row belongs to.
    pub window: usize,
    /// `"incremental"` (the streaming engine) or `"rebuild"` (index rebuild
    /// + full batch pipeline per update).
    pub mode: &'static str,
    /// Updates processed.
    pub updates: usize,
    /// Total wall-clock time for all updates.
    pub total: Duration,
    /// Mean time per update.
    pub per_update: Duration,
    /// Updates per second.
    pub updates_per_sec: f64,
    /// Fallback epochs taken (incremental mode only; 0 for rebuild).
    pub fallbacks: u64,
}

/// The whole benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBenchReport {
    /// The options the benchmark ran with.
    pub options: StreamBenchOptions,
    /// CPUs the machine exposes.
    pub cpus: usize,
    /// Two rows (incremental, rebuild) per engine per window size, in sweep
    /// order.
    pub measurements: Vec<StreamMeasurement>,
}

fn params(options: &StreamBenchOptions) -> DpcParams {
    DpcParams::new(options.dc)
        .with_centers(CenterSelection::GammaGap { max_centers: 32 })
        .with_threads(options.threads)
}

/// Runs the sweep: for every window size and engine, streams the same
/// check-in sequence through the incremental engine and through
/// rebuild-from-scratch, and records both throughputs.
///
/// # Panics
/// Panics if the options are degenerate (no engines, no windows, zero
/// updates) or if the two modes disagree on the final clustering — the
/// benchmark doubles as an end-to-end consistency check.
pub fn run(options: &StreamBenchOptions) -> StreamBenchReport {
    assert!(!options.engines.is_empty(), "need at least one engine");
    assert!(!options.windows.is_empty(), "need at least one window size");
    assert!(options.updates > 0, "need at least one update");
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut measurements = Vec::new();
    for &window in &options.windows {
        let total_points = window + options.updates;
        let data = checkins(total_points, &CheckinConfig::gowalla(), options.seed).into_dataset();
        for &engine in &options.engines {
            let (inc, reb) = match engine {
                StreamEngine::Grid => {
                    measure_engine(engine, GridIndex::build, options, window, &data)
                }
                StreamEngine::KdTree => {
                    measure_engine(engine, KdTree::build, options, window, &data)
                }
                StreamEngine::RTree => measure_engine(engine, RTree::build, options, window, &data),
            };
            measurements.push(inc);
            measurements.push(reb);
        }
    }
    StreamBenchReport {
        options: options.clone(),
        cpus,
        measurements,
    }
}

/// Measures the incremental/rebuild pair of one engine on one window size.
fn measure_engine<I, F>(
    engine: StreamEngine,
    build: F,
    options: &StreamBenchOptions,
    window: usize,
    data: &Dataset,
) -> (StreamMeasurement, StreamMeasurement)
where
    I: UpdatableIndex,
    F: Fn(&Dataset) -> I,
{
    let points = data.points();
    let seed_window = Dataset::new(points[..window].to_vec());
    let arriving = &points[window..];

    // Incremental: one engine, advance(1 in, 1 out) per update.
    let stream_params = StreamParams::new(options.dc).with_dpc(params(options));
    let mut stream = StreamingDpc::new(build(&seed_window), stream_params)
        .expect("seeding the streaming engine must succeed");
    let timer = dpc_core::Timer::start();
    for &p in arriving {
        stream
            .advance(&[p], 1)
            .expect("incremental update must succeed");
    }
    let inc_total = timer.elapsed();
    let inc = measurement(
        engine,
        window,
        "incremental",
        options.updates,
        inc_total,
        stream.stats().fallback_updates,
    );

    // Rebuild-from-scratch: same sliding window, but every update pays for a
    // fresh index plus the full batch pipeline.
    let pipeline = DpcPipeline::new(params(options));
    let mut live: Vec<Point> = points[..window].to_vec();
    let timer = dpc_core::Timer::start();
    let mut last_run = None;
    for &p in arriving {
        // Mirror the engine's eviction of the oldest point so both modes
        // maintain identical windows (as point sets).
        live.remove(0);
        live.push(p);
        let dataset = Dataset::new(live.clone());
        let index = build(&dataset);
        last_run = Some(pipeline.run(&index).expect("rebuild pipeline must succeed"));
    }
    let rebuild_total = timer.elapsed();
    let reb = measurement(engine, window, "rebuild", options.updates, rebuild_total, 0);

    let _ = last_run.expect("at least one rebuild ran");
    // Consistency: the engine's final state must be bit-identical to a cold
    // batch run over its own surviving dataset (the same invariant the
    // dpc-stream property suite enforces step by step). The rebuild rows
    // above are purely a timing baseline — their dataset has a different
    // point order, so exact ρ-tie break-offs may legitimately differ from
    // the engine's window.
    let check = pipeline
        .run(&build(stream.index().dataset()))
        .expect("consistency check must succeed");
    assert_eq!(
        stream.rho(),
        &check.rho[..],
        "incremental rho diverged from batch ({} @ window {window})",
        engine.name()
    );
    assert_eq!(
        stream.clustering().labels(),
        check.clustering.labels(),
        "incremental labels diverged from batch ({} @ window {window})",
        engine.name()
    );
    (inc, reb)
}

fn measurement(
    engine: StreamEngine,
    window: usize,
    mode: &'static str,
    updates: usize,
    total: Duration,
    fallbacks: u64,
) -> StreamMeasurement {
    let per_update = total / updates.max(1) as u32;
    StreamMeasurement {
        engine: engine.name(),
        window,
        mode,
        updates,
        total,
        per_update,
        updates_per_sec: updates as f64 / total.as_secs_f64().max(1e-9),
        fallbacks,
    }
}

impl StreamBenchReport {
    /// Speedup of incremental over rebuild for one engine and window size,
    /// if both rows exist.
    pub fn speedup(&self, engine: StreamEngine, window: usize) -> Option<f64> {
        let row = |mode: &str| {
            self.measurements
                .iter()
                .find(|m| m.engine == engine.name() && m.window == window && m.mode == mode)
        };
        match (row("incremental"), row("rebuild")) {
            (Some(inc), Some(reb)) => Some(inc.updates_per_sec / reb.updates_per_sec.max(1e-9)),
            _ => None,
        }
    }

    /// Renders the report as the `BENCH_stream.json` snapshot (no external
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, m) in self.measurements.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{ \"engine\": \"{}\", \"window\": {}, \"mode\": \"{}\", \"updates\": {}, \
                 \"per_update_us\": {:.1}, \"updates_per_sec\": {:.1}, \"fallbacks\": {} }}",
                m.engine,
                m.window,
                m.mode,
                m.updates,
                m.per_update.as_secs_f64() * 1e6,
                m.updates_per_sec,
                m.fallbacks
            ));
        }
        let largest = self.options.windows.iter().copied().max().unwrap_or(0);
        let speedups: Vec<String> = self
            .options
            .engines
            .iter()
            .filter_map(|&e| {
                self.speedup(e, largest)
                    .map(|s| format!("{} {:.1}x", e.name(), s))
            })
            .collect();
        let note = format!(
            "incremental = dpc-stream affected-set maintenance over an updatable index; \
             rebuild = fresh index + full batch pipeline per update; speedups at the \
             largest window ({largest}): {}",
            speedups.join(", ")
        );
        format!(
            "{{\n  \"benchmark\": \"stream_throughput\",\n  \"dataset\": \"gowalla-checkins\",\n  \
             \"updates\": {},\n  \"dc\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \
             \"machine\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {} }},\n  \
             \"note\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
            self.options.updates,
            self.options.dc,
            self.options.seed,
            self.options.threads,
            std::env::consts::OS,
            std::env::consts::ARCH,
            self.cpus,
            note,
            rows
        )
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "streaming throughput @ {} updates, dc = {}, {} thread(s), {} cpu(s)\n\
             {:<8} {:<8} {:<12} {:>16} {:>14} {:>10}\n",
            self.options.updates,
            self.options.dc,
            self.options.threads,
            self.cpus,
            "engine",
            "window",
            "mode",
            "per update (us)",
            "updates/sec",
            "fallbacks"
        );
        for m in &self.measurements {
            out.push_str(&format!(
                "{:<8} {:<8} {:<12} {:>16.1} {:>14.1} {:>10}\n",
                m.engine,
                m.window,
                m.mode,
                m.per_update.as_secs_f64() * 1e6,
                m.updates_per_sec,
                m.fallbacks
            ));
        }
        for &w in &self.options.windows {
            for &e in &self.options.engines {
                if let Some(s) = self.speedup(e, w) {
                    out.push_str(&format!(
                        "{} @ window {w}: incremental is {s:.1}x rebuild\n",
                        e.name()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> StreamBenchOptions {
        StreamBenchOptions {
            engines: vec![StreamEngine::Grid],
            windows: vec![150],
            updates: 40,
            dc: 0.3,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn sweep_produces_both_modes_per_window() {
        let report = run(&tiny_options());
        assert_eq!(report.measurements.len(), 2);
        assert_eq!(report.measurements[0].mode, "incremental");
        assert_eq!(report.measurements[1].mode, "rebuild");
        assert!(report.measurements.iter().all(|m| m.updates == 40));
        assert!(report.speedup(StreamEngine::Grid, 150).unwrap() > 0.0);
    }

    #[test]
    fn tree_engines_sweep_and_stay_consistent() {
        let report = run(&StreamBenchOptions {
            engines: vec![StreamEngine::KdTree, StreamEngine::RTree],
            ..tiny_options()
        });
        // Two rows per engine; the in-benchmark assertion already checked
        // incremental == batch for each engine.
        assert_eq!(report.measurements.len(), 4);
        for e in [StreamEngine::KdTree, StreamEngine::RTree] {
            assert!(report.speedup(e, 150).unwrap() > 0.0);
            assert!(report
                .measurements
                .iter()
                .any(|m| m.engine == e.name() && m.mode == "rebuild"));
        }
    }

    #[test]
    fn engine_names_round_trip() {
        for e in StreamEngine::ALL {
            assert_eq!(StreamEngine::parse(e.name()).unwrap(), e);
        }
        assert_eq!(StreamEngine::parse("kd").unwrap(), StreamEngine::KdTree);
        assert!(StreamEngine::parse("ball-tree").is_err());
    }

    #[test]
    fn json_snapshot_has_the_expected_fields() {
        let report = run(&tiny_options());
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"stream_throughput\"",
            "\"updates\": 40",
            "\"machine\"",
            "\"engine\": \"grid\"",
            "\"mode\": \"incremental\"",
            "\"mode\": \"rebuild\"",
            "\"updates_per_sec\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.render().contains("incremental"));
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn zero_updates_panics() {
        run(&StreamBenchOptions {
            updates: 0,
            ..tiny_options()
        });
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn no_engines_panics() {
        run(&StreamBenchOptions {
            engines: vec![],
            ..tiny_options()
        });
    }
}
