//! The streaming-throughput benchmark behind `BENCH_stream.json`.
//!
//! Measures sliding-window updates/second of the streaming engine under its
//! three commit policies ([`StreamMode`]): affected-set **incremental**
//! maintenance, per-epoch bulk **rebuild** (`rebuild_from` + one batch
//! ρ/δ/select/assign pass), and the **adaptive** policy that picks between
//! those two strategies per epoch from a calibrated cost model. All modes
//! run the same engine over the same update sequence — identical windows,
//! handles and per-epoch deltas, only the maintenance strategy differs — and
//! must land on the same clustering, asserted against a cold batch run at
//! the end of every sweep cell.
//!
//! Since every updatable index family can now drive the streaming engine,
//! the sweep covers one row per mode per engine ([`StreamEngine`]): the
//! uniform grid, the k-d tree (tombstone + partial rebuild) and the R-tree
//! (forced reinsertion + bbox shrinking).
//!
//! The sweep also covers **epoch batch sizes** ([`StreamBenchOptions::
//! batches`]): batch 1 is classic per-update maintenance (one ε-repair, one
//! δ-repair and one clustering per slid point), larger batches amortise all
//! three over the whole epoch — the per-epoch vs per-update cost gap is the
//! headline number of `BENCH_stream.json`.
//!
//! The sweep can also cover **density kernels** ([`StreamBenchOptions::
//! kernels`]): the paper-faithful cut-off counts neighbours, while the
//! gaussian/exponential kernels maintain weighted densities through the
//! ±w(d) incremental repair. Weighted rows never take the bulk-rebuild
//! path (the engine coerces those commits to incremental maintenance), so
//! the interesting number is the weighted-vs-cutoff incremental overhead.
//!
//! The committed `BENCH_stream.json` at the repository root is produced by
//! the `bench_stream` binary with `--kernels cutoff,gaussian`; CI runs a
//! tiny smoke invocation so the benchmark cannot rot.

use std::sync::Arc;
use std::time::Duration;

use dpc_core::{CenterSelection, Dataset, DpcParams, DpcPipeline, Kernel, UpdatableIndex};
use dpc_datasets::generators::{checkins, CheckinConfig};
use dpc_obs::{MetricsRecorder, MetricsSnapshot, SharedRecorder};
use dpc_stream::{CommitPolicy, StreamParams, StreamingDpc};
use dpc_tree_index::{GridIndex, KdTree, RTree};

/// The updatable index families the streaming benchmark can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEngine {
    /// Uniform grid (O(1) cell updates; the PR 3 baseline engine).
    Grid,
    /// k-d tree with tombstone + partial-rebuild maintenance.
    KdTree,
    /// R-tree with R*-style forced reinsertion and bbox shrinking.
    RTree,
}

impl StreamEngine {
    /// Every engine, in sweep order.
    pub const ALL: [StreamEngine; 3] = [
        StreamEngine::Grid,
        StreamEngine::KdTree,
        StreamEngine::RTree,
    ];

    /// The engine's stable name (CLI value and JSON field).
    pub fn name(self) -> &'static str {
        match self {
            StreamEngine::Grid => "grid",
            StreamEngine::KdTree => "kdtree",
            StreamEngine::RTree => "rtree",
        }
    }

    /// Parses a CLI engine name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "grid" => Ok(StreamEngine::Grid),
            "kdtree" | "kd" => Ok(StreamEngine::KdTree),
            "rtree" => Ok(StreamEngine::RTree),
            other => Err(format!("unknown engine {other:?} (grid, kdtree, rtree)")),
        }
    }
}

/// The maintenance strategies the benchmark can time per sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// The engine pinned to affected-set maintenance
    /// (`CommitPolicy::AlwaysIncremental`).
    Incremental,
    /// The engine pinned to `CommitPolicy::AlwaysRebuild`: a bulk index
    /// rebuild plus the full batch ρ/δ/select/assign pass every epoch.
    Rebuild,
    /// The engine under `CommitPolicy::Adaptive`: per epoch it predicts
    /// whether affected-set maintenance or a bulk rebuild is cheaper and
    /// commits on the winner.
    Adaptive,
}

impl StreamMode {
    /// Every mode, in sweep order.
    pub const ALL: [StreamMode; 3] = [
        StreamMode::Incremental,
        StreamMode::Rebuild,
        StreamMode::Adaptive,
    ];

    /// The mode's stable name (CLI value and JSON field).
    pub fn name(self) -> &'static str {
        match self {
            StreamMode::Incremental => "incremental",
            StreamMode::Rebuild => "rebuild",
            StreamMode::Adaptive => "adaptive",
        }
    }

    /// Parses a CLI mode name (the same spellings `dpc stream --policy`
    /// accepts).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "incremental" | "inc" => Ok(StreamMode::Incremental),
            "rebuild" => Ok(StreamMode::Rebuild),
            "adaptive" | "auto" => Ok(StreamMode::Adaptive),
            other => Err(format!(
                "unknown mode {other:?} (incremental, rebuild, adaptive)"
            )),
        }
    }
}

/// Parses one kernel spec from the `--kernels` sweep list: `cutoff`,
/// `gaussian[:H]` or `exponential[:H]` (alias `exp`). A weighted kernel
/// without an explicit bandwidth defaults to `H = dc`, the conventional
/// choice.
pub fn parse_kernel_spec(spec: &str, dc: f64) -> Result<Kernel, String> {
    let spec = spec.trim().to_ascii_lowercase();
    let (name, bandwidth) = match spec.split_once(':') {
        Some((name, h)) => {
            let h: f64 = h
                .trim()
                .parse()
                .map_err(|_| format!("invalid bandwidth in kernel spec {spec:?}"))?;
            (name.trim(), Some(h))
        }
        None => (spec.as_str(), None),
    };
    let kernel = match name {
        "cutoff" => {
            if bandwidth.is_some() {
                return Err("the cutoff kernel takes no bandwidth".into());
            }
            Kernel::Cutoff
        }
        "gaussian" => Kernel::gaussian(bandwidth.unwrap_or(dc)),
        "exponential" | "exp" => Kernel::exponential(bandwidth.unwrap_or(dc)),
        other => {
            return Err(format!(
                "unknown kernel {other:?} (cutoff, gaussian[:H], exponential[:H])"
            ))
        }
    };
    kernel.validate().map_err(|e| e.to_string())?;
    Ok(kernel)
}

/// What to measure: engines, modes, window sizes, epoch batch sizes, updates
/// per cell, cut-off, seed, threads.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBenchOptions {
    /// Index families to sweep.
    pub engines: Vec<StreamEngine>,
    /// Maintenance strategies to time per cell. The default sweeps all
    /// three, so the snapshot shows the adaptive policy next to both fixed
    /// strategies it chooses between.
    pub modes: Vec<StreamMode>,
    /// Window sizes to sweep (number of live points).
    pub windows: Vec<usize>,
    /// Epoch batch sizes to sweep: each epoch slides `batch` points in and
    /// the same number of oldest points out. Batch 1 is per-update
    /// maintenance; larger batches amortise the ρ/δ repairs and the
    /// clustering over the whole epoch.
    pub batches: Vec<usize>,
    /// Density kernels to sweep. The default is the paper-faithful cut-off
    /// alone; adding a weighted kernel (see [`parse_kernel_spec`]) times the
    /// ±w(d) weighted repair next to the integer-count path. Weighted rows
    /// never rebuild — a bulk rebuild cannot reproduce streamed weighted
    /// densities bit-for-bit, so the engine coerces rebuild commits to
    /// incremental maintenance.
    pub kernels: Vec<Kernel>,
    /// Sliding-window updates (one eviction + one insertion each) measured
    /// per sweep cell.
    pub updates: usize,
    /// Cut-off distance of the maintained clustering.
    pub dc: f64,
    /// Seed of the check-in generator.
    pub seed: u64,
    /// Worker threads for the maintenance passes (and the rebuild queries).
    pub threads: usize,
}

impl Default for StreamBenchOptions {
    fn default() -> Self {
        StreamBenchOptions {
            engines: StreamEngine::ALL.to_vec(),
            modes: StreamMode::ALL.to_vec(),
            windows: vec![1_000, 4_000],
            batches: vec![1, 64],
            kernels: vec![Kernel::Cutoff],
            updates: 1_000,
            dc: 0.1,
            seed: 42,
            threads: 1,
        }
    }
}

/// Total time spent in each maintenance phase over one measured run, in
/// microseconds, read back from the engine's [`MetricsRecorder`] span
/// histograms (`stream.phase.*_us`). Phases a mode never runs stay 0 — the
/// rebuild rows have no ρ/δ repair, the incremental rows no batch query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseMicros {
    /// Plan validation (`stream.phase.validate`).
    pub validate: u64,
    /// Index mutation: applying the epoch's insertions/evictions
    /// (`stream.phase.apply`).
    pub apply: u64,
    /// Affected-set ρ repair (`stream.phase.rho_repair`).
    pub rho_repair: u64,
    /// δ/µ repair over the invalidation set (`stream.phase.delta_repair`).
    pub delta_repair: u64,
    /// Full-window batch ρ/δ query on the rebuild path
    /// (`stream.phase.batch_query`).
    pub batch_query: u64,
    /// Re-running centre selection + assignment (`stream.phase.recluster`).
    pub recluster: u64,
}

impl PhaseMicros {
    /// Reads the six per-phase sums out of a metrics snapshot.
    fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        let sum = |phase: &str| {
            snap.histogram(&format!("stream.phase.{phase}_us"))
                .map_or(0, |h| h.sum())
        };
        PhaseMicros {
            validate: sum("validate"),
            apply: sum("apply"),
            rho_repair: sum("rho_repair"),
            delta_repair: sum("delta_repair"),
            batch_query: sum("batch_query"),
            recluster: sum("recluster"),
        }
    }
}

/// One measured mode of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMeasurement {
    /// Engine this row belongs to.
    pub engine: &'static str,
    /// Window size this row belongs to.
    pub window: usize,
    /// Epoch batch size this row belongs to.
    pub batch: usize,
    /// Density kernel this row was measured under.
    pub kernel: Kernel,
    /// `"incremental"` (affected-set maintenance), `"rebuild"` (bulk index
    /// rebuild + full batch pipeline per epoch) or `"adaptive"` (the cost
    /// model choosing between the two per epoch).
    pub mode: &'static str,
    /// Updates processed.
    pub updates: usize,
    /// Total wall-clock time for all updates.
    pub total: Duration,
    /// Mean time per update (a batch of `b` slides counts as `2 b` point
    /// mutations but `b` updates, matching the per-update rows).
    pub per_update: Duration,
    /// Updates per second.
    pub updates_per_sec: f64,
    /// Fallback epochs taken (streaming modes only; 0 for rebuild).
    pub fallbacks: u64,
    /// Bulk-rebuild epochs taken: every epoch for rebuild mode, the
    /// cost-model-chosen subset for adaptive, 0 for incremental.
    pub rebuilds: u64,
    /// Where the maintenance time went, phase by phase.
    pub phases: PhaseMicros,
}

/// The whole benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBenchReport {
    /// The options the benchmark ran with.
    pub options: StreamBenchOptions,
    /// CPUs the machine exposes.
    pub cpus: usize,
    /// One row per swept mode per engine per window size per batch size, in
    /// sweep order.
    pub measurements: Vec<StreamMeasurement>,
}

fn params(options: &StreamBenchOptions, kernel: Kernel) -> DpcParams {
    DpcParams::new(options.dc)
        .with_centers(CenterSelection::GammaGap { max_centers: 32 })
        .with_kernel(kernel)
        .with_threads(options.threads)
}

/// Runs the sweep: for every window size, engine and batch size, streams the
/// same check-in sequence through every requested maintenance mode and
/// records each throughput.
///
/// # Panics
/// Panics if the options are degenerate (no engines, no modes, no windows,
/// no batch sizes, zero updates or a zero batch) or if the modes disagree on
/// the final clustering — the benchmark doubles as an end-to-end consistency
/// check.
pub fn run(options: &StreamBenchOptions) -> StreamBenchReport {
    assert!(!options.engines.is_empty(), "need at least one engine");
    assert!(!options.modes.is_empty(), "need at least one mode");
    assert!(!options.windows.is_empty(), "need at least one window size");
    assert!(
        !options.batches.is_empty() && !options.batches.contains(&0),
        "need at least one positive batch size"
    );
    assert!(!options.kernels.is_empty(), "need at least one kernel");
    assert!(options.updates > 0, "need at least one update");
    let max_batch = options.batches.iter().copied().max().unwrap_or(0);
    let min_window = options.windows.iter().copied().min().unwrap_or(0);
    assert!(
        max_batch <= min_window,
        "epoch batch size {max_batch} exceeds the smallest window {min_window}: \
         a sliding epoch cannot evict more points than the window holds"
    );
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut measurements = Vec::new();
    for &window in &options.windows {
        let total_points = window + options.updates;
        let data = checkins(total_points, &CheckinConfig::gowalla(), options.seed).into_dataset();
        for &engine in &options.engines {
            for &batch in &options.batches {
                for &kernel in &options.kernels {
                    let cell = match engine {
                        StreamEngine::Grid => measure_engine(
                            engine,
                            GridIndex::build,
                            options,
                            window,
                            batch,
                            kernel,
                            &data,
                        ),
                        StreamEngine::KdTree => measure_engine(
                            engine,
                            KdTree::build,
                            options,
                            window,
                            batch,
                            kernel,
                            &data,
                        ),
                        StreamEngine::RTree => measure_engine(
                            engine,
                            RTree::build,
                            options,
                            window,
                            batch,
                            kernel,
                            &data,
                        ),
                    };
                    measurements.extend(cell);
                }
            }
        }
    }
    StreamBenchReport {
        options: options.clone(),
        cpus,
        measurements,
    }
}

/// Measures every requested mode of one engine on one window size at one
/// epoch batch size under one density kernel.
fn measure_engine<I, F>(
    engine: StreamEngine,
    build: F,
    options: &StreamBenchOptions,
    window: usize,
    batch: usize,
    kernel: Kernel,
    data: &Dataset,
) -> Vec<StreamMeasurement>
where
    I: UpdatableIndex,
    F: Fn(&Dataset) -> I,
{
    let points = data.points();
    let seed_window = Dataset::new(points[..window].to_vec());
    let arriving = &points[window..];
    let pipeline = DpcPipeline::new(params(options, kernel));
    let mut rows = Vec::with_capacity(options.modes.len());
    for &mode in &options.modes {
        // One engine per mode, one advance (batch in, batch out) per epoch;
        // only the commit policy differs, so the rows are directly
        // comparable — every mode pays the same handle/delta bookkeeping.
        let policy = match mode {
            StreamMode::Incremental => CommitPolicy::AlwaysIncremental,
            StreamMode::Rebuild => CommitPolicy::AlwaysRebuild,
            StreamMode::Adaptive => CommitPolicy::Adaptive,
        };
        let stream_params = StreamParams::new(options.dc)
            .with_dpc(params(options, kernel))
            .with_policy(policy);
        let mut stream = StreamingDpc::new(build(&seed_window), stream_params)
            .expect("seeding the streaming engine must succeed");
        // Attach a metrics recorder so the row can report where the
        // maintenance time went. The recorder is a handful of atomic adds
        // per epoch — noise next to the repair work it measures.
        let metrics = Arc::new(MetricsRecorder::new());
        stream.set_recorder(Arc::clone(&metrics) as SharedRecorder);
        let timer = dpc_core::Timer::start();
        for chunk in arriving.chunks(batch) {
            stream
                .advance(chunk, chunk.len())
                .expect("streaming update must succeed");
        }
        let total = timer.elapsed();
        // Consistency: the engine's final densities must match a cold batch
        // run over its own surviving dataset (the same invariant the
        // dpc-stream property suite enforces epoch by epoch) — on every
        // policy. Under the cut-off kernel the match is bit-exact; weighted
        // kernels accumulate ±w(d) repairs in stream order, which regroups
        // the f64 additions, so those rows check to a 1e-9 relative
        // tolerance instead.
        let check = pipeline
            .run(&build(stream.index().dataset()))
            .expect("consistency check must succeed");
        if kernel.is_cutoff() {
            assert_eq!(
                stream.rho(),
                &check.rho[..],
                "{} rho diverged from batch ({} @ window {window}, batch {batch})",
                mode.name(),
                engine.name()
            );
            assert_eq!(
                stream.clustering().labels(),
                check.clustering.labels(),
                "{} labels diverged from batch ({} @ window {window}, batch {batch})",
                mode.name(),
                engine.name()
            );
        } else {
            assert_eq!(stream.rho().len(), check.rho.len());
            for (i, (&got, &want)) in stream.rho().iter().zip(check.rho.iter()).enumerate() {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "{} {} rho[{i}] diverged from batch beyond tolerance \
                     ({} @ window {window}, batch {batch}): {got} vs {want}",
                    mode.name(),
                    kernel.name(),
                    engine.name()
                );
            }
        }
        let stats = stream.stats();
        rows.push(measurement(
            engine,
            window,
            batch,
            kernel,
            mode,
            options.updates,
            total,
            stats.fallback_epochs,
            stats.rebuild_epochs,
            PhaseMicros::from_snapshot(&metrics.snapshot()),
        ));
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn measurement(
    engine: StreamEngine,
    window: usize,
    batch: usize,
    kernel: Kernel,
    mode: StreamMode,
    updates: usize,
    total: Duration,
    fallbacks: u64,
    rebuilds: u64,
    phases: PhaseMicros,
) -> StreamMeasurement {
    let per_update = total / updates.max(1) as u32;
    StreamMeasurement {
        engine: engine.name(),
        window,
        batch,
        kernel,
        mode: mode.name(),
        updates,
        total,
        per_update,
        updates_per_sec: updates as f64 / total.as_secs_f64().max(1e-9),
        fallbacks,
        rebuilds,
        phases,
    }
}

impl StreamBenchReport {
    /// The cut-off-kernel row of one (engine, window, batch, mode) cell, if
    /// measured. The mode-comparison ratios below are defined on the
    /// paper-faithful cut-off rows: weighted kernels coerce every commit to
    /// incremental maintenance, so rebuild-vs-incremental ratios would be
    /// meaningless there.
    fn row(
        &self,
        engine: StreamEngine,
        window: usize,
        batch: usize,
        mode: &str,
    ) -> Option<&StreamMeasurement> {
        self.measurements.iter().find(|m| {
            m.engine == engine.name()
                && m.window == window
                && m.batch == batch
                && m.mode == mode
                && m.kernel.is_cutoff()
        })
    }

    /// Throughput of a weighted kernel's incremental row relative to the
    /// cut-off incremental row of the same cell — the cost of evaluating
    /// and maintaining w(d) weights instead of integer counts. `None`
    /// unless both rows were swept.
    pub fn kernel_overhead(
        &self,
        engine: StreamEngine,
        window: usize,
        batch: usize,
        kernel_name: &str,
    ) -> Option<f64> {
        let weighted = self.measurements.iter().find(|m| {
            m.engine == engine.name()
                && m.window == window
                && m.batch == batch
                && m.mode == "incremental"
                && m.kernel.name() == kernel_name
                && !m.kernel.is_cutoff()
        })?;
        let cutoff = self.row(engine, window, batch, "incremental")?;
        Some(weighted.updates_per_sec / cutoff.updates_per_sec.max(1e-9))
    }

    /// Speedup of incremental over rebuild for one engine, window size and
    /// batch size, if both rows exist.
    pub fn speedup(&self, engine: StreamEngine, window: usize, batch: usize) -> Option<f64> {
        match (
            self.row(engine, window, batch, "incremental"),
            self.row(engine, window, batch, "rebuild"),
        ) {
            (Some(inc), Some(reb)) => Some(inc.updates_per_sec / reb.updates_per_sec.max(1e-9)),
            _ => None,
        }
    }

    /// Speedup of batched epochs over per-update maintenance: incremental
    /// throughput at `batch` divided by incremental throughput at batch 1,
    /// for one engine and window size. `None` unless both cells were swept.
    pub fn batch_speedup(&self, engine: StreamEngine, window: usize, batch: usize) -> Option<f64> {
        match (
            self.row(engine, window, batch, "incremental"),
            self.row(engine, window, 1, "incremental"),
        ) {
            (Some(batched), Some(per_update)) => {
                Some(batched.updates_per_sec / per_update.updates_per_sec.max(1e-9))
            }
            _ => None,
        }
    }

    /// Throughput of the adaptive policy relative to the **better** of the
    /// two fixed modes for one cell: 1.0 means the adaptive policy matched
    /// the best fixed strategy exactly, values below 1.0 are its overhead.
    /// `None` unless the adaptive row and at least one fixed row exist.
    pub fn adaptive_vs_best(
        &self,
        engine: StreamEngine,
        window: usize,
        batch: usize,
    ) -> Option<f64> {
        let adaptive = self.row(engine, window, batch, "adaptive")?;
        let best = ["incremental", "rebuild"]
            .iter()
            .filter_map(|mode| self.row(engine, window, batch, mode))
            .map(|m| m.updates_per_sec)
            .fold(None::<f64>, |acc, s| Some(acc.map_or(s, |a| a.max(s))))?;
        Some(adaptive.updates_per_sec / best.max(1e-9))
    }

    /// The worst [`Self::adaptive_vs_best`] ratio across every swept cell —
    /// the headline "how much does choosing adaptively cost at most" number.
    /// `None` if no cell has both an adaptive row and a fixed-mode row.
    pub fn worst_adaptive_ratio(&self) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for &w in &self.options.windows {
            for &b in &self.options.batches {
                for &e in &self.options.engines {
                    if let Some(r) = self.adaptive_vs_best(e, w, b) {
                        worst = Some(worst.map_or(r, |x: f64| x.min(r)));
                    }
                }
            }
        }
        worst
    }

    /// Renders the report as the `BENCH_stream.json` snapshot (no external
    /// JSON dependency).
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, m) in self.measurements.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            let bandwidth = m
                .kernel
                .bandwidth()
                .map(|h| format!(", \"bandwidth\": {h}"))
                .unwrap_or_default();
            rows.push_str(&format!(
                "    {{ \"engine\": \"{}\", \"window\": {}, \"batch\": {}, \
                 \"kernel\": \"{}\"{bandwidth}, \"mode\": \"{}\", \
                 \"updates\": {}, \"per_update_us\": {:.1}, \"updates_per_sec\": {:.1}, \
                 \"fallbacks\": {}, \"rebuilds\": {}, \"phase_us\": {{ \"validate\": {}, \
                 \"apply\": {}, \"rho_repair\": {}, \"delta_repair\": {}, \"batch_query\": {}, \
                 \"recluster\": {} }} }}",
                m.engine,
                m.window,
                m.batch,
                m.kernel.name(),
                m.mode,
                m.updates,
                m.per_update.as_secs_f64() * 1e6,
                m.updates_per_sec,
                m.fallbacks,
                m.rebuilds,
                m.phases.validate,
                m.phases.apply,
                m.phases.rho_repair,
                m.phases.delta_repair,
                m.phases.batch_query,
                m.phases.recluster
            ));
        }
        let largest = self.options.windows.iter().copied().max().unwrap_or(0);
        let largest_batch = self.options.batches.iter().copied().max().unwrap_or(1);
        let speedups: Vec<String> = self
            .options
            .engines
            .iter()
            .filter_map(|&e| {
                self.speedup(e, largest, largest_batch)
                    .map(|s| format!("{} {:.1}x", e.name(), s))
            })
            .collect();
        let batch_speedups: Vec<String> = self
            .options
            .engines
            .iter()
            .filter_map(|&e| {
                self.batch_speedup(e, largest, largest_batch)
                    .map(|s| format!("{} {:.1}x", e.name(), s))
            })
            .collect();
        let mut note = format!(
            "incremental = dpc-stream epoch-batched affected-set maintenance over an updatable \
             index; rebuild = the same engine pinned to a bulk index rebuild + full batch \
             pipeline per epoch; speedups vs rebuild at the largest window ({largest}) and \
             batch ({largest_batch}): {}",
            speedups.join(", ")
        );
        if largest_batch > 1 && !batch_speedups.is_empty() {
            note.push_str(&format!(
                "; batched epochs (batch {largest_batch}) vs per-update maintenance (batch 1), \
                 incremental mode at window {largest}: {}",
                batch_speedups.join(", ")
            ));
        }
        let weighted: Vec<String> = self
            .options
            .kernels
            .iter()
            .filter(|k| !k.is_cutoff())
            .flat_map(|k| {
                self.options.engines.iter().filter_map(move |&e| {
                    self.kernel_overhead(e, largest, largest_batch, k.name())
                        .map(|r| format!("{} {} {r:.2}x", e.name(), k.name()))
                })
            })
            .collect();
        if !weighted.is_empty() {
            note.push_str(&format!(
                "; weighted-kernel incremental throughput vs cutoff at window {largest}, \
                 batch {largest_batch}: {}",
                weighted.join(", ")
            ));
        }
        if let Some(worst) = self.worst_adaptive_ratio() {
            note.push_str(&format!(
                "; adaptive = cost-model-driven per-epoch choice between the two, throughput vs \
                 the better fixed mode per cell, worst cell: {worst:.2}x"
            ));
        }
        format!(
            "{{\n  \"benchmark\": \"stream_throughput\",\n  \"dataset\": \"gowalla-checkins\",\n  \
             \"updates\": {},\n  \"dc\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \
             \"machine\": {{ \"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {} }},\n  \
             \"note\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
            self.options.updates,
            self.options.dc,
            self.options.seed,
            self.options.threads,
            std::env::consts::OS,
            std::env::consts::ARCH,
            self.cpus,
            note,
            rows
        )
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "streaming throughput @ {} updates, dc = {}, {} thread(s), {} cpu(s)\n\
             {:<8} {:<8} {:<7} {:<12} {:<12} {:>16} {:>14} {:>10} {:>9}\n",
            self.options.updates,
            self.options.dc,
            self.options.threads,
            self.cpus,
            "engine",
            "window",
            "batch",
            "kernel",
            "mode",
            "per update (us)",
            "updates/sec",
            "fallbacks",
            "rebuilds"
        );
        for m in &self.measurements {
            out.push_str(&format!(
                "{:<8} {:<8} {:<7} {:<12} {:<12} {:>16.1} {:>14.1} {:>10} {:>9}\n",
                m.engine,
                m.window,
                m.batch,
                m.kernel.name(),
                m.mode,
                m.per_update.as_secs_f64() * 1e6,
                m.updates_per_sec,
                m.fallbacks,
                m.rebuilds
            ));
            let p = &m.phases;
            out.push_str(&format!(
                "         phases (us): validate {}, apply {}, rho {}, delta {}, \
                 batch-query {}, recluster {}\n",
                p.validate, p.apply, p.rho_repair, p.delta_repair, p.batch_query, p.recluster
            ));
        }
        for &w in &self.options.windows {
            for &b in &self.options.batches {
                for &e in &self.options.engines {
                    if let Some(s) = self.speedup(e, w, b) {
                        out.push_str(&format!(
                            "{} @ window {w}, batch {b}: incremental is {s:.1}x rebuild\n",
                            e.name()
                        ));
                    }
                    if b > 1 {
                        if let Some(s) = self.batch_speedup(e, w, b) {
                            out.push_str(&format!(
                                "{} @ window {w}: batch {b} epochs are {s:.1}x per-update \
                                 maintenance\n",
                                e.name()
                            ));
                        }
                    }
                    if let Some(s) = self.adaptive_vs_best(e, w, b) {
                        out.push_str(&format!(
                            "{} @ window {w}, batch {b}: adaptive runs at {s:.2}x the better \
                             fixed mode\n",
                            e.name()
                        ));
                    }
                    for k in &self.options.kernels {
                        if k.is_cutoff() {
                            continue;
                        }
                        if let Some(r) = self.kernel_overhead(e, w, b, k.name()) {
                            out.push_str(&format!(
                                "{} @ window {w}, batch {b}: {} incremental runs at {r:.2}x \
                                 the cutoff kernel\n",
                                e.name(),
                                k.name()
                            ));
                        }
                    }
                }
            }
        }
        if let Some(worst) = self.worst_adaptive_ratio() {
            out.push_str(&format!(
                "adaptive vs the better fixed mode, worst cell: {worst:.2}x\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> StreamBenchOptions {
        StreamBenchOptions {
            engines: vec![StreamEngine::Grid],
            modes: StreamMode::ALL.to_vec(),
            windows: vec![150],
            batches: vec![1],
            kernels: vec![Kernel::Cutoff],
            updates: 40,
            dc: 0.3,
            seed: 7,
            threads: 1,
        }
    }

    #[test]
    fn sweep_produces_all_modes_per_window() {
        let report = run(&tiny_options());
        assert_eq!(report.measurements.len(), 3);
        assert_eq!(report.measurements[0].mode, "incremental");
        assert_eq!(report.measurements[1].mode, "rebuild");
        assert_eq!(report.measurements[2].mode, "adaptive");
        assert!(report.measurements.iter().all(|m| m.updates == 40));
        assert!(report.speedup(StreamEngine::Grid, 150, 1).unwrap() > 0.0);
        assert!(report.adaptive_vs_best(StreamEngine::Grid, 150, 1).unwrap() > 0.0);
        assert_eq!(
            report.worst_adaptive_ratio(),
            report.adaptive_vs_best(StreamEngine::Grid, 150, 1)
        );
        // The rebuild baseline rebuilds on every one of the 40 epochs; the
        // incremental row never does.
        assert_eq!(report.measurements[1].rebuilds, 40);
        assert_eq!(report.measurements[0].rebuilds, 0);
        // Per-phase breakdowns reflect the path each mode takes: the bulk
        // path pays the full-window batch query, the affected-set path
        // never does (and vice versa for the ρ repair).
        assert!(report.measurements[1].phases.batch_query > 0);
        assert_eq!(report.measurements[1].phases.rho_repair, 0);
        assert_eq!(report.measurements[0].phases.batch_query, 0);
    }

    #[test]
    fn single_mode_sweep_measures_only_that_mode() {
        let report = run(&StreamBenchOptions {
            modes: vec![StreamMode::Adaptive],
            ..tiny_options()
        });
        assert_eq!(report.measurements.len(), 1);
        assert_eq!(report.measurements[0].mode, "adaptive");
        // No fixed-mode rows to compare against.
        assert_eq!(report.adaptive_vs_best(StreamEngine::Grid, 150, 1), None);
        assert_eq!(report.worst_adaptive_ratio(), None);
    }

    #[test]
    fn batch_sweep_produces_rows_per_batch_size_and_batch_speedup() {
        let report = run(&StreamBenchOptions {
            batches: vec![1, 8],
            ..tiny_options()
        });
        // Three modes × two batch sizes.
        assert_eq!(report.measurements.len(), 6);
        assert!(report
            .measurements
            .iter()
            .any(|m| m.batch == 8 && m.mode == "adaptive"));
        assert!(report.batch_speedup(StreamEngine::Grid, 150, 8).unwrap() > 0.0);
        // Batch 1 vs itself is exactly 1.
        assert_eq!(report.batch_speedup(StreamEngine::Grid, 150, 1), Some(1.0));
    }

    #[test]
    fn tree_engines_sweep_and_stay_consistent() {
        let report = run(&StreamBenchOptions {
            engines: vec![StreamEngine::KdTree, StreamEngine::RTree],
            batches: vec![1, 8],
            ..tiny_options()
        });
        // Three rows per engine per batch size; the in-benchmark assertion
        // already checked incremental == adaptive == batch for each cell.
        assert_eq!(report.measurements.len(), 12);
        for e in [StreamEngine::KdTree, StreamEngine::RTree] {
            assert!(report.speedup(e, 150, 1).unwrap() > 0.0);
            assert!(report.speedup(e, 150, 8).unwrap() > 0.0);
            assert!(report.adaptive_vs_best(e, 150, 8).unwrap() > 0.0);
            assert!(report
                .measurements
                .iter()
                .any(|m| m.engine == e.name() && m.mode == "rebuild"));
        }
    }

    #[test]
    fn kernel_sweep_adds_weighted_rows_that_never_rebuild() {
        let report = run(&StreamBenchOptions {
            kernels: vec![Kernel::Cutoff, Kernel::gaussian(0.3)],
            batches: vec![8],
            ..tiny_options()
        });
        // Three modes × two kernels.
        assert_eq!(report.measurements.len(), 6);
        let gaussian: Vec<_> = report
            .measurements
            .iter()
            .filter(|m| m.kernel == Kernel::gaussian(0.3))
            .collect();
        assert_eq!(gaussian.len(), 3);
        // A bulk rebuild cannot reproduce streamed weighted densities, so
        // even the rebuild-pinned and adaptive rows stay incremental.
        assert!(gaussian.iter().all(|m| m.rebuilds == 0), "{gaussian:?}");
        // The cut-off rows still anchor the mode-comparison ratios, and the
        // weighted rows get their own overhead ratio.
        assert!(report.speedup(StreamEngine::Grid, 150, 8).unwrap() > 0.0);
        let overhead = report
            .kernel_overhead(StreamEngine::Grid, 150, 8, "gaussian")
            .unwrap();
        assert!(overhead > 0.0);
        let json = report.to_json();
        assert!(json.contains("\"kernel\": \"cutoff\""), "{json}");
        assert!(
            json.contains("\"kernel\": \"gaussian\", \"bandwidth\": 0.3"),
            "{json}"
        );
        assert!(
            json.contains("weighted-kernel incremental throughput"),
            "{json}"
        );
        assert!(report.render().contains("gaussian"), "{}", report.render());
    }

    #[test]
    fn kernel_specs_parse_with_and_without_bandwidths() {
        assert_eq!(parse_kernel_spec("cutoff", 0.1).unwrap(), Kernel::Cutoff);
        assert_eq!(
            parse_kernel_spec("gaussian", 0.1).unwrap(),
            Kernel::gaussian(0.1)
        );
        assert_eq!(
            parse_kernel_spec("gaussian:0.5", 0.1).unwrap(),
            Kernel::gaussian(0.5)
        );
        assert_eq!(
            parse_kernel_spec("exp:2", 0.1).unwrap(),
            Kernel::exponential(2.0)
        );
        assert!(parse_kernel_spec("cutoff:1", 0.1).is_err());
        assert!(parse_kernel_spec("gaussian:x", 0.1).is_err());
        assert!(parse_kernel_spec("gaussian:-1", 0.1)
            .unwrap_err()
            .contains("valid range"));
        assert!(parse_kernel_spec("tricube", 0.1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn no_kernels_panics() {
        run(&StreamBenchOptions {
            kernels: vec![],
            ..tiny_options()
        });
    }

    #[test]
    fn engine_names_round_trip() {
        for e in StreamEngine::ALL {
            assert_eq!(StreamEngine::parse(e.name()).unwrap(), e);
        }
        assert_eq!(StreamEngine::parse("kd").unwrap(), StreamEngine::KdTree);
        assert!(StreamEngine::parse("ball-tree").is_err());
    }

    #[test]
    fn mode_names_round_trip() {
        for m in StreamMode::ALL {
            assert_eq!(StreamMode::parse(m.name()).unwrap(), m);
        }
        assert_eq!(StreamMode::parse("inc").unwrap(), StreamMode::Incremental);
        assert_eq!(StreamMode::parse("auto").unwrap(), StreamMode::Adaptive);
        assert!(StreamMode::parse("oracle").is_err());
    }

    #[test]
    fn json_snapshot_has_the_expected_fields() {
        let report = run(&tiny_options());
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"stream_throughput\"",
            "\"updates\": 40",
            "\"machine\"",
            "\"engine\": \"grid\"",
            "\"batch\": 1",
            "\"mode\": \"incremental\"",
            "\"mode\": \"rebuild\"",
            "\"mode\": \"adaptive\"",
            "\"updates_per_sec\"",
            "\"rebuilds\"",
            "\"phase_us\"",
            "\"batch_query\"",
            "worst cell",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.render().contains("incremental"));
        assert!(report.render().contains("adaptive"));
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn zero_updates_panics() {
        run(&StreamBenchOptions {
            updates: 0,
            ..tiny_options()
        });
    }

    #[test]
    #[should_panic(expected = "at least one engine")]
    fn no_engines_panics() {
        run(&StreamBenchOptions {
            engines: vec![],
            ..tiny_options()
        });
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn no_modes_panics() {
        run(&StreamBenchOptions {
            modes: vec![],
            ..tiny_options()
        });
    }

    #[test]
    #[should_panic(expected = "positive batch size")]
    fn zero_batch_panics() {
        run(&StreamBenchOptions {
            batches: vec![0],
            ..tiny_options()
        });
    }

    #[test]
    #[should_panic(expected = "exceeds the smallest window")]
    fn batch_larger_than_window_panics_with_a_clear_message() {
        // Without the up-front check this used to die mid-sweep in the
        // rebuild baseline's `live.drain(..batch)` with a slice error.
        run(&StreamBenchOptions {
            batches: vec![1, 512],
            ..tiny_options() // window 150
        });
    }
}
