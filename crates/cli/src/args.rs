//! Flag parsing for the `dpc` command-line tool.
//!
//! The tool deliberately avoids an external argument-parsing dependency: the
//! grammar is small (`--flag value` pairs plus one subcommand) and keeping
//! the workspace's dependency set to the approved list matters more than
//! fancy help output.

use std::collections::BTreeMap;

/// A parsed command line: the subcommand name plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// All `--flag value` pairs, keyed without the leading dashes.
    flags: BTreeMap<String, String>,
    /// Flags given without a value (e.g. `--halo`).
    switches: Vec<String>,
}

impl ParsedArgs {
    /// Parses a raw argument list.
    ///
    /// Grammar: `<command> (--flag value | --switch)*`. A flag is treated as
    /// a valueless switch when it is followed by another flag or by nothing.
    pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
        let mut iter = args.iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| "missing subcommand".to_string())?
            .clone();
        if command.starts_with("--") {
            return Err(format!("expected a subcommand, found flag {command:?}"));
        }
        let mut flags = BTreeMap::new();
        let mut switches = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            if name.is_empty() {
                return Err("empty flag name".to_string());
            }
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked value must exist");
                    if flags.insert(name.to_string(), value.clone()).is_some() {
                        return Err(format!("flag --{name} given more than once"));
                    }
                }
                _ => switches.push(name.to_string()),
            }
        }
        Ok(ParsedArgs {
            command,
            flags,
            switches,
        })
    }

    /// The raw string value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional flag parsed into any `FromStr` type.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// A required flag parsed into any `FromStr` type.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.require(name)?.parse().map_err(|_| {
            format!(
                "invalid value {:?} for --{name}",
                self.get(name).unwrap_or("")
            )
        })
    }

    /// An optional flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.get_parsed(name)?.unwrap_or(default))
    }

    /// Whether a valueless switch was given.
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Names of all flags and switches, for unknown-flag validation.
    pub fn all_names(&self) -> Vec<&str> {
        self.flags
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
            .collect()
    }

    /// Errors out when a flag outside `allowed` was provided.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), String> {
        for name in self.all_names() {
            if !allowed.contains(&name) {
                return Err(format!(
                    "unknown flag --{name} for `{}` (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let p = ParsedArgs::parse(&args(&[
            "cluster", "--input", "pts.csv", "--dc", "0.5", "--halo",
        ]))
        .unwrap();
        assert_eq!(p.command, "cluster");
        assert_eq!(p.get("input"), Some("pts.csv"));
        assert_eq!(p.require_parsed::<f64>("dc").unwrap(), 0.5);
        assert!(p.has_switch("halo"));
        assert!(!p.has_switch("verbose"));
    }

    #[test]
    fn missing_subcommand_or_leading_flag_is_an_error() {
        assert!(ParsedArgs::parse(&[]).is_err());
        assert!(ParsedArgs::parse(&args(&["--input", "x"])).is_err());
    }

    #[test]
    fn duplicate_flags_and_positionals_are_rejected() {
        assert!(ParsedArgs::parse(&args(&["cluster", "--dc", "1", "--dc", "2"])).is_err());
        assert!(ParsedArgs::parse(&args(&["cluster", "stray"])).is_err());
    }

    #[test]
    fn typed_accessors_validate_values() {
        let p = ParsedArgs::parse(&args(&["generate", "--scale", "abc"])).unwrap();
        assert!(p.require_parsed::<f64>("scale").is_err());
        assert!(p.get_parsed::<f64>("scale").is_err());
        assert_eq!(p.get_or("seed", 7u64).unwrap(), 7);
        assert!(p.require("missing").is_err());
    }

    #[test]
    fn reject_unknown_lists_allowed_flags() {
        let p = ParsedArgs::parse(&args(&["cluster", "--bogus", "1"])).unwrap();
        let err = p.reject_unknown(&["input", "dc"]).unwrap_err();
        assert!(err.contains("--bogus"));
        assert!(err.contains("--input"));
    }
}
