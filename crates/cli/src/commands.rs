//! Implementation of the `dpc` subcommands.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dpc_baseline::LeanDpc;
use dpc_core::{
    CenterSelection, Clustering, Dataset, DcEstimation, DpcIndex, DpcParams, Kernel, UpdatableIndex,
};
use dpc_datasets::{read_points_csv, write_labels_csv, write_points_csv, DatasetKind};
use dpc_list_index::{ChIndex, KnnDpc, ListIndex};
use dpc_obs::{Fanout, MetricsRecorder, SharedRecorder, TraceSink};
use dpc_stream::{CommitPolicy, StreamParams, StreamingDpc};
use dpc_tree_index::{GridIndex, KdTree, Quadtree, RTree};

use crate::args::ParsedArgs;

/// `dpc generate`: writes a synthetic benchmark dataset (and optionally its
/// generating labels) to CSV.
pub fn generate(args: &ParsedArgs) -> Result<String, String> {
    args.reject_unknown(&["dataset", "scale", "seed", "output", "labels"])?;
    let kind = DatasetKind::parse(args.require("dataset")?).ok_or_else(|| {
        format!(
            "unknown dataset {:?}",
            args.require("dataset").unwrap_or("")
        )
    })?;
    let scale: f64 = args.get_or("scale", 0.02)?;
    if scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let seed: u64 = args.get_or("seed", 42)?;
    let output = PathBuf::from(args.require("output")?);

    let labelled = kind.generate(seed, scale);
    write_points_csv(&output, &labelled.dataset).map_err(|e| e.to_string())?;
    let mut summary = format!(
        "wrote {} points of {} (scale {scale}, seed {seed}) to {}",
        labelled.len(),
        kind.name(),
        output.display()
    );
    if let Some(labels_path) = args.get("labels") {
        let path = PathBuf::from(labels_path);
        write_labels_csv(&path, &labelled.dataset, &labelled.labels).map_err(|e| e.to_string())?;
        let _ = write!(summary, "\nwrote generating labels to {}", path.display());
    }
    Ok(summary)
}

/// `dpc estimate-dc`: prints the quantile-heuristic cut-off distance.
pub fn estimate_dc(args: &ParsedArgs) -> Result<String, String> {
    args.reject_unknown(&["input", "fraction"])?;
    let data = load_points(args.require("input")?)?;
    let fraction: f64 = args.get_or("fraction", 0.02)?;
    let dc = DcEstimation::with_fraction(fraction)
        .estimate(&data)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "estimated dc = {dc} (targeting ~{:.1}% neighbours per point over {} points)",
        fraction * 100.0,
        data.len()
    ))
}

/// `dpc cluster`: clusters a CSV point set with a chosen index and writes the
/// labels.
pub fn cluster(args: &ParsedArgs) -> Result<String, String> {
    args.reject_unknown(&[
        "input",
        "dc",
        "index",
        "bin-width",
        "tau",
        "centers",
        "kernel",
        "bandwidth",
        "halo",
        "threads",
        "output",
        "decision-graph",
    ])?;
    let data = load_points(args.require("input")?)?;
    let dc: f64 = args.require_parsed("dc")?;
    let index_name = args.get("index").unwrap_or("rtree");
    let bin_width: Option<f64> = args.get_parsed("bin-width")?;
    let tau: Option<f64> = args.get_parsed("tau")?;
    let selection = parse_centers(args.get("centers").unwrap_or("auto"))?;
    let kernel = parse_kernel(args.get("kernel"), args.get_parsed("bandwidth")?)?;
    let halo = args.has_switch("halo");
    // Default stays 1 (sequential) so timings remain comparable to the
    // paper's single-threaded measurements unless parallelism is asked for.
    let threads: usize = args.get_or("threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let index = build_index(&data, index_name, bin_width, tau, dc)?;
    let params = DpcParams::new(dc)
        .with_centers(selection)
        .with_kernel(kernel)
        .with_halo(halo)
        .with_threads(threads);
    let run = dpc_core::DpcPipeline::new(params)
        .run(index.as_ref())
        .map_err(|e| e.to_string())?;

    if let Some(path) = args.get("decision-graph") {
        write_decision_graph(Path::new(path), &run)?;
    }
    if let Some(path) = args.get("output") {
        write_clustering(Path::new(path), &data, &run.clustering)?;
    }

    let mut summary = summarise(index_name, &data, &run, args.get("output"));
    if !kernel.is_cutoff() {
        summary.push_str(&format!("\ndensity kernel: {}", describe_kernel(kernel)));
    }
    if threads > 1 {
        summary.push_str(&format!("\nqueries ran on {threads} threads"));
    }
    Ok(summary)
}

/// `dpc knn-cluster`: the kNN-density variant (no `dc` parameter).
pub fn knn_cluster(args: &ParsedArgs) -> Result<String, String> {
    args.reject_unknown(&["input", "k", "centers", "output"])?;
    let data = load_points(args.require("input")?)?;
    let k: usize = args.require_parsed("k")?;
    let selection = parse_centers(args.get("centers").unwrap_or("auto"))?;

    let knn = KnnDpc::build(&data);
    let clustering = knn.cluster(k, &selection).map_err(|e| e.to_string())?;
    if let Some(path) = args.get("output") {
        write_clustering(Path::new(path), &data, &clustering)?;
    }
    let mut sizes = clustering.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    Ok(format!(
        "kNN-DPC (k = {k}): {} clusters over {} points; sizes (largest first): {:?}",
        clustering.num_clusters(),
        data.len(),
        truncated(&sizes, 10)
    ))
}

/// `dpc stream`: replays a CSV point file as a timestamped stream through
/// the incremental engine and prints per-epoch cluster deltas.
///
/// The first `--window` points seed the engine; every subsequent batch of
/// `--batch` points slides the window (evicting the same number of oldest
/// points), and each epoch's births/deaths/relabel counts are printed.
/// `--engine` picks the updatable index family maintaining the window
/// (`--index` is accepted as an alias). `--policy` picks the commit
/// strategy: `incremental` (always affected-set maintenance, the default),
/// `rebuild` (always bulk-rebuild the index and re-run the batch pipeline)
/// or `adaptive` (a calibrated cost model chooses per epoch).
///
/// Observability: `--json` switches the per-epoch lines and the exit
/// summary to one JSON object per line, `--metrics` attaches a
/// [`MetricsRecorder`] and prints its snapshot table after the replay, and
/// `--trace-out PATH` attaches a [`TraceSink`] and writes a Chrome
/// trace-event file (loadable in Perfetto / `chrome://tracing`).
pub fn stream(args: &ParsedArgs) -> Result<String, String> {
    args.reject_unknown(&[
        "input",
        "dc",
        "engine",
        "index",
        "window",
        "batch",
        "threads",
        "centers",
        "kernel",
        "bandwidth",
        "decay",
        "max-epochs",
        "policy",
        "quiet",
        "json",
        "metrics",
        "trace-out",
    ])?;
    let data = load_points(args.require("input")?)?;
    let dc: f64 = args.require_parsed("dc")?;
    let index_name = args
        .get("engine")
        .or_else(|| args.get("index"))
        .unwrap_or("grid");
    let window: usize = args.get_or("window", 1_000)?;
    let batch: usize = args.get_or("batch", 100)?;
    let threads: usize = args.get_or("threads", 1)?;
    let selection = parse_centers(args.get("centers").unwrap_or("auto"))?;
    let kernel = parse_kernel(args.get("kernel"), args.get_parsed("bandwidth")?)?;
    let decay: f64 = args.get_or("decay", 1.0)?;
    let max_epochs: usize = args.get_or("max-epochs", usize::MAX)?;
    let policy = CommitPolicy::parse(args.get("policy").unwrap_or("incremental"))
        .map_err(|e| e.to_string())?;
    let quiet = args.has_switch("quiet");
    let json = args.has_switch("json");
    let trace_out = args.get("trace-out").map(PathBuf::from);
    // Recorders are pure side channels: attach only what was asked for, so
    // the default invocation keeps the guaranteed-zero-overhead no-op path.
    let metrics = args
        .has_switch("metrics")
        .then(|| Arc::new(MetricsRecorder::new()));
    let trace = trace_out.is_some().then(|| Arc::new(TraceSink::new()));
    let recorder: Option<SharedRecorder> = match (&metrics, &trace) {
        (None, None) => None,
        (Some(m), None) => Some(Arc::clone(m) as SharedRecorder),
        (None, Some(t)) => Some(Arc::clone(t) as SharedRecorder),
        (Some(m), Some(t)) => Some(Arc::new(
            Fanout::new()
                .with(Arc::clone(m) as SharedRecorder)
                .with(Arc::clone(t) as SharedRecorder),
        )),
    };
    if window == 0 || batch == 0 {
        return Err("--window and --batch must be positive".into());
    }
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if data.is_empty() {
        return Err("input file holds no points".into());
    }

    let points = data.points();
    let warm = window.min(points.len());
    let seed = Dataset::new(points[..warm].to_vec());
    let params = StreamParams::new(dc)
        .with_dpc(
            DpcParams::new(dc)
                .with_centers(selection)
                .with_kernel(kernel)
                .with_threads(threads),
        )
        .with_policy(policy)
        .with_decay(decay);
    let mut lines = Vec::new();
    let opts = ReplayOpts {
        quiet,
        json,
        recorder,
    };
    let seed_timer = dpc_core::Timer::start();
    // The engine is seeded inside the call arguments, before `replay` starts
    // its own timer — so the reported updates/s covers only the streamed
    // updates, not the one-off index build + batch seeding query.
    let (stats, elapsed) = match index_name.to_ascii_lowercase().as_str() {
        "grid" => replay(
            StreamingDpc::new(GridIndex::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &opts,
            &mut lines,
        )?,
        "kdtree" | "kd" => replay(
            StreamingDpc::new(KdTree::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &opts,
            &mut lines,
        )?,
        "rtree" => replay(
            StreamingDpc::new(RTree::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &opts,
            &mut lines,
        )?,
        "naive" => replay(
            StreamingDpc::new(
                dpc_core::naive_reference::NaiveReferenceIndex::build(&seed),
                params,
            )
            .map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &opts,
            &mut lines,
        )?,
        "lean" => replay(
            StreamingDpc::new(LeanDpc::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &opts,
            &mut lines,
        )?,
        other => {
            return Err(format!(
                "unknown streaming engine {other:?} (grid, kdtree, rtree, naive, or lean)"
            ))
        }
    };
    let seed_time = seed_timer.elapsed().saturating_sub(elapsed);

    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    // `stats.updates` counts evictions and insertions separately (a slid
    // point is 2 point-updates); say so, since bench_stream's rows count
    // one-in-one-out slides and would otherwise look 2x slower. The δ/µ
    // repair is paid per *epoch* (one `--batch`-sized advance), so the
    // incremental/fallback split and the affected union are per epoch.
    if json {
        let bandwidth_field = kernel
            .bandwidth()
            .map(|h| format!(",\"bandwidth\":{h}"))
            .unwrap_or_default();
        let _ = write!(
            out,
            "{{\"event\":\"summary\",\"updates\":{},\"window\":{warm},\
             \"elapsed_ms\":{:.3},\"seed_ms\":{:.3},\"epochs\":{},\
             \"incremental\":{},\"fallback\":{},\"rebuild\":{},\"decay_epochs\":{},\
             \"mean_affected\":{:.3},\"policy\":\"{}\",\
             \"kernel\":\"{}\"{bandwidth_field},\"decay\":{decay},\
             \"eps_queries\":{},\
             \"predicted_cost_us\":{},\"observed_cost_us\":{}}}",
            stats.updates,
            elapsed.as_secs_f64() * 1e3,
            seed_time.as_secs_f64() * 1e3,
            stats.epochs,
            stats.incremental_epochs,
            stats.fallback_epochs,
            stats.rebuild_epochs,
            stats.decay_epochs,
            stats.affected_points as f64 / (stats.epochs as f64).max(1.0),
            policy.name(),
            kernel.name(),
            stats.eps_queries,
            stats.predicted_cost_micros,
            stats.observed_cost_micros
        );
    } else {
        let _ = write!(
            out,
            "applied {} point updates (each eviction or insertion) over a window \
             of {} in {:.1} ms ({:.0} point updates/s, seeding took {:.1} ms): \
             {} epochs ({} incremental, {} fallback, {} rebuild), \
             mean affected union {:.1}, commit policy {}",
            stats.updates,
            warm,
            elapsed.as_secs_f64() * 1e3,
            stats.updates as f64 / elapsed.as_secs_f64().max(1e-9),
            seed_time.as_secs_f64() * 1e3,
            stats.epochs,
            stats.incremental_epochs,
            stats.fallback_epochs,
            stats.rebuild_epochs,
            stats.affected_points as f64 / (stats.epochs as f64).max(1.0),
            policy.name()
        );
        if !kernel.is_cutoff() || decay != 1.0 {
            let _ = write!(out, ", kernel {}, decay {decay}", describe_kernel(kernel));
        }
        if policy == CommitPolicy::Adaptive {
            let _ = write!(
                out,
                " (cost model predicted {} us across epochs, observed {} us)",
                stats.predicted_cost_micros, stats.observed_cost_micros
            );
        }
    }
    if let Some(metrics) = &metrics {
        out.push('\n');
        out.push_str(&metrics.snapshot().render());
    }
    if let (Some(trace), Some(path)) = (&trace, &trace_out) {
        std::fs::write(path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
        if !json {
            let _ = write!(
                out,
                "\nwrote Chrome trace ({} events) to {}",
                trace.events().len(),
                path.display()
            );
        }
    }
    Ok(out)
}

/// Per-epoch reporting options and the optional recorder for [`replay`].
struct ReplayOpts {
    /// Suppress per-epoch lines entirely.
    quiet: bool,
    /// Emit per-epoch lines as JSON objects instead of human-readable text.
    json: bool,
    /// Recorder to attach to the engine before replaying, if any.
    recorder: Option<SharedRecorder>,
}

/// Drives one engine over the remaining points and collects epoch summaries.
/// Returns the engine's counters and the wall-clock time of the replay loop
/// alone (the caller's seeding work is excluded).
fn replay<I: UpdatableIndex>(
    mut engine: StreamingDpc<I>,
    rest: &[dpc_core::Point],
    batch: usize,
    max_epochs: usize,
    opts: &ReplayOpts,
    lines: &mut Vec<String>,
) -> Result<(dpc_stream::StreamStats, std::time::Duration), String> {
    if let Some(rec) = &opts.recorder {
        engine.set_recorder(Arc::clone(rec));
    }
    if opts.quiet {
        // No per-epoch lines at all.
    } else if opts.json {
        lines.push(format!(
            "{{\"event\":\"seed\",\"window\":{},\"clusters\":{}}}",
            engine.len(),
            engine.clustering().num_clusters()
        ));
    } else {
        lines.push(format!(
            "seeded window of {} points: {} clusters",
            engine.len(),
            engine.clustering().num_clusters()
        ));
    }
    let timer = dpc_core::Timer::start();
    for chunk in rest.chunks(batch).take(max_epochs) {
        let (_, delta) = engine
            .advance(chunk, chunk.len())
            .map_err(|e| e.to_string())?;
        if opts.quiet {
            continue;
        }
        // Tag each epoch with the maintenance path the commit policy
        // actually took (incremental / fallback / rebuild).
        let mode = engine.stats().last_epoch_mode.map_or("?", |m| m.name());
        lines.push(epoch_line(
            mode,
            &delta,
            engine.stats().last_epoch_micros,
            opts.json,
        ));
    }
    Ok((engine.stats(), timer.elapsed()))
}

/// One per-epoch report line — shared by `dpc stream` and `dpc serve` so
/// both feeds carry the same cluster events, including the re-centred
/// survivors that used to be misreported as a death plus a birth.
fn epoch_line(mode: &str, delta: &dpc_stream::ClusterDelta, micros: u64, json: bool) -> String {
    if json {
        format!(
            "{{\"event\":\"epoch\",\"epoch\":{},\"clusters\":{},\
             \"births\":{},\"deaths\":{},\"recentred\":{},\
             \"insertions\":{},\"evictions\":{},\"relabelled\":{},\
             \"mode\":\"{mode}\",\"maintenance_us\":{micros}}}",
            delta.epoch,
            delta.num_clusters,
            delta.births.len(),
            delta.deaths.len(),
            delta.recentred.len(),
            delta.insertions(),
            delta.evictions(),
            delta.relabelled(),
        )
    } else {
        format!("{} [{mode}]", delta.summary())
    }
}

fn load_points(path: &str) -> Result<Dataset, String> {
    read_points_csv(Path::new(path)).map_err(|e| e.to_string())
}

/// `dpc serve`: replays a CSV stream through the serving layer — one writer
/// committing epochs while `--readers` threads answer point-lookup,
/// ε-neighbourhood and subscription queries from the published epoch
/// snapshots.
///
/// The writer is exactly `dpc stream`'s replay loop (same `--window`,
/// `--batch`, `--policy`, per-epoch delta lines); the serving layer wraps
/// the engine in a [`dpc_serve::Server`] so every committed epoch publishes
/// an immutable snapshot. Reader threads issue a deterministic mix of the
/// three query families against the newest snapshot and report per-family
/// p50/p99 latencies in the exit summary. `--ring` bounds the subscription
/// delta ring (lagging subscribers resync, counted in the summary).
///
/// `--json`, `--metrics` and `--trace-out` behave as in `dpc stream`; with
/// a trace attached, reader query spans and writer epoch phases land in the
/// same Chrome trace, on separate thread lanes.
pub fn serve(args: &ParsedArgs) -> Result<String, String> {
    args.reject_unknown(&[
        "input",
        "dc",
        "engine",
        "index",
        "window",
        "batch",
        "threads",
        "centers",
        "kernel",
        "bandwidth",
        "decay",
        "max-epochs",
        "policy",
        "readers",
        "ring",
        "quiet",
        "json",
        "metrics",
        "trace-out",
    ])?;
    let data = load_points(args.require("input")?)?;
    let dc: f64 = args.require_parsed("dc")?;
    let index_name = args
        .get("engine")
        .or_else(|| args.get("index"))
        .unwrap_or("grid");
    let window: usize = args.get_or("window", 1_000)?;
    let batch: usize = args.get_or("batch", 100)?;
    let threads: usize = args.get_or("threads", 1)?;
    let selection = parse_centers(args.get("centers").unwrap_or("auto"))?;
    let kernel = parse_kernel(args.get("kernel"), args.get_parsed("bandwidth")?)?;
    let decay: f64 = args.get_or("decay", 1.0)?;
    let max_epochs: usize = args.get_or("max-epochs", usize::MAX)?;
    let policy = CommitPolicy::parse(args.get("policy").unwrap_or("incremental"))
        .map_err(|e| e.to_string())?;
    let readers: usize = args.get_or("readers", 2)?;
    let ring: usize = args.get_or("ring", 64)?;
    let quiet = args.has_switch("quiet");
    let json = args.has_switch("json");
    let trace_out = args.get("trace-out").map(PathBuf::from);
    let metrics = args
        .has_switch("metrics")
        .then(|| Arc::new(MetricsRecorder::new()));
    let trace = trace_out.is_some().then(|| Arc::new(TraceSink::new()));
    let recorder: Option<SharedRecorder> = match (&metrics, &trace) {
        (None, None) => None,
        (Some(m), None) => Some(Arc::clone(m) as SharedRecorder),
        (None, Some(t)) => Some(Arc::clone(t) as SharedRecorder),
        (Some(m), Some(t)) => Some(Arc::new(
            Fanout::new()
                .with(Arc::clone(m) as SharedRecorder)
                .with(Arc::clone(t) as SharedRecorder),
        )),
    };
    if window == 0 || batch == 0 {
        return Err("--window and --batch must be positive".into());
    }
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if ring == 0 {
        return Err("--ring must be positive".into());
    }
    if data.is_empty() {
        return Err("input file holds no points".into());
    }

    let points = data.points();
    let warm = window.min(points.len());
    let seed = Dataset::new(points[..warm].to_vec());
    let params = StreamParams::new(dc)
        .with_dpc(
            DpcParams::new(dc)
                .with_centers(selection)
                .with_kernel(kernel)
                .with_threads(threads),
        )
        .with_policy(policy)
        .with_decay(decay);
    let mut lines = Vec::new();
    let opts = ReplayOpts {
        quiet,
        json,
        recorder,
    };
    let serve_opts = ServeOpts {
        readers,
        ring,
        eps: dc,
        query_points: points,
    };
    let (report, elapsed) = match index_name.to_ascii_lowercase().as_str() {
        "grid" => serve_replay(
            StreamingDpc::new(GridIndex::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &serve_opts,
            &opts,
            &mut lines,
        )?,
        "kdtree" | "kd" => serve_replay(
            StreamingDpc::new(KdTree::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &serve_opts,
            &opts,
            &mut lines,
        )?,
        "rtree" => serve_replay(
            StreamingDpc::new(RTree::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &serve_opts,
            &opts,
            &mut lines,
        )?,
        "naive" => serve_replay(
            StreamingDpc::new(
                dpc_core::naive_reference::NaiveReferenceIndex::build(&seed),
                params,
            )
            .map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &serve_opts,
            &opts,
            &mut lines,
        )?,
        "lean" => serve_replay(
            StreamingDpc::new(LeanDpc::build(&seed), params).map_err(|e| e.to_string())?,
            &points[warm..],
            batch,
            max_epochs,
            &serve_opts,
            &opts,
            &mut lines,
        )?,
        other => {
            return Err(format!(
                "unknown streaming engine {other:?} (grid, kdtree, rtree, naive, or lean)"
            ))
        }
    };

    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    let q = |h: &dpc_obs::Histogram, q: f64| h.value_at_quantile(q).unwrap_or(0);
    let kernel_name = kernel.name();
    if json {
        let _ = write!(
            out,
            "{{\"event\":\"serve_summary\",\"epochs\":{},\"published\":{},\
             \"window\":{warm},\"elapsed_ms\":{:.3},\"readers\":{readers},\
             \"kernel\":\"{kernel_name}\",\"decay\":{decay},\
             \"lookups\":{},\"eps_queries\":{},\"sub_polls\":{},\
             \"resyncs\":{},\"ring_evictions\":{},\
             \"lookup_p50_us\":{},\"lookup_p99_us\":{},\
             \"eps_p50_us\":{},\"eps_p99_us\":{},\
             \"sub_p50_us\":{},\"sub_p99_us\":{}}}",
            report.stats.epochs,
            report.published,
            elapsed.as_secs_f64() * 1e3,
            report.lookups,
            report.eps_queries,
            report.sub_polls,
            report.resyncs,
            report.ring_evictions,
            q(&report.lookup, 0.5),
            q(&report.lookup, 0.99),
            q(&report.eps, 0.5),
            q(&report.eps, 0.99),
            q(&report.sub, 0.5),
            q(&report.sub, 0.99),
        );
    } else {
        let _ = write!(
            out,
            "served {} epochs ({} published) over a window of {warm} in {:.1} ms \
             ({:.1} epochs/s); {readers} readers issued {} lookups, {} eps-queries, \
             {} subscription polls ({} resyncs, {} ring evictions); \
             p50/p99 us: lookup {}/{}, eps {}/{}, sub {}/{}",
            report.stats.epochs,
            report.published,
            elapsed.as_secs_f64() * 1e3,
            report.stats.epochs as f64 / elapsed.as_secs_f64().max(1e-9),
            report.lookups,
            report.eps_queries,
            report.sub_polls,
            report.resyncs,
            report.ring_evictions,
            q(&report.lookup, 0.5),
            q(&report.lookup, 0.99),
            q(&report.eps, 0.5),
            q(&report.eps, 0.99),
            q(&report.sub, 0.5),
            q(&report.sub, 0.99),
        );
        if !kernel.is_cutoff() || decay != 1.0 {
            let _ = write!(out, "; kernel {}, decay {decay}", describe_kernel(kernel));
        }
    }
    if let Some(metrics) = &metrics {
        out.push('\n');
        out.push_str(&metrics.snapshot().render());
    }
    if let (Some(trace), Some(path)) = (&trace, &trace_out) {
        std::fs::write(path, trace.to_chrome_json()).map_err(|e| e.to_string())?;
        if !json {
            let _ = write!(
                out,
                "\nwrote Chrome trace ({} events) to {}",
                trace.events().len(),
                path.display()
            );
        }
    }
    Ok(out)
}

/// Serving-specific knobs for [`serve_replay`].
struct ServeOpts<'a> {
    /// Number of concurrent reader threads.
    readers: usize,
    /// Capacity of the subscription delta ring.
    ring: usize,
    /// Radius for the readers' ε-neighbourhood queries.
    eps: f64,
    /// Pool of coordinates the readers centre ε-queries on.
    query_points: &'a [dpc_core::Point],
}

/// What one replay through the serving layer observed: the writer's engine
/// stats plus the merged reader-side tallies and latency histograms.
struct ServeReport {
    stats: dpc_stream::StreamStats,
    published: u64,
    ring_evictions: u64,
    lookups: u64,
    eps_queries: u64,
    sub_polls: u64,
    resyncs: u64,
    lookup: dpc_obs::Histogram,
    eps: dpc_obs::Histogram,
    sub: dpc_obs::Histogram,
}

/// Per-reader-thread tallies, merged into the [`ServeReport`] at join.
#[derive(Default)]
struct ReaderTally {
    lookups: u64,
    eps_queries: u64,
    sub_polls: u64,
    resyncs: u64,
    lookup: dpc_obs::Histogram,
    eps: dpc_obs::Histogram,
    sub: dpc_obs::Histogram,
}

/// Drives the writer over the remaining points while `opts.readers` threads
/// issue a deterministic mix of queries against the published snapshots.
/// Returns the merged report and the wall-clock time of the replay loop.
fn serve_replay<I: UpdatableIndex>(
    mut engine: StreamingDpc<I>,
    rest: &[dpc_core::Point],
    batch: usize,
    max_epochs: usize,
    serve_opts: &ServeOpts<'_>,
    opts: &ReplayOpts,
    lines: &mut Vec<String>,
) -> Result<(ServeReport, std::time::Duration), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    if let Some(rec) = &opts.recorder {
        engine.set_recorder(Arc::clone(rec));
    }
    let mut server = dpc_serve::Server::new(engine, serve_opts.ring);
    let reader_handles: Vec<_> = (0..serve_opts.readers).map(|_| server.reader()).collect();
    if opts.quiet {
        // No per-epoch lines at all.
    } else if opts.json {
        lines.push(format!(
            "{{\"event\":\"seed\",\"window\":{},\"clusters\":{}}}",
            server.engine().len(),
            server.engine().clustering().num_clusters()
        ));
    } else {
        lines.push(format!(
            "seeded window of {} points: {} clusters",
            server.engine().len(),
            server.engine().clustering().num_clusters()
        ));
    }

    let stop = AtomicBool::new(false);
    let timer = dpc_core::Timer::start();
    let (writer_result, tallies) = std::thread::scope(|s| {
        let stop = &stop;
        let eps = serve_opts.eps;
        let query_points = serve_opts.query_points;
        let workers: Vec<_> = reader_handles
            .into_iter()
            .enumerate()
            .map(|(i, mut reader)| {
                s.spawn(move || {
                    let mut rng = dpc_datasets::SplitMix64::new(
                        0x5E12_7E5E ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut tally = ReaderTally::default();
                    let mut seen = reader.epoch();
                    while !stop.load(Ordering::Acquire) {
                        match rng.next_u64() % 3 {
                            0 => {
                                let snap = reader.current();
                                if snap.is_empty() {
                                    continue;
                                }
                                let h = snap.handle_at(rng.uniform_usize(snap.len()));
                                let start = Instant::now();
                                let _ = reader.cluster_of(h);
                                tally.lookup.record(start.elapsed().as_micros() as u64);
                                tally.lookups += 1;
                            }
                            1 => {
                                let c = query_points[rng.uniform_usize(query_points.len())];
                                let start = Instant::now();
                                let _ = reader.eps_neighbors(c, eps);
                                tally.eps.record(start.elapsed().as_micros() as u64);
                                tally.eps_queries += 1;
                            }
                            _ => {
                                let start = Instant::now();
                                match reader.deltas_since(seen) {
                                    dpc_serve::Replay::Deltas(deltas) => {
                                        if let Some(last) = deltas.last() {
                                            seen = last.epoch;
                                        }
                                    }
                                    dpc_serve::Replay::Resync(snapshot) => {
                                        seen = snapshot.epoch();
                                        tally.resyncs += 1;
                                    }
                                }
                                tally.sub.record(start.elapsed().as_micros() as u64);
                                tally.sub_polls += 1;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();

        // The writer must release the readers even when a commit fails —
        // otherwise the scope would never join.
        let writer_result = (|| -> Result<(), String> {
            for chunk in rest.chunks(batch).take(max_epochs) {
                let (_, delta) = server
                    .engine_mut()
                    .advance(chunk, chunk.len())
                    .map_err(|e| e.to_string())?;
                if !opts.quiet {
                    let stats = server.engine().stats();
                    let mode = stats.last_epoch_mode.map_or("?", |m| m.name());
                    lines.push(epoch_line(mode, &delta, stats.last_epoch_micros, opts.json));
                }
            }
            Ok(())
        })();
        stop.store(true, Ordering::Release);
        let tallies: Vec<ReaderTally> = workers
            .into_iter()
            .map(|w| w.join().expect("reader thread panicked"))
            .collect();
        (writer_result, tallies)
    });
    let elapsed = timer.elapsed();
    writer_result?;

    let mut report = ServeReport {
        stats: server.engine().stats(),
        published: server.cell().published(),
        ring_evictions: server.cell().ring_evictions(),
        lookups: 0,
        eps_queries: 0,
        sub_polls: 0,
        resyncs: 0,
        lookup: dpc_obs::Histogram::new(),
        eps: dpc_obs::Histogram::new(),
        sub: dpc_obs::Histogram::new(),
    };
    for tally in tallies {
        report.lookups += tally.lookups;
        report.eps_queries += tally.eps_queries;
        report.sub_polls += tally.sub_polls;
        report.resyncs += tally.resyncs;
        report.lookup.merge(&tally.lookup);
        report.eps.merge(&tally.eps);
        report.sub.merge(&tally.sub);
    }
    Ok((report, elapsed))
}

/// Parses `--kernel NAME` plus the optional `--bandwidth H` flag into a
/// [`Kernel`]. The default (`cutoff`) is the paper-faithful hard cut-off and
/// takes no bandwidth; `gaussian` and `exponential` require one. Bandwidth
/// range checking is delegated to [`Kernel::validate`] so the CLI quotes the
/// same value-and-range messages as the library.
pub fn parse_kernel(name: Option<&str>, bandwidth: Option<f64>) -> Result<Kernel, String> {
    let name = name.unwrap_or("cutoff").trim().to_ascii_lowercase();
    let kernel = match name.as_str() {
        "cutoff" => {
            if bandwidth.is_some() {
                return Err(
                    "--bandwidth only applies to the gaussian and exponential kernels".into(),
                );
            }
            return Ok(Kernel::Cutoff);
        }
        "gaussian" => Kernel::gaussian(
            bandwidth.ok_or_else(|| "--kernel gaussian requires --bandwidth".to_string())?,
        ),
        "exponential" | "exp" => Kernel::exponential(
            bandwidth.ok_or_else(|| "--kernel exponential requires --bandwidth".to_string())?,
        ),
        other => {
            return Err(format!(
                "unknown kernel {other:?} (cutoff, gaussian, or exponential)"
            ))
        }
    };
    kernel.validate().map_err(|e| e.to_string())?;
    Ok(kernel)
}

/// Human-readable kernel description for exit summaries.
fn describe_kernel(kernel: Kernel) -> String {
    match kernel.bandwidth() {
        Some(h) => format!("{} (bandwidth {h})", kernel.name()),
        None => kernel.name().to_string(),
    }
}

/// Parses a centre-selection spec: `top:K`, `auto`, `auto:MAX` or
/// `threshold:RHO,DELTA`.
pub fn parse_centers(spec: &str) -> Result<CenterSelection, String> {
    let spec = spec.trim();
    if let Some(k) = spec.strip_prefix("top:") {
        let k: usize = k
            .parse()
            .map_err(|_| format!("invalid top:K spec {spec:?}"))?;
        return Ok(CenterSelection::TopKGamma { k });
    }
    if spec == "auto" {
        return Ok(CenterSelection::GammaGap { max_centers: 64 });
    }
    if let Some(max) = spec.strip_prefix("auto:") {
        let max_centers: usize = max
            .parse()
            .map_err(|_| format!("invalid auto:MAX spec {spec:?}"))?;
        return Ok(CenterSelection::GammaGap { max_centers });
    }
    if let Some(rest) = spec.strip_prefix("threshold:") {
        let mut parts = rest.split(',');
        let rho = parts
            .next()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .ok_or_else(|| format!("invalid threshold spec {spec:?}"))?;
        let delta = parts
            .next()
            .and_then(|v| v.trim().parse::<f64>().ok())
            .ok_or_else(|| format!("invalid threshold spec {spec:?}"))?;
        if parts.next().is_some() {
            return Err(format!("invalid threshold spec {spec:?}"));
        }
        return Ok(CenterSelection::Threshold {
            rho_min: rho,
            delta_min: delta,
        });
    }
    Err(format!(
        "unknown centre selection {spec:?} (expected top:K, auto, auto:MAX or threshold:RHO,DELTA)"
    ))
}

/// Builds the requested index over the data.
pub fn build_index(
    data: &Dataset,
    name: &str,
    bin_width: Option<f64>,
    tau: Option<f64>,
    dc: f64,
) -> Result<Box<dyn DpcIndex>, String> {
    let default_w = || bin_width.unwrap_or_else(|| (dc / 4.0).max(f64::MIN_POSITIVE));
    let index: Box<dyn DpcIndex> = match name.to_ascii_lowercase().as_str() {
        "list" => match tau {
            Some(t) => Box::new(ListIndex::build_approx(data, t)),
            None => Box::new(ListIndex::build(data)),
        },
        "ch" => match tau {
            Some(t) => Box::new(ChIndex::build_approx(data, default_w(), t)),
            None => Box::new(ChIndex::build(data, default_w())),
        },
        "quadtree" => Box::new(Quadtree::build(data)),
        "rtree" => Box::new(RTree::build(data)),
        "kdtree" => Box::new(KdTree::build(data)),
        "grid" => Box::new(GridIndex::build(data)),
        "naive" | "dpc" => Box::new(LeanDpc::build(data)),
        other => return Err(format!("unknown index {other:?}")),
    };
    Ok(index)
}

fn write_clustering(path: &Path, data: &Dataset, clustering: &Clustering) -> Result<(), String> {
    write_labels_csv(path, data, &clustering.labels_with_noise()).map_err(|e| e.to_string())
}

fn write_decision_graph(path: &Path, run: &dpc_core::DpcRun) -> Result<(), String> {
    let mut table =
        dpc_metrics::ResultTable::new("decision graph", &["point", "rho", "delta", "gamma"]);
    let gamma = run.decision_graph.gamma();
    for (p, (rho_p, gamma_p)) in run.rho.iter().zip(gamma.iter()).enumerate() {
        table.add_row(&[
            p.to_string(),
            rho_p.to_string(),
            format!("{}", run.decision_graph.delta(p)),
            format!("{gamma_p}"),
        ]);
    }
    table.write_csv(path).map_err(|e| e.to_string())
}

fn summarise(
    index_name: &str,
    data: &Dataset,
    run: &dpc_core::DpcRun,
    output: Option<&str>,
) -> String {
    let mut sizes = run.clustering.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = format!(
        "clustered {} points with the {} index: {} clusters, {} halo points",
        data.len(),
        index_name,
        run.clustering.num_clusters(),
        run.clustering.halo_count()
    );
    let _ = write!(
        out,
        "\ncluster sizes (largest first): {:?}",
        truncated(&sizes, 10)
    );
    let _ = write!(
        out,
        "\nquery time: rho {:.3} ms + delta {:.3} ms; assignment {:.3} ms",
        run.rho_time.as_secs_f64() * 1e3,
        run.delta_time.as_secs_f64() * 1e3,
        run.assign_time.as_secs_f64() * 1e3
    );
    if let Some(path) = output {
        let _ = write!(out, "\nlabels written to {path}");
    }
    out
}

fn truncated(sizes: &[usize], max: usize) -> Vec<usize> {
    sizes.iter().copied().take(max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpc-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_centers_specs() {
        assert_eq!(
            parse_centers("top:5").unwrap(),
            CenterSelection::TopKGamma { k: 5 }
        );
        assert_eq!(
            parse_centers("auto").unwrap(),
            CenterSelection::GammaGap { max_centers: 64 }
        );
        assert_eq!(
            parse_centers("auto:10").unwrap(),
            CenterSelection::GammaGap { max_centers: 10 }
        );
        assert_eq!(
            parse_centers("threshold:3,1.5").unwrap(),
            CenterSelection::Threshold {
                rho_min: 3.0,
                delta_min: 1.5
            }
        );
        assert!(parse_centers("top:x").is_err());
        assert!(parse_centers("threshold:1").is_err());
        assert!(parse_centers("nonsense").is_err());
    }

    #[test]
    fn build_index_knows_every_name() {
        let data = DatasetKind::S1.generate(1, 0.004).into_dataset(); // 20 points
        for name in ["list", "ch", "quadtree", "rtree", "kdtree", "grid", "naive"] {
            let index = build_index(&data, name, None, None, 10_000.0).unwrap();
            assert_eq!(index.rho(10_000.0).unwrap().len(), data.len(), "{name}");
        }
        assert!(build_index(&data, "wat", None, None, 1.0).is_err());
        // tau selects the approximate variants.
        let approx = build_index(&data, "list", None, Some(50_000.0), 10_000.0).unwrap();
        assert!(!approx.is_exact());
    }

    #[test]
    fn generate_then_cluster_end_to_end() {
        let dir = temp_dir();
        let points = dir.join("points.csv");
        let truth = dir.join("truth.csv");
        let labels = dir.join("labels.csv");
        let graph = dir.join("graph.csv");

        let out = run(args(&[
            "generate",
            "--dataset",
            "s1",
            "--scale",
            "0.04",
            "--seed",
            "9",
            "--output",
            points.to_str().unwrap(),
            "--labels",
            truth.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("200 points"));
        assert!(points.exists() && truth.exists());

        let out = run(args(&[
            "estimate-dc",
            "--input",
            points.to_str().unwrap(),
            "--fraction",
            "0.02",
        ]))
        .unwrap();
        assert!(out.contains("estimated dc"));

        let out = run(args(&[
            "cluster",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "30000",
            "--index",
            "ch",
            "--centers",
            "top:15",
            "--output",
            labels.to_str().unwrap(),
            "--decision-graph",
            graph.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("15 clusters"), "{out}");
        let written = std::fs::read_to_string(&labels).unwrap();
        assert_eq!(written.lines().count(), 201); // header + one row per point
        assert!(std::fs::read_to_string(&graph)
            .unwrap()
            .starts_with("point,rho,delta,gamma"));

        let out = run(args(&[
            "knn-cluster",
            "--input",
            points.to_str().unwrap(),
            "--k",
            "8",
            "--centers",
            "top:15",
        ]))
        .unwrap();
        assert!(out.contains("15 clusters"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_changes_nothing_but_the_thread_count() {
        let dir = temp_dir();
        let points = dir.join("par-points.csv");
        let seq_labels = dir.join("par-labels-seq.csv");
        let par_labels = dir.join("par-labels-par.csv");
        run(args(&[
            "generate",
            "--dataset",
            "s1",
            "--scale",
            "0.04",
            "--seed",
            "11",
            "--output",
            points.to_str().unwrap(),
        ]))
        .unwrap();

        let base = [
            "cluster",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "30000",
            "--index",
            "kdtree",
            "--centers",
            "top:15",
        ];
        let mut seq = base.to_vec();
        seq.extend(["--output", seq_labels.to_str().unwrap()]);
        let out_seq = run(args(&seq)).unwrap();
        assert!(!out_seq.contains("threads"), "{out_seq}");

        let mut par = base.to_vec();
        par.extend(["--threads", "3", "--output", par_labels.to_str().unwrap()]);
        let out_par = run(args(&par)).unwrap();
        assert!(out_par.contains("queries ran on 3 threads"), "{out_par}");

        assert_eq!(
            std::fs::read_to_string(&seq_labels).unwrap(),
            std::fs::read_to_string(&par_labels).unwrap(),
            "parallel clustering must be identical to sequential"
        );
        assert!(run(args(&[
            "cluster",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "1.0",
            "--threads",
            "0"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_replays_a_csv_and_reports_epochs() {
        let dir = temp_dir();
        let points = dir.join("stream-points.csv");
        run(args(&[
            "generate",
            "--dataset",
            "gowalla",
            "--scale",
            "0.0005",
            "--seed",
            "3",
            "--output",
            points.to_str().unwrap(),
        ]))
        .unwrap();

        let out = run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--index",
            "grid",
            "--window",
            "200",
            "--batch",
            "50",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("seeded window of 200 points"), "{out}");
        assert!(out.contains("epoch"), "{out}");
        assert!(out.contains("updates/s"), "{out}");
        // Every epoch line is tagged with the maintenance path taken, and
        // the exit summary names the commit policy.
        assert!(
            out.contains("[incremental]") || out.contains("[fallback]"),
            "{out}"
        );
        assert!(out.contains("commit policy incremental"), "{out}");

        // Every other engine must replay the same stream; `--engine` is the
        // documented spelling, `--index` stays as an alias.
        for engine in ["naive", "kdtree", "rtree"] {
            let out = run(args(&[
                "stream",
                "--input",
                points.to_str().unwrap(),
                "--dc",
                "0.5",
                "--engine",
                engine,
                "--window",
                "200",
                "--batch",
                "50",
                "--quiet",
            ]))
            .unwrap();
            assert!(!out.contains("epoch "), "{engine}: {out}");
            assert!(out.contains("incremental"), "{engine}: {out}");
        }

        // The commit policy is selectable: rebuild commits every epoch via
        // the bulk path, adaptive lets the cost model choose and reports
        // its predicted-vs-observed totals.
        let out = run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--window",
            "200",
            "--batch",
            "50",
            "--policy",
            "rebuild",
        ]))
        .unwrap();
        assert!(out.contains("[rebuild]"), "{out}");
        assert!(out.contains("commit policy rebuild"), "{out}");
        let out = run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--window",
            "200",
            "--batch",
            "50",
            "--policy",
            "adaptive",
        ]))
        .unwrap();
        assert!(out.contains("commit policy adaptive"), "{out}");
        assert!(out.contains("cost model predicted"), "{out}");

        // Bad invocations.
        assert!(run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--engine",
            "ball-tree"
        ]))
        .is_err());
        assert!(run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--policy",
            "sometimes"
        ]))
        .is_err());
        assert!(run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--window",
            "0"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_kernel_specs() {
        assert_eq!(parse_kernel(None, None).unwrap(), Kernel::Cutoff);
        assert_eq!(parse_kernel(Some("cutoff"), None).unwrap(), Kernel::Cutoff);
        assert_eq!(
            parse_kernel(Some("gaussian"), Some(0.5)).unwrap(),
            Kernel::gaussian(0.5)
        );
        assert_eq!(
            parse_kernel(Some("exp"), Some(2.0)).unwrap(),
            Kernel::exponential(2.0)
        );
        // Bandwidth is mandatory for the weighted kernels and meaningless
        // for the cut-off, in both directions.
        assert!(parse_kernel(Some("gaussian"), None)
            .unwrap_err()
            .contains("--bandwidth"));
        assert!(parse_kernel(Some("cutoff"), Some(1.0))
            .unwrap_err()
            .contains("--bandwidth"));
        // Out-of-range bandwidths surface the library's quoted-range message.
        let msg = parse_kernel(Some("gaussian"), Some(-1.0)).unwrap_err();
        assert!(msg.contains("valid range"), "{msg}");
        assert!(parse_kernel(Some("epanechnikov"), Some(1.0)).is_err());
    }

    #[test]
    fn stream_with_weighted_kernel_and_decay_replays_end_to_end() {
        let dir = temp_dir();
        let points = dir.join("kernel-points.csv");
        run(args(&[
            "generate",
            "--dataset",
            "gowalla",
            "--scale",
            "0.0005",
            "--seed",
            "11",
            "--output",
            points.to_str().unwrap(),
        ]))
        .unwrap();

        // A decayed gaussian replay through the JSON feed: the summary names
        // the kernel, bandwidth and decay factor, and the rebuild policy is
        // coerced to incremental because rebuilds cannot reproduce decayed
        // weighted densities.
        let out = run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--kernel",
            "gaussian",
            "--bandwidth",
            "0.7",
            "--decay",
            "0.9",
            "--window",
            "200",
            "--batch",
            "50",
            "--policy",
            "rebuild",
            "--json",
        ]))
        .unwrap();
        assert!(out.contains("\"event\":\"summary\""), "{out}");
        assert!(out.contains("\"kernel\":\"gaussian\""), "{out}");
        assert!(out.contains("\"bandwidth\":0.7"), "{out}");
        assert!(out.contains("\"decay\":0.9"), "{out}");
        assert!(out.contains("\"rebuild\":0"), "{out}");

        // The human-readable summary names weighted kernels too.
        let out = run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--kernel",
            "exponential",
            "--bandwidth",
            "1.1",
            "--window",
            "200",
            "--batch",
            "50",
            "--quiet",
        ]))
        .unwrap();
        assert!(out.contains("kernel exponential (bandwidth 1.1)"), "{out}");

        // `dpc serve` accepts the same flags and reports them in its summary.
        let out = run(args(&[
            "serve",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--kernel",
            "gaussian",
            "--bandwidth",
            "0.7",
            "--decay",
            "0.9",
            "--window",
            "200",
            "--batch",
            "50",
            "--readers",
            "1",
            "--quiet",
            "--json",
        ]))
        .unwrap();
        assert!(out.contains("\"event\":\"serve_summary\""), "{out}");
        assert!(out.contains("\"kernel\":\"gaussian\""), "{out}");
        assert!(out.contains("\"decay\":0.9"), "{out}");

        // Bad decay values surface the library's quoted-range message.
        let err = run(args(&[
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--decay",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.contains("decay"), "{err}");
        assert!(err.contains("got"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_observability_flags_emit_json_metrics_and_a_chrome_trace() {
        let dir = temp_dir();
        let points = dir.join("obs-points.csv");
        run(args(&[
            "generate",
            "--dataset",
            "gowalla",
            "--scale",
            "0.0005",
            "--seed",
            "7",
            "--output",
            points.to_str().unwrap(),
        ]))
        .unwrap();
        let base = [
            "stream",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--window",
            "200",
            "--batch",
            "50",
            "--policy",
            "adaptive",
        ];

        // --json: every line is one JSON object; the per-epoch objects carry
        // the maintenance mode and per-epoch cost, the last is the summary.
        let mut json_args = base.to_vec();
        json_args.push("--json");
        let out = run(args(&json_args)).unwrap();
        for line in out.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "non-JSON line in --json output: {line}"
            );
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(out.starts_with("{\"event\":\"seed\""), "{out}");
        assert!(out.contains("\"event\":\"epoch\""), "{out}");
        assert!(out.contains("\"maintenance_us\":"), "{out}");
        assert!(out.contains("\"mode\":"), "{out}");
        assert!(
            out.lines()
                .last()
                .unwrap()
                .starts_with("{\"event\":\"summary\""),
            "{out}"
        );
        assert!(out.contains("\"policy\":\"adaptive\""), "{out}");

        // --metrics: the snapshot table follows the summary and holds the
        // streaming counters and per-phase histograms.
        let mut metrics_args = base.to_vec();
        metrics_args.extend(["--quiet", "--metrics"]);
        let out = run(args(&metrics_args)).unwrap();
        assert!(out.contains("stream.epochs"), "{out}");
        assert!(out.contains("stream.phase.validate_us"), "{out}");
        assert!(out.contains("stream.policy.decision.events"), "{out}");

        // --trace-out: a valid Chrome trace-event file with epoch spans and
        // policy decision instants.
        let trace_path = dir.join("trace.json");
        let mut trace_args = base.to_vec();
        trace_args.extend(["--quiet", "--trace-out", trace_path.to_str().unwrap()]);
        let out = run(args(&trace_args)).unwrap();
        assert!(out.contains("wrote Chrome trace"), "{out}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        for required in [
            "\"name\":\"stream.epoch\"",
            "\"name\":\"stream.phase.validate\"",
            "\"name\":\"stream.policy.decision\"",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ts\":",
            "\"pid\":",
        ] {
            assert!(trace.contains(required), "trace missing {required}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_replays_with_readers_and_reports_latencies() {
        let dir = temp_dir();
        let points = dir.join("serve-points.csv");
        run(args(&[
            "generate",
            "--dataset",
            "gowalla",
            "--scale",
            "0.0005",
            "--seed",
            "11",
            "--output",
            points.to_str().unwrap(),
        ]))
        .unwrap();
        let base = [
            "serve",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--window",
            "200",
            "--batch",
            "50",
            "--readers",
            "2",
            "--ring",
            "8",
        ];

        // Human output: per-epoch delta lines plus the serving summary.
        let out = run(args(&base)).unwrap();
        assert!(out.contains("seeded window of 200 points"), "{out}");
        assert!(out.contains("2 readers issued"), "{out}");
        assert!(out.contains("p50/p99 us"), "{out}");

        // --json: every line is a JSON object, ending in the serve summary
        // with the per-family latency quantiles and resync count.
        let mut json_args = base.to_vec();
        json_args.push("--json");
        let out = run(args(&json_args)).unwrap();
        for line in out.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "non-JSON line in --json output: {line}"
            );
        }
        let summary = out.lines().last().unwrap();
        assert!(summary.starts_with("{\"event\":\"serve_summary\""), "{out}");
        for field in [
            "\"published\":",
            "\"lookups\":",
            "\"eps_queries\":",
            "\"sub_polls\":",
            "\"resyncs\":",
            "\"lookup_p50_us\":",
            "\"sub_p99_us\":",
        ] {
            assert!(
                summary.contains(field),
                "summary missing {field}: {summary}"
            );
        }
        assert!(out.contains("\"recentred\":"), "{out}");

        // --trace-out: reader query spans land in the same Chrome trace as
        // the writer's epoch phases.
        let trace_path = dir.join("serve-trace.json");
        let mut trace_args = base.to_vec();
        trace_args.extend(["--quiet", "--trace-out", trace_path.to_str().unwrap()]);
        let out = run(args(&trace_args)).unwrap();
        assert!(out.contains("wrote Chrome trace"), "{out}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        for required in [
            "\"name\":\"stream.epoch\"",
            "\"name\":\"stream.phase.publish\"",
            "\"name\":\"serve.query.lookup\"",
            "\"name\":\"serve.query.eps\"",
            "\"name\":\"serve.query.sub\"",
        ] {
            assert!(trace.contains(required), "trace missing {required}");
        }

        // Bad invocations fail cleanly.
        assert!(run(args(&[
            "serve",
            "--input",
            points.to_str().unwrap(),
            "--dc",
            "0.5",
            "--ring",
            "0"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn helpful_errors_for_bad_invocations() {
        assert!(run(args(&[
            "generate",
            "--dataset",
            "mars",
            "--output",
            "x.csv"
        ]))
        .is_err());
        assert!(run(args(&["cluster", "--dc", "1.0"])).is_err()); // missing --input
        assert!(run(args(&[
            "cluster",
            "--input",
            "/no/such/file.csv",
            "--dc",
            "1.0"
        ]))
        .is_err());
        assert!(run(args(&["estimate-dc", "--input", "/no/such/file.csv"])).is_err());
        assert!(run(args(&[
            "cluster", "--input", "x.csv", "--dc", "1.0", "--bogus", "1"
        ]))
        .is_err());
    }
}
