//! # dpc-cli
//!
//! A small command-line tool exposing the workspace's index-based Density
//! Peak Clustering to shell users: generate benchmark datasets, estimate a
//! starting `dc`, and cluster any `x,y` CSV file with the index of your
//! choice.
//!
//! ```text
//! dpc generate    --dataset birch --scale 0.05 --output points.csv --labels truth.csv
//! dpc estimate-dc --input points.csv --fraction 0.02
//! dpc cluster     --input points.csv --dc 50000 --index rtree --centers top:100 \
//!                 --output labels.csv --decision-graph graph.csv
//! dpc knn-cluster --input points.csv --k 16 --centers top:100 --output labels.csv
//! dpc stream      --input points.csv --dc 50000 --window 1000 --batch 100
//! ```
//!
//! The crate exposes [`run`] so the whole tool is testable without spawning a
//! process; `src/main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use args::ParsedArgs;

/// Runs the tool for an argument list (excluding the program name) and
/// returns the text to print on success.
pub fn run(args: Vec<String>) -> Result<String, String> {
    if args.is_empty() || args[0] == "help" || args[0] == "--help" || args[0] == "-h" {
        return Ok(usage());
    }
    let parsed = ParsedArgs::parse(&args)?;
    match parsed.command.as_str() {
        "generate" => commands::generate(&parsed),
        "estimate-dc" => commands::estimate_dc(&parsed),
        "cluster" => commands::cluster(&parsed),
        "knn-cluster" => commands::knn_cluster(&parsed),
        "stream" => commands::stream(&parsed),
        "serve" => commands::serve(&parsed),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The usage / help text.
pub fn usage() -> String {
    "dpc — index-based Density Peak Clustering

USAGE:
  dpc generate    --dataset <s1|query|birch|range|brightkite|gowalla>
                  [--scale F] [--seed N] --output points.csv [--labels truth.csv]
  dpc estimate-dc --input points.csv [--fraction F]
  dpc cluster     --input points.csv --dc F
                  [--index list|ch|quadtree|rtree|kdtree|grid|naive]
                  [--bin-width F] [--tau F] [--centers top:K|auto[:MAX]|threshold:RHO,DELTA]
                  [--kernel cutoff|gaussian|exponential] [--bandwidth F]
                  [--threads N] [--halo] [--output labels.csv] [--decision-graph graph.csv]
  dpc knn-cluster --input points.csv --k N
                  [--centers top:K|auto[:MAX]] [--output labels.csv]
  dpc stream      --input points.csv --dc F
                  [--engine grid|kdtree|rtree|naive] [--window N] [--batch N] [--threads N]
                  [--centers top:K|auto[:MAX]|threshold:RHO,DELTA]
                  [--kernel cutoff|gaussian|exponential] [--bandwidth F] [--decay L]
                  [--policy incremental|rebuild|adaptive] [--max-epochs N] [--quiet]
                  [--json] [--metrics] [--trace-out trace.json]
  dpc serve       --input points.csv --dc F
                  [--engine grid|kdtree|rtree|naive] [--window N] [--batch N] [--threads N]
                  [--readers N] [--ring N]
                  [--centers top:K|auto[:MAX]|threshold:RHO,DELTA]
                  [--kernel cutoff|gaussian|exponential] [--bandwidth F] [--decay L]
                  [--policy incremental|rebuild|adaptive] [--max-epochs N] [--quiet]
                  [--json] [--metrics] [--trace-out trace.json]
  dpc help

Datasets are the paper's six evaluation datasets, regenerated synthetically
at `--scale` times their original size. Clustering reads any CSV of `x,y`
rows (extra columns ignored) and writes `x,y,label` rows; halo points get an
empty label when --halo is set. `stream` replays the CSV as a point stream:
the first --window rows seed an incremental engine, every following batch
slides the window, and per-epoch cluster births/deaths are printed; --policy
picks the commit strategy (adaptive = a calibrated cost model chooses
incremental maintenance or a bulk rebuild per epoch). --kernel swaps the
hard cut-off density for a weighted gaussian/exponential kernel (requires
--bandwidth), and --decay L (0 < L <= 1) multiplies every surviving point's
density by L each epoch so stale mass fades out; weighted or decayed runs
always maintain densities incrementally. --json emits one JSON
object per epoch instead of text, --metrics prints a metrics table after the
replay, and --trace-out writes a Chrome trace-event file of the per-epoch
phase spans (open in Perfetto or chrome://tracing). `serve` runs the same
writer replay behind the concurrent serving layer while --readers threads
answer point-lookup, eps-neighbourhood and delta-subscription queries from
the published epoch snapshots (per-family p50/p99 in the exit summary);
--ring bounds the subscription delta ring — readers that fall further behind
resync from a full snapshot."
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_paths_return_usage() {
        assert!(run(vec![]).unwrap().contains("USAGE"));
        assert!(run(vec!["help".into()]).unwrap().contains("USAGE"));
        assert!(run(vec!["--help".into()]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(run(vec!["frobnicate".into()]).is_err());
    }
}
