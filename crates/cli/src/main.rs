//! The `dpc` command-line tool.
//!
//! See `dpc help` or the crate documentation of `dpc-cli` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dpc_cli::run(args) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", dpc_cli::usage());
            std::process::exit(2);
        }
    }
}
