//! Step 4 of DPC: assigning every point to the cluster of its dependent
//! neighbour, plus the optional halo (border-noise) computation of the
//! original DPC paper.
//!
//! Once the centres are chosen, the assignment is a single pass over the
//! points in order of decreasing density: a centre starts its own cluster and
//! every other point inherits the label of its dependent neighbour `µ`
//! (which, being denser, has already been labelled). This is the `O(n)`
//! fourth step of the original algorithm and is reused unchanged by every
//! index-based variant in the paper.

use crate::cluster::Clustering;
use crate::delta::{DeltaResult, DensityOrder};
use crate::error::{DpcError, Result};
use crate::point::{Dataset, PointId};

/// Options controlling the assignment step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AssignmentOptions {
    /// When `true`, compute the cluster halos: for every cluster the *border
    /// density* is the highest density among its points that lie within `dc`
    /// of a point of another cluster; members with density below the border
    /// density are flagged as halo (potential noise). This follows the
    /// original DPC paper. The computation is `O(n²)` in the worst case and
    /// is therefore opt-in.
    pub compute_halo: bool,
}

impl AssignmentOptions {
    /// Options with halo computation enabled.
    pub fn with_halo() -> Self {
        AssignmentOptions { compute_halo: true }
    }
}

/// Assigns every point to a cluster.
///
/// * `dataset` — the points (needed for the nearest-centre fallback and the
///   halo computation);
/// * `order` — the density total order (provides `ρ` and tie-breaking);
/// * `deltas` — the δ/µ query result;
/// * `centers` — the chosen cluster centres, sorted ascending;
/// * `dc` — the cut-off distance (used only for the halo computation);
/// * `options` — see [`AssignmentOptions`].
///
/// Points whose `µ` is unknown (the global peak when it is not itself a
/// centre, or points truncated by an approximate index) fall back to the
/// nearest centre by Euclidean distance, which keeps the assignment total.
pub fn assign_clusters(
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    deltas: &DeltaResult,
    centers: &[PointId],
    dc: f64,
    options: &AssignmentOptions,
) -> Result<Clustering> {
    let n = dataset.len();
    if n == 0 {
        return Ok(Clustering::new(vec![], vec![], vec![]));
    }
    if centers.is_empty() {
        return Err(DpcError::invalid_parameter(
            "centers",
            "at least one cluster centre is required",
        ));
    }
    if order.len() != n || deltas.len() != n {
        return Err(DpcError::LengthMismatch {
            expected: n,
            actual: order.len().min(deltas.len()),
            what: "assignment inputs",
        });
    }
    for &c in centers {
        if c >= n {
            return Err(DpcError::invalid_parameter(
                "centers",
                format!("centre {c} is out of range (n = {n})"),
            ));
        }
    }

    const UNASSIGNED: usize = usize::MAX;
    let mut labels = vec![UNASSIGNED; n];
    // Centres are their own clusters; cluster id = rank of centre in the
    // (sorted) centre list.
    for (cluster_id, &c) in centers.iter().enumerate() {
        labels[c] = cluster_id;
    }

    // Walk points densest-first so that µ(p) is always labelled before p.
    for p in order.rank_descending() {
        if labels[p] != UNASSIGNED {
            continue;
        }
        labels[p] = match deltas.mu(p) {
            Some(q) => {
                debug_assert!(order.is_denser(q, p));
                if labels[q] == UNASSIGNED {
                    // Can only happen with an inconsistent µ chain (e.g. a
                    // truncated approximate index); fall back to nearest centre.
                    nearest_center(dataset, p, centers)
                } else {
                    labels[q]
                }
            }
            None => nearest_center(dataset, p, centers),
        };
    }

    let halo = if options.compute_halo {
        compute_halo(dataset, order, &labels, centers.len(), dc)
    } else {
        vec![false; n]
    };

    Ok(Clustering::new(labels, centers.to_vec(), halo))
}

/// Index (cluster id) of the centre nearest to `p`.
fn nearest_center(dataset: &Dataset, p: PointId, centers: &[PointId]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (cluster_id, &c) in centers.iter().enumerate() {
        let d = dataset.distance(p, c);
        if d < best_d {
            best_d = d;
            best = cluster_id;
        }
    }
    best
}

/// Computes the halo flags following the original DPC paper: for every
/// cluster, the border density is the maximum density of a member lying
/// within `dc` of a member of a different cluster; members with strictly
/// lower density than the border density are halo points.
fn compute_halo(
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    labels: &[usize],
    num_clusters: usize,
    dc: f64,
) -> Vec<bool> {
    let n = dataset.len();
    let rho = order.rho();
    let mut border_density = vec![0.0f64; num_clusters];
    for i in 0..n {
        for j in (i + 1)..n {
            if labels[i] != labels[j] && dataset.distance(i, j) < dc {
                border_density[labels[i]] = border_density[labels[i]].max(rho[i]);
                border_density[labels[j]] = border_density[labels[j]].max(rho[j]);
            }
        }
    }
    (0..n).map(|p| rho[p] < border_density[labels[p]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DpcIndex;
    use crate::naive_reference::NaiveReferenceIndex;
    use crate::point::Point;

    /// Two tight blobs plus one isolated point halfway between them.
    fn dataset() -> Dataset {
        Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.0, 0.1),
            Point::new(0.1, 0.1),
            Point::new(10.0, 10.0),
            Point::new(10.1, 10.0),
            Point::new(10.0, 10.1),
            Point::new(5.0, 5.0),
        ])
    }

    fn rho_delta(data: &Dataset, dc: f64) -> (Vec<crate::density::Rho>, DeltaResult) {
        NaiveReferenceIndex::build(data).rho_delta(dc).unwrap()
    }

    #[test]
    fn assignment_follows_mu_chain() {
        let data = dataset();
        let (rho, deltas) = rho_delta(&data, 0.3);
        let order = DensityOrder::new(&rho);
        let centers = vec![0, 4];
        let clustering = assign_clusters(
            &data,
            &order,
            &deltas,
            &centers,
            0.3,
            &AssignmentOptions::default(),
        )
        .unwrap();
        assert_eq!(clustering.num_clusters(), 2);
        // Blob around origin.
        for p in 0..4 {
            assert_eq!(clustering.label(p), clustering.label(0), "point {p}");
        }
        // Blob around (10, 10).
        for p in 4..7 {
            assert_eq!(clustering.label(p), clustering.label(4), "point {p}");
        }
        // The two blobs are distinct clusters.
        assert_ne!(clustering.label(0), clustering.label(4));
    }

    #[test]
    fn centres_label_themselves() {
        let data = dataset();
        let (rho, deltas) = rho_delta(&data, 0.3);
        let order = DensityOrder::new(&rho);
        let centers = vec![0, 4];
        let c = assign_clusters(
            &data,
            &order,
            &deltas,
            &centers,
            0.3,
            &AssignmentOptions::default(),
        )
        .unwrap();
        assert_eq!(c.label(0), 0);
        assert_eq!(c.label(4), 1);
    }

    #[test]
    fn isolated_point_is_assigned_somewhere() {
        let data = dataset();
        let (rho, deltas) = rho_delta(&data, 0.3);
        let order = DensityOrder::new(&rho);
        let centers = vec![0, 4];
        let c = assign_clusters(
            &data,
            &order,
            &deltas,
            &centers,
            0.3,
            &AssignmentOptions::default(),
        )
        .unwrap();
        // Point 7 sits exactly between the blobs; it must still receive one
        // of the two labels (DPC assigns every point).
        assert!(c.label(7) < 2);
    }

    #[test]
    fn global_peak_not_a_centre_falls_back_to_nearest_centre() {
        let data = dataset();
        let (rho, deltas) = rho_delta(&data, 0.3);
        let order = DensityOrder::new(&rho);
        let peak = order.global_peak().unwrap();
        // Pick centres that deliberately exclude the global peak.
        let centers: Vec<PointId> = vec![4, 7];
        let c = assign_clusters(
            &data,
            &order,
            &deltas,
            &centers,
            0.3,
            &AssignmentOptions::default(),
        )
        .unwrap();
        // The peak is in the origin blob, nearest centre is 7 (at 5,5) vs 4 (10,10).
        assert_eq!(c.label(peak), 1);
    }

    #[test]
    fn no_centres_is_an_error() {
        let data = dataset();
        let (rho, deltas) = rho_delta(&data, 0.3);
        let order = DensityOrder::new(&rho);
        assert!(assign_clusters(
            &data,
            &order,
            &deltas,
            &[],
            0.3,
            &AssignmentOptions::default()
        )
        .is_err());
    }

    #[test]
    fn out_of_range_centre_is_an_error() {
        let data = dataset();
        let (rho, deltas) = rho_delta(&data, 0.3);
        let order = DensityOrder::new(&rho);
        assert!(assign_clusters(
            &data,
            &order,
            &deltas,
            &[999],
            0.3,
            &AssignmentOptions::default()
        )
        .is_err());
    }

    #[test]
    fn halo_disabled_by_default() {
        let data = dataset();
        let (rho, deltas) = rho_delta(&data, 0.3);
        let order = DensityOrder::new(&rho);
        let c = assign_clusters(
            &data,
            &order,
            &deltas,
            &[0, 4],
            0.3,
            &AssignmentOptions::default(),
        )
        .unwrap();
        assert_eq!(c.halo_count(), 0);
    }

    #[test]
    fn halo_flags_border_points_between_touching_clusters() {
        // Two 7x7 grid clusters whose facing edges lie within dc of each
        // other. The sparse edge/corner points must be flagged as halo while
        // the dense cluster cores must not.
        let mut pts = Vec::new();
        for x0 in [0.0, 1.6] {
            for i in 0..7 {
                for j in 0..7 {
                    pts.push(Point::new(x0 + i as f64 * 0.2, j as f64 * 0.2));
                }
            }
        }
        let data = Dataset::new(pts);
        let dc = 0.5;
        let (rho, deltas) = rho_delta(&data, dc);
        let order = DensityOrder::new(&rho);
        // Densest point of each half as centres.
        let peak_a = (0..49).max_by_key(|&p| order.key(p)).unwrap();
        let peak_b = (49..98).max_by_key(|&p| order.key(p)).unwrap();
        let centers = vec![peak_a, peak_b];
        let c = assign_clusters(
            &data,
            &order,
            &deltas,
            &centers,
            dc,
            &AssignmentOptions::with_halo(),
        )
        .unwrap();
        assert!(c.halo_count() > 0, "facing edges must produce halo points");
        assert!(!c.is_halo(peak_a), "cluster core must not be halo");
        assert!(!c.is_halo(peak_b), "cluster core must not be halo");
        // The facing corner of the first grid (i=6, j=0 -> id 42) is sparse
        // and adjacent to the other cluster, so it must be halo.
        assert!(c.is_halo(42));
    }

    /// Regression pin for centre/assignment determinism when two candidate
    /// peaks are *exactly* tied: equal ρ, equal δ (hence equal γ).
    ///
    /// Two coincident pairs, far apart: every point has ρ = 1, and both pair
    /// leaders (ids 0 and 2) end up with δ = 10 — the decision graph cannot
    /// separate them on (ρ, δ) alone. The pinned behaviour is the workspace
    /// convention used everywhere else: ties resolve towards the smaller id
    /// (γ ranking is stable by id, the density order uses
    /// `TieBreak::SmallerIdDenser`, equidistant µ candidates pick the
    /// smaller id). The streaming engine re-runs this selection + assignment
    /// every epoch, so any drift here would make incremental and batch runs
    /// diverge.
    #[test]
    fn equal_rho_equal_delta_peaks_assign_deterministically() {
        use crate::decision::{CenterSelection, DecisionGraph};
        let data = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 0.0),
        ]);
        let dc = 1.0;
        let (rho, deltas) = rho_delta(&data, dc);
        // Both pair leaders are exact ties on the decision graph.
        assert_eq!(rho, vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(deltas.delta, vec![10.0, 0.0, 10.0, 0.0]);

        let run_once = || {
            let graph = DecisionGraph::new(rho.clone(), &deltas).unwrap();
            let centers = graph
                .select_centers(&CenterSelection::TopKGamma { k: 2 })
                .unwrap();
            let order = DensityOrder::new(&rho);
            let clustering = assign_clusters(
                &data,
                &order,
                &deltas,
                &centers,
                dc,
                &AssignmentOptions::default(),
            )
            .unwrap();
            (centers, clustering)
        };

        let (centers, clustering) = run_once();
        // Tie resolves to the smaller ids: the two pair leaders.
        assert_eq!(centers, vec![0, 2]);
        assert_eq!(clustering.labels(), &[0, 0, 1, 1]);
        // Re-running the selection + assignment is bit-identical (the
        // streaming engine does this every epoch).
        let (centers2, clustering2) = run_once();
        assert_eq!(centers, centers2);
        assert_eq!(clustering, clustering2);
    }

    #[test]
    fn empty_dataset_gives_empty_clustering() {
        let data = Dataset::new(vec![]);
        let rho: Vec<crate::density::Rho> = vec![];
        let order = DensityOrder::new(&rho);
        let deltas = DeltaResult::unset(0);
        let c = assign_clusters(
            &data,
            &order,
            &deltas,
            &[],
            1.0,
            &AssignmentOptions::default(),
        )
        .unwrap();
        assert!(c.is_empty());
    }
}
