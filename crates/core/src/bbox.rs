//! Axis-aligned bounding boxes.
//!
//! Bounding boxes are the geometric primitive behind both tree indices: a
//! quadtree node covers a square region and an R-tree node covers the minimum
//! bounding rectangle of its children. The pruning rules of the paper
//! (Observation 1, Lemma 2) are phrased in terms of the minimum and maximum
//! distance from a query point to such a region, which is what
//! [`BoundingBox::min_dist`] and [`BoundingBox::max_dist`] provide.

use crate::point::Point;

/// A closed axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// The *empty* box is represented with inverted bounds
/// (`min = +∞`, `max = −∞`) so that it behaves as the identity for
/// [`BoundingBox::union`] and contains nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BoundingBox {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl BoundingBox {
    /// The empty bounding box (identity element of [`union`](Self::union)).
    pub const EMPTY: BoundingBox = BoundingBox {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates a bounding box from explicit bounds.
    ///
    /// # Panics
    /// Panics if `min_x > max_x` or `min_y > max_y` (use [`BoundingBox::EMPTY`]
    /// for an empty box).
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x <= max_x && min_y <= max_y,
            "BoundingBox::new: inverted bounds ({min_x},{min_y})-({max_x},{max_y})"
        );
        BoundingBox {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// The degenerate box containing exactly one point.
    pub fn from_point(p: Point) -> Self {
        BoundingBox {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// The tight bounding box of a set of points (empty box for no points).
    pub fn from_points(points: &[Point]) -> Self {
        points
            .iter()
            .fold(BoundingBox::EMPTY, |bb, p| bb.extended(*p))
    }

    /// Minimum x bound.
    #[inline]
    pub fn min_x(&self) -> f64 {
        self.min_x
    }

    /// Minimum y bound.
    #[inline]
    pub fn min_y(&self) -> f64 {
        self.min_y
    }

    /// Maximum x bound.
    #[inline]
    pub fn max_x(&self) -> f64 {
        self.max_x
    }

    /// Maximum y bound.
    #[inline]
    pub fn max_y(&self) -> f64 {
        self.max_y
    }

    /// Whether the box contains no points at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width of the box along x (0 for the empty box).
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height of the box along y (0 for the empty box).
    #[inline]
    pub fn height(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max_y - self.min_y
        }
    }

    /// Length of the diagonal (0 for the empty box).
    pub fn diagonal(&self) -> f64 {
        let w = self.width();
        let h = self.height();
        (w * w + h * h).sqrt()
    }

    /// Area of the box (0 for the empty box).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre of the box.
    ///
    /// # Panics
    /// Panics if the box is empty.
    pub fn center(&self) -> Point {
        assert!(!self.is_empty(), "BoundingBox::center on empty box");
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether the box contains the given point (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether this box fully contains `other` (empty boxes are contained in
    /// everything).
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// Whether the two boxes overlap (boundary touching counts as overlap).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Returns this box grown to also cover `p`.
    pub fn extended(&self, p: Point) -> BoundingBox {
        BoundingBox {
            min_x: self.min_x.min(p.x),
            min_y: self.min_y.min(p.y),
            max_x: self.max_x.max(p.x),
            max_y: self.max_y.max(p.y),
        }
    }

    /// Smallest box covering both operands.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Minimum Euclidean distance from `p` to any point of the box.
    ///
    /// This is the `dmin(p, node)` function of the paper: it is `0` when `p`
    /// lies inside the box. Returns `+∞` for the empty box so that empty
    /// regions are always pruned.
    pub fn min_dist(&self, p: Point) -> f64 {
        self.min_dist_squared(p).sqrt()
    }

    /// Squared minimum Euclidean distance from `p` to any point of the box.
    ///
    /// The sqrt-free variant of [`min_dist`](Self::min_dist), used by the
    /// ρ-query hot loop which compares against a precomputed `dc²` instead of
    /// paying a square root per node (safe: squaring is monotone on
    /// non-negative distances, see the discussion in
    /// [`crate::metric`]). Returns `+∞` for the empty box.
    #[inline]
    pub fn min_dist_squared(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = if p.x < self.min_x {
            self.min_x - p.x
        } else if p.x > self.max_x {
            p.x - self.max_x
        } else {
            0.0
        };
        let dy = if p.y < self.min_y {
            self.min_y - p.y
        } else if p.y > self.max_y {
            p.y - self.max_y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Maximum Euclidean distance from `p` to any point of the box.
    ///
    /// This is the `dmax(p, node)` function of the paper, used to detect that
    /// a node is *fully contained* in the query circle. Returns `0` for the
    /// empty box (an empty region can always be counted as fully contained —
    /// it contributes nothing).
    pub fn max_dist(&self, p: Point) -> f64 {
        self.max_dist_squared(p).sqrt()
    }

    /// Squared maximum Euclidean distance from `p` to any point of the box.
    ///
    /// The sqrt-free variant of [`max_dist`](Self::max_dist); see
    /// [`min_dist_squared`](Self::min_dist_squared). Returns `0` for the
    /// empty box.
    #[inline]
    pub fn max_dist_squared(&self, p: Point) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let dx = (p.x - self.min_x).abs().max((p.x - self.max_x).abs());
        let dy = (p.y - self.min_y).abs().max((p.y - self.max_y).abs());
        dx * dx + dy * dy
    }

    /// Splits the box into four equal quadrants: `[SW, SE, NW, NE]`.
    ///
    /// Used by the quadtree. The quadrants share their boundaries; the
    /// quadtree resolves boundary membership with half-open comparisons
    /// against the centre.
    ///
    /// # Panics
    /// Panics if the box is empty.
    pub fn quadrants(&self) -> [BoundingBox; 4] {
        let c = self.center();
        [
            BoundingBox::new(self.min_x, self.min_y, c.x, c.y), // SW
            BoundingBox::new(c.x, self.min_y, self.max_x, c.y), // SE
            BoundingBox::new(self.min_x, c.y, c.x, self.max_y), // NW
            BoundingBox::new(c.x, c.y, self.max_x, self.max_y), // NE
        ]
    }

    /// Returns this box expanded by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> BoundingBox {
        if self.is_empty() {
            return *self;
        }
        BoundingBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }
}

impl Default for BoundingBox {
    fn default() -> Self {
        BoundingBox::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_properties() {
        let e = BoundingBox::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.width(), 0.0);
        assert_eq!(e.height(), 0.0);
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point::origin()));
        assert_eq!(e.min_dist(Point::origin()), f64::INFINITY);
        assert_eq!(e.max_dist(Point::origin()), 0.0);
    }

    #[test]
    fn from_points_is_tight() {
        let pts = vec![
            Point::new(1.0, 2.0),
            Point::new(-3.0, 5.0),
            Point::new(0.0, 0.0),
        ];
        let bb = BoundingBox::from_points(&pts);
        assert_eq!(bb, BoundingBox::new(-3.0, 0.0, 1.0, 5.0));
        for p in &pts {
            assert!(bb.contains(*p));
        }
    }

    #[test]
    fn union_with_empty_is_identity() {
        let bb = BoundingBox::new(0.0, 0.0, 2.0, 3.0);
        assert_eq!(bb.union(&BoundingBox::EMPTY), bb);
        assert_eq!(BoundingBox::EMPTY.union(&bb), bb);
    }

    #[test]
    fn union_covers_both() {
        let a = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BoundingBox::new(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
        assert_eq!(u, BoundingBox::new(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn squared_distances_are_squares_of_the_true_ones() {
        let bb = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        for p in [
            Point::new(5.0, 5.0),
            Point::new(13.0, 5.0),
            Point::new(-2.0, -3.0),
            Point::new(11.0, 14.0),
        ] {
            assert_eq!(bb.min_dist(p), bb.min_dist_squared(p).sqrt());
            assert_eq!(bb.max_dist(p), bb.max_dist_squared(p).sqrt());
        }
        let e = BoundingBox::EMPTY;
        assert_eq!(e.min_dist_squared(Point::origin()), f64::INFINITY);
        assert_eq!(e.max_dist_squared(Point::origin()), 0.0);
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let bb = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(bb.min_dist(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(bb.min_dist(Point::new(0.0, 0.0)), 0.0); // boundary
    }

    #[test]
    fn min_dist_outside_axis_aligned() {
        let bb = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(bb.min_dist(Point::new(13.0, 5.0)), 3.0);
        assert_eq!(bb.min_dist(Point::new(5.0, -4.0)), 4.0);
    }

    #[test]
    fn min_dist_outside_corner() {
        let bb = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(bb.min_dist(Point::new(13.0, 14.0)), 5.0);
    }

    #[test]
    fn max_dist_is_to_farthest_corner() {
        let bb = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let d = bb.max_dist(Point::new(1.0, 1.0));
        let expected = Point::new(1.0, 1.0).distance(&Point::new(10.0, 10.0));
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn max_dist_bounds_all_contained_points() {
        let bb = BoundingBox::new(-2.0, -2.0, 7.0, 3.0);
        let q = Point::new(1.0, 1.0);
        let dmax = bb.max_dist(q);
        for &p in &[
            Point::new(-2.0, -2.0),
            Point::new(7.0, 3.0),
            Point::new(0.0, 0.0),
            Point::new(7.0, -2.0),
        ] {
            assert!(q.distance(&p) <= dmax + 1e-12);
        }
    }

    #[test]
    fn min_dist_never_exceeds_max_dist() {
        let bb = BoundingBox::new(0.0, 0.0, 4.0, 2.0);
        for &q in &[
            Point::new(-3.0, 5.0),
            Point::new(2.0, 1.0),
            Point::new(10.0, -10.0),
        ] {
            assert!(bb.min_dist(q) <= bb.max_dist(q));
        }
    }

    #[test]
    fn quadrants_partition_area() {
        let bb = BoundingBox::new(0.0, 0.0, 8.0, 4.0);
        let qs = bb.quadrants();
        let total: f64 = qs.iter().map(|q| q.area()).sum();
        assert!((total - bb.area()).abs() < 1e-12);
        for q in &qs {
            assert!(bb.contains_box(q));
        }
    }

    #[test]
    fn intersects_and_contains_box() {
        let a = BoundingBox::new(0.0, 0.0, 4.0, 4.0);
        let b = BoundingBox::new(2.0, 2.0, 6.0, 6.0);
        let c = BoundingBox::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.contains_box(&BoundingBox::new(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_box(&b));
    }

    #[test]
    fn inflated_grows_every_side() {
        let bb = BoundingBox::new(0.0, 0.0, 1.0, 1.0).inflated(0.5);
        assert_eq!(bb, BoundingBox::new(-0.5, -0.5, 1.5, 1.5));
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn new_rejects_inverted_bounds() {
        BoundingBox::new(1.0, 0.0, 0.0, 2.0);
    }
}
