//! The result of a DPC run: cluster labels, centres and halo flags.

use crate::point::PointId;

/// Identifier of a cluster: the position of its centre in the sorted centre
/// list, i.e. a dense index in `0..num_clusters`.
pub type ClusterId = usize;

/// A complete clustering of a dataset.
///
/// Every point carries the label of the cluster it was assigned to. Points in
/// the *halo* of a cluster (border points whose density is below the
/// cluster's border density, per the original DPC paper) keep their label but
/// are flagged so callers can treat them as noise if desired.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    labels: Vec<ClusterId>,
    centers: Vec<PointId>,
    halo: Vec<bool>,
}

impl Clustering {
    /// Creates a clustering from its parts.
    ///
    /// # Panics
    /// Panics if `labels` and `halo` have different lengths, if a label is
    /// out of range, or if a centre id is out of range.
    pub fn new(labels: Vec<ClusterId>, centers: Vec<PointId>, halo: Vec<bool>) -> Self {
        assert_eq!(
            labels.len(),
            halo.len(),
            "labels and halo must have the same length"
        );
        let k = centers.len();
        assert!(
            labels.iter().all(|&l| l < k),
            "every label must reference one of the {k} centres"
        );
        assert!(
            centers
                .iter()
                .all(|&c| c < labels.len() || labels.is_empty()),
            "centre ids must reference points of the dataset"
        );
        Clustering {
            labels,
            centers,
            halo,
        }
    }

    /// Number of clustered points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no points were clustered.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Cluster label of a point.
    pub fn label(&self, p: PointId) -> ClusterId {
        self.labels[p]
    }

    /// All labels, indexed by [`PointId`].
    pub fn labels(&self) -> &[ClusterId] {
        &self.labels
    }

    /// The centre point of each cluster; `centers()[c]` is the centre of
    /// cluster `c`.
    pub fn centers(&self) -> &[PointId] {
        &self.centers
    }

    /// Whether a point lies in the halo (border noise) of its cluster.
    pub fn is_halo(&self, p: PointId) -> bool {
        self.halo[p]
    }

    /// Halo flags, indexed by [`PointId`].
    pub fn halo(&self) -> &[bool] {
        &self.halo
    }

    /// Number of halo points.
    pub fn halo_count(&self) -> usize {
        self.halo.iter().filter(|&&h| h).count()
    }

    /// The members of one cluster (including halo points), in id order.
    pub fn members(&self, cluster: ClusterId) -> Vec<PointId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == cluster)
            .map(|(p, _)| p)
            .collect()
    }

    /// The *core* members of one cluster (halo excluded), in id order.
    pub fn core_members(&self, cluster: ClusterId) -> Vec<PointId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(p, &l)| l == cluster && !self.halo[*p])
            .map(|(p, _)| p)
            .collect()
    }

    /// Size of every cluster (halo included), indexed by [`ClusterId`].
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Labels with halo points mapped to `None`, which is the form most
    /// external quality metrics expect for "noise".
    pub fn labels_with_noise(&self) -> Vec<Option<ClusterId>> {
        self.labels
            .iter()
            .zip(&self.halo)
            .map(|(&l, &h)| if h { None } else { Some(l) })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Clustering {
        // 6 points, 2 clusters with centres at points 0 and 3; point 5 is halo.
        Clustering::new(
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 3],
            vec![false, false, false, false, false, true],
        )
    }

    #[test]
    fn accessors() {
        let c = sample();
        assert_eq!(c.len(), 6);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.label(4), 1);
        assert_eq!(c.centers(), &[0, 3]);
        assert!(c.is_halo(5));
        assert!(!c.is_halo(0));
        assert_eq!(c.halo_count(), 1);
    }

    #[test]
    fn members_and_core_members() {
        let c = sample();
        assert_eq!(c.members(1), vec![3, 4, 5]);
        assert_eq!(c.core_members(1), vec![3, 4]);
        assert_eq!(c.members(0), vec![0, 1, 2]);
    }

    #[test]
    fn sizes_sum_to_len() {
        let c = sample();
        let sizes = c.sizes();
        assert_eq!(sizes, vec![3, 3]);
        assert_eq!(sizes.iter().sum::<usize>(), c.len());
    }

    #[test]
    fn labels_with_noise_masks_halo() {
        let c = sample();
        let l = c.labels_with_noise();
        assert_eq!(l[0], Some(0));
        assert_eq!(l[5], None);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_halo_length_panics() {
        Clustering::new(vec![0, 0], vec![0], vec![false]);
    }

    #[test]
    #[should_panic(expected = "centres")]
    fn out_of_range_label_panics() {
        Clustering::new(vec![0, 2], vec![0, 1], vec![false, false]);
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::new(vec![], vec![], vec![]);
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 0);
        assert!(c.sizes().is_empty());
    }
}
