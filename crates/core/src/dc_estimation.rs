//! Heuristics for choosing the cut-off distance `dc`.
//!
//! The original DPC paper suggests, "as a rule of thumb", choosing `dc` so
//! that the average number of neighbours is around 1–2 % of the total number
//! of points. The index paper reproduced by this workspace takes the opposite
//! stance — `dc` is inherently a user choice that will be retried many times,
//! which is why an index pays off — but a good starting value still matters,
//! so this module provides the standard quantile heuristic.
//!
//! The estimate is the `target_fraction` quantile of the pairwise-distance
//! distribution. Computing all `n·(n−1)/2` distances would defeat the purpose
//! for large datasets, so the distribution is estimated from a deterministic
//! sample of point pairs.

use crate::error::{DpcError, Result};
use crate::point::Dataset;

/// Configuration of the `dc` estimation heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcEstimation {
    /// Desired fraction of neighbours per point (the quantile of the
    /// pairwise-distance distribution). The original DPC paper recommends
    /// 0.01–0.02.
    pub target_fraction: f64,
    /// Maximum number of sampled point pairs.
    pub max_pairs: usize,
    /// Seed of the deterministic pair sampler.
    pub seed: u64,
}

impl Default for DcEstimation {
    fn default() -> Self {
        DcEstimation {
            target_fraction: 0.02,
            max_pairs: 100_000,
            seed: 0x5EED,
        }
    }
}

impl DcEstimation {
    /// Creates the heuristic for a given neighbour fraction.
    pub fn with_fraction(target_fraction: f64) -> Self {
        DcEstimation {
            target_fraction,
            ..Default::default()
        }
    }

    /// Estimates `dc` for a dataset.
    ///
    /// Returns an error when the dataset has fewer than two points or when
    /// the configuration is out of range.
    pub fn estimate(&self, dataset: &Dataset) -> Result<f64> {
        if !(self.target_fraction > 0.0 && self.target_fraction < 1.0) {
            return Err(DpcError::invalid_parameter(
                "target_fraction",
                format!(
                    "must lie strictly between 0 and 1, got {}",
                    self.target_fraction
                ),
            ));
        }
        if self.max_pairs == 0 {
            return Err(DpcError::invalid_parameter(
                "max_pairs",
                "must be at least 1",
            ));
        }
        let n = dataset.len();
        if n < 2 {
            return Err(DpcError::EmptyDataset);
        }

        let total_pairs = n * (n - 1) / 2;
        let mut distances = Vec::with_capacity(total_pairs.min(self.max_pairs));
        if total_pairs <= self.max_pairs {
            for i in 0..n {
                for j in (i + 1)..n {
                    distances.push(dataset.distance(i, j));
                }
            }
        } else {
            // Deterministic SplitMix64-style pair sampling (kept local so the
            // core crate stays dependency-free).
            let mut state = self.seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            while distances.len() < self.max_pairs {
                let i = (next() % n as u64) as usize;
                let j = (next() % n as u64) as usize;
                if i != j {
                    distances.push(dataset.distance(i, j));
                }
            }
        }

        distances.sort_by(|a, b| a.total_cmp(b));
        let idx = ((distances.len() as f64 * self.target_fraction).floor() as usize)
            .min(distances.len() - 1);
        let dc = distances[idx];
        if dc > 0.0 {
            Ok(dc)
        } else {
            // All sampled distances collapse to zero (heavily duplicated
            // data): fall back to the smallest positive distance, or an
            // arbitrary unit when there is none.
            Ok(distances.into_iter().find(|&d| d > 0.0).unwrap_or(1.0))
        }
    }
}

/// Convenience wrapper using the default configuration (2 % neighbours).
pub fn estimate_dc(dataset: &Dataset) -> Result<f64> {
    DcEstimation::default().estimate(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DpcIndex;
    use crate::naive_reference::NaiveReferenceIndex;
    use crate::point::Point;

    fn ring(n: usize, radius: f64) -> Dataset {
        Dataset::new(
            (0..n)
                .map(|i| {
                    let a = i as f64 / n as f64 * std::f64::consts::TAU;
                    Point::new(radius * a.cos(), radius * a.sin())
                })
                .collect(),
        )
    }

    #[test]
    fn estimated_dc_yields_roughly_the_requested_neighbour_fraction() {
        let data = ring(400, 10.0);
        let fraction = 0.02;
        let dc = DcEstimation::with_fraction(fraction)
            .estimate(&data)
            .unwrap();
        let rho = NaiveReferenceIndex::build(&data).rho(dc).unwrap();
        let mean = rho.iter().sum::<f64>() / data.len() as f64;
        let achieved = mean / data.len() as f64;
        assert!(
            (achieved - fraction).abs() < 0.02,
            "requested {fraction}, achieved {achieved}"
        );
    }

    #[test]
    fn larger_fraction_gives_larger_dc() {
        let data = ring(300, 5.0);
        let small = DcEstimation::with_fraction(0.01).estimate(&data).unwrap();
        let large = DcEstimation::with_fraction(0.2).estimate(&data).unwrap();
        assert!(large > small);
    }

    #[test]
    fn sampling_path_agrees_roughly_with_the_exhaustive_path() {
        let data = ring(300, 5.0);
        let exhaustive = DcEstimation {
            max_pairs: usize::MAX,
            ..Default::default()
        }
        .estimate(&data)
        .unwrap();
        let sampled = DcEstimation {
            max_pairs: 20_000,
            ..Default::default()
        }
        .estimate(&data)
        .unwrap();
        // The sampled quantile is a statistical estimate of a tail quantile;
        // only require the right order of magnitude.
        assert!(
            (sampled - exhaustive).abs() / exhaustive < 0.5,
            "{sampled} vs {exhaustive}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let data = ring(500, 5.0);
        let config = DcEstimation {
            max_pairs: 2_000,
            ..Default::default()
        };
        assert_eq!(
            config.estimate(&data).unwrap(),
            config.estimate(&data).unwrap()
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let data = ring(10, 1.0);
        assert!(DcEstimation::with_fraction(0.0).estimate(&data).is_err());
        assert!(DcEstimation::with_fraction(1.0).estimate(&data).is_err());
        assert!(DcEstimation {
            max_pairs: 0,
            ..Default::default()
        }
        .estimate(&data)
        .is_err());
        assert!(estimate_dc(&Dataset::new(vec![Point::origin()])).is_err());
        assert!(estimate_dc(&Dataset::new(vec![])).is_err());
    }

    #[test]
    fn duplicated_points_fall_back_to_a_positive_dc() {
        let mut pts = vec![Point::new(1.0, 1.0); 50];
        pts.push(Point::new(2.0, 2.0));
        let data = Dataset::new(pts);
        let dc = estimate_dc(&data).unwrap();
        assert!(dc > 0.0);
    }
}
