//! Decision graph and cluster-centre selection.
//!
//! In DPC, once `ρ` and `δ` have been computed the user looks at the
//! *decision graph* (a scatter plot of `δ` against `ρ`) and picks as cluster
//! centres the points that have both high density and anomalously large
//! dependent distance; points with very low density but large `δ` are
//! outliers. The third step of the original algorithm is manual, so this
//! module provides a faithful representation of the graph plus several
//! automatic selection strategies that are commonly used in practice
//! (`ρ·δ` ranking and the largest-gap heuristic).

use crate::delta::DeltaResult;
use crate::density::Rho;
use crate::error::{DpcError, Result};
use crate::point::PointId;

/// The decision graph: per-point `(ρ, δ)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionGraph {
    rho: Vec<Rho>,
    delta: Vec<f64>,
}

impl DecisionGraph {
    /// Builds the graph from a density vector and a δ-query result.
    ///
    /// The sentinel `δ = +∞` (which approximate indices may report for
    /// points whose neighbour lies beyond the truncation radius) is clipped
    /// to the largest finite `δ` so that ranking remains well defined.
    pub fn new(rho: Vec<Rho>, delta_result: &DeltaResult) -> Result<Self> {
        if rho.len() != delta_result.len() {
            return Err(DpcError::LengthMismatch {
                expected: rho.len(),
                actual: delta_result.len(),
                what: "decision graph delta",
            });
        }
        let clip = delta_result.max_finite_delta();
        let delta = delta_result
            .delta
            .iter()
            .map(|&d| if d.is_finite() { d } else { clip })
            .collect();
        Ok(DecisionGraph { rho, delta })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// True when the graph has no points.
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }

    /// Density of one point.
    pub fn rho(&self, p: PointId) -> Rho {
        self.rho[p]
    }

    /// Dependent distance of one point (clipped, never infinite).
    pub fn delta(&self, p: PointId) -> f64 {
        self.delta[p]
    }

    /// All densities.
    pub fn rho_values(&self) -> &[Rho] {
        &self.rho
    }

    /// All dependent distances.
    pub fn delta_values(&self) -> &[f64] {
        &self.delta
    }

    /// The γ score of a point: normalised `ρ` times normalised `δ`.
    ///
    /// Normalisation divides by the maximum of each quantity so that γ lies
    /// in `[0, 1]`; this is the standard way of ranking centre candidates
    /// when the decision graph is not inspected manually.
    pub fn gamma(&self) -> Vec<f64> {
        let max_rho = self.rho.iter().copied().fold(0.0, f64::max).max(1.0);
        let max_delta = self
            .delta
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        self.rho
            .iter()
            .zip(&self.delta)
            .map(|(&r, &d)| (r / max_rho) * (d / max_delta))
            .collect()
    }

    /// Point ids sorted by decreasing γ.
    pub fn gamma_ranking(&self) -> Vec<PointId> {
        let gamma = self.gamma();
        let mut ids: Vec<PointId> = (0..self.len()).collect();
        ids.sort_by(|&a, &b| {
            gamma[b]
                .partial_cmp(&gamma[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids
    }

    /// Selects cluster centres according to a strategy. The returned ids are
    /// sorted in increasing order.
    pub fn select_centers(&self, selection: &CenterSelection) -> Result<Vec<PointId>> {
        if self.is_empty() {
            return Err(DpcError::EmptyDataset);
        }
        let mut centers = match selection {
            CenterSelection::Threshold { rho_min, delta_min } => (0..self.len())
                .filter(|&p| self.rho[p] >= *rho_min && self.delta[p] >= *delta_min)
                .collect::<Vec<_>>(),
            CenterSelection::TopKGamma { k } => {
                if *k == 0 {
                    return Err(DpcError::invalid_parameter(
                        "k",
                        "must select at least one centre",
                    ));
                }
                if *k > self.len() {
                    return Err(DpcError::TooManyCenters {
                        requested: *k,
                        available: self.len(),
                    });
                }
                self.gamma_ranking().into_iter().take(*k).collect()
            }
            CenterSelection::GammaGap { max_centers } => {
                let cap = (*max_centers).min(self.len()).max(1);
                let ranking = self.gamma_ranking();
                let gamma = self.gamma();
                // Find the largest *relative* drop between consecutive γ
                // values within the first `cap + 1` candidates; the centres
                // are everything before the drop. A relative (ratio) gap is
                // used rather than an absolute one because the global peak's
                // γ is 1 by construction and would otherwise always dominate
                // the gap search, collapsing every selection to one cluster.
                let mut best_cut = 1;
                let mut best_ratio = 0.0f64;
                for i in 0..cap.min(ranking.len().saturating_sub(1)) {
                    let hi = gamma[ranking[i]];
                    let lo = gamma[ranking[i + 1]];
                    let ratio = hi / lo.max(1e-12);
                    if ratio > best_ratio {
                        best_ratio = ratio;
                        best_cut = i + 1;
                    }
                }
                ranking.into_iter().take(best_cut).collect()
            }
            CenterSelection::Explicit { centers } => {
                for &c in centers {
                    if c >= self.len() {
                        return Err(DpcError::invalid_parameter(
                            "centers",
                            format!("explicit centre {c} is out of range (n = {})", self.len()),
                        ));
                    }
                }
                centers.clone()
            }
        };
        centers.sort_unstable();
        centers.dedup();
        if centers.is_empty() {
            return Err(DpcError::invalid_parameter(
                "selection",
                "no point satisfies the centre-selection criterion",
            ));
        }
        Ok(centers)
    }

    /// Points that the decision graph flags as outliers: density at or below
    /// `rho_max` yet dependent distance at least `delta_min` (the top-left
    /// corner of the graph).
    pub fn outliers(&self, rho_max: Rho, delta_min: f64) -> Vec<PointId> {
        (0..self.len())
            .filter(|&p| self.rho[p] <= rho_max && self.delta[p] >= delta_min)
            .collect()
    }
}

/// Strategy for picking cluster centres from the decision graph.
#[derive(Debug, Clone, PartialEq)]
pub enum CenterSelection {
    /// All points with `ρ ≥ rho_min` and `δ ≥ delta_min` — the rectangle a
    /// user would draw on the decision graph.
    Threshold {
        /// Minimum density.
        rho_min: Rho,
        /// Minimum dependent distance.
        delta_min: f64,
    },
    /// The `k` points with the largest γ = ρ̂·δ̂ score.
    TopKGamma {
        /// Number of centres (= number of clusters).
        k: usize,
    },
    /// Automatic selection: rank by γ and cut at the largest *relative* drop
    /// among the first `max_centers` candidates.
    GammaGap {
        /// Upper bound on the number of centres considered.
        max_centers: usize,
    },
    /// Explicitly provided centre ids (e.g. from a previous manual
    /// inspection of the decision graph).
    Explicit {
        /// The centre point ids.
        centers: Vec<PointId>,
    },
}

impl Default for CenterSelection {
    fn default() -> Self {
        CenterSelection::GammaGap { max_centers: 32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaResult;

    /// Small synthetic decision graph: points 0 and 5 are obvious centres.
    fn graph() -> DecisionGraph {
        let rho = vec![10.0, 8.0, 7.0, 6.0, 1.0, 9.0];
        let delta = DeltaResult::new(
            vec![5.0, 0.2, 0.3, 0.1, 0.2, 4.0],
            vec![None, Some(0), Some(0), Some(1), Some(3), Some(0)],
        );
        DecisionGraph::new(rho, &delta).unwrap()
    }

    #[test]
    fn gamma_is_normalised_product() {
        let g = graph();
        let gamma = g.gamma();
        assert_eq!(gamma.len(), 6);
        // Point 0 has max rho and max delta -> gamma exactly 1.
        assert!((gamma[0] - 1.0).abs() < 1e-12);
        for &v in &gamma {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn top_k_gamma_selects_the_two_peaks() {
        let g = graph();
        let centers = g
            .select_centers(&CenterSelection::TopKGamma { k: 2 })
            .unwrap();
        assert_eq!(centers, vec![0, 5]);
    }

    #[test]
    fn gamma_gap_detects_two_centres() {
        let g = graph();
        let centers = g
            .select_centers(&CenterSelection::GammaGap { max_centers: 6 })
            .unwrap();
        assert_eq!(centers, vec![0, 5]);
    }

    #[test]
    fn threshold_selection_matches_rectangle() {
        let g = graph();
        let centers = g
            .select_centers(&CenterSelection::Threshold {
                rho_min: 7.0,
                delta_min: 1.0,
            })
            .unwrap();
        assert_eq!(centers, vec![0, 5]);
    }

    #[test]
    fn threshold_with_nothing_selected_is_an_error() {
        let g = graph();
        assert!(g
            .select_centers(&CenterSelection::Threshold {
                rho_min: 100.0,
                delta_min: 100.0
            })
            .is_err());
    }

    #[test]
    fn explicit_selection_is_validated_and_sorted() {
        let g = graph();
        let centers = g
            .select_centers(&CenterSelection::Explicit {
                centers: vec![5, 0, 5],
            })
            .unwrap();
        assert_eq!(centers, vec![0, 5]);
        assert!(g
            .select_centers(&CenterSelection::Explicit { centers: vec![99] })
            .is_err());
    }

    #[test]
    fn top_k_rejects_zero_and_too_many() {
        let g = graph();
        assert!(g
            .select_centers(&CenterSelection::TopKGamma { k: 0 })
            .is_err());
        assert!(g
            .select_centers(&CenterSelection::TopKGamma { k: 7 })
            .is_err());
    }

    #[test]
    fn outliers_are_low_rho_high_delta() {
        let rho = vec![10.0, 1.0, 9.0];
        let delta = DeltaResult::new(vec![3.0, 2.5, 0.1], vec![None, Some(0), Some(0)]);
        let g = DecisionGraph::new(rho, &delta).unwrap();
        assert_eq!(g.outliers(2.0, 1.0), vec![1]);
    }

    #[test]
    fn infinite_delta_is_clipped() {
        let rho = vec![5.0, 4.0];
        let delta = DeltaResult::new(vec![f64::INFINITY, 2.0], vec![None, Some(0)]);
        let g = DecisionGraph::new(rho, &delta).unwrap();
        assert_eq!(g.delta(0), 2.0);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let delta = DeltaResult::unset(3);
        assert!(DecisionGraph::new(vec![1.0, 2.0], &delta).is_err());
    }

    #[test]
    fn empty_graph_select_errors() {
        let g = DecisionGraph::new(vec![], &DeltaResult::unset(0)).unwrap();
        assert!(g.select_centers(&CenterSelection::default()).is_err());
    }
}
