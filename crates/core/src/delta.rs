//! Dependent distance (`δ`) and the density total order.
//!
//! For a point `p`, the dependent distance is
//!
//! ```text
//! δ(p) = min { dist(p, q) : q is denser than p }
//! ```
//!
//! and `µ(p)` is the argmin (the *dependent neighbour*). The densest point of
//! the whole dataset — the *global peak* — has no denser neighbour; following
//! the original DPC paper its `δ` is set to the maximum distance from it to
//! any other point.
//!
//! ## Ties
//!
//! The paper defines "denser" as `ρ(q) > ρ(p)` and implicitly breaks ties by
//! object id (its running example states *"suppose a smaller object ID
//! represents a higher local density"*). Ties are not an edge case in
//! practice: integer densities collide all the time, and without a total
//! order different indices could legitimately return different `µ`
//! assignments, which would make cross-index validation impossible. We
//! therefore make the tie-breaking rule explicit in [`TieBreak`] and use the
//! resulting **total order** ([`DensityOrder`]) everywhere: list indices,
//! tree indices and the naive baseline all agree bit-for-bit.

use crate::density::Rho;
use crate::error::{DpcError, Result};
use crate::point::PointId;

/// How to order two points with the same density.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// The point with the *smaller* id is considered denser (paper's
    /// convention in Example 1). This is the default.
    #[default]
    SmallerIdDenser,
    /// The point with the *larger* id is considered denser.
    LargerIdDenser,
}

/// A total order on points induced by `(ρ, tie-break)`.
///
/// `q` is denser than `p` iff `ρ(q) > ρ(p)`, or `ρ(q) = ρ(p)` and the
/// tie-break favours `q`. Exactly one point — the [global
/// peak](DensityOrder::global_peak) — is denser than every other point.
#[derive(Debug, Clone)]
pub struct DensityOrder<'a> {
    rho: &'a [Rho],
    tie: TieBreak,
}

impl<'a> DensityOrder<'a> {
    /// Creates the order with the default tie-break
    /// ([`TieBreak::SmallerIdDenser`]).
    pub fn new(rho: &'a [Rho]) -> Self {
        DensityOrder {
            rho,
            tie: TieBreak::default(),
        }
    }

    /// Creates the order with an explicit tie-break rule.
    pub fn with_tie_break(rho: &'a [Rho], tie: TieBreak) -> Self {
        DensityOrder { rho, tie }
    }

    /// Number of points covered by the order.
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// True when the order covers no points.
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }

    /// The underlying density slice.
    pub fn rho(&self) -> &[Rho] {
        self.rho
    }

    /// The tie-break rule in use.
    pub fn tie_break(&self) -> TieBreak {
        self.tie
    }

    /// Whether point `q` is denser than point `p` under the total order.
    #[inline]
    pub fn is_denser(&self, q: PointId, p: PointId) -> bool {
        let (rq, rp) = (self.rho[q], self.rho[p]);
        if rq != rp {
            return rq > rp;
        }
        if q == p {
            return false;
        }
        match self.tie {
            TieBreak::SmallerIdDenser => q < p,
            TieBreak::LargerIdDenser => q > p,
        }
    }

    /// Sort key such that a larger key means denser. Useful with
    /// `sort_by_key` / `max_by_key`.
    ///
    /// Densities are non-negative f64, so their IEEE-754 bit patterns order
    /// exactly like the values themselves; `-0.0` is normalised to `+0.0` so
    /// the two zeros compare equal.
    #[inline]
    pub fn key(&self, p: PointId) -> (u64, i64) {
        let id_key = match self.tie {
            TieBreak::SmallerIdDenser => -(p as i64),
            TieBreak::LargerIdDenser => p as i64,
        };
        let r = self.rho[p];
        let rho_key = if r == 0.0 { 0u64 } else { r.to_bits() };
        (rho_key, id_key)
    }

    /// The densest point under the total order (`None` for an empty order).
    pub fn global_peak(&self) -> Option<PointId> {
        (0..self.rho.len()).max_by_key(|&p| self.key(p))
    }

    /// Point ids sorted from densest to sparsest under the total order.
    pub fn rank_descending(&self) -> Vec<PointId> {
        let mut ids: Vec<PointId> = (0..self.rho.len()).collect();
        ids.sort_by_key(|&p| std::cmp::Reverse(self.key(p)));
        ids
    }
}

/// The dependent distances `δ` and dependent neighbours `µ` of every point.
///
/// `mu[p]` is `None` exactly for the global peak (whose `δ` is the maximum
/// distance to any other point, by convention). In approximate settings
/// (RN-List with a too small `τ`) a point whose neighbour could not be found
/// within the truncated list also gets `mu = None` and a sentinel `δ`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaResult {
    /// Dependent distance per point.
    pub delta: Vec<f64>,
    /// Dependent (higher-density) neighbour per point.
    pub mu: Vec<Option<PointId>>,
}

impl DeltaResult {
    /// Creates a result from its two columns.
    ///
    /// # Panics
    /// Panics if the columns have different lengths.
    pub fn new(delta: Vec<f64>, mu: Vec<Option<PointId>>) -> Self {
        assert_eq!(
            delta.len(),
            mu.len(),
            "DeltaResult::new: delta and mu must have the same length"
        );
        DeltaResult { delta, mu }
    }

    /// A result with `n` entries, all initialised to `δ = +∞`, `µ = None`.
    pub fn unset(n: usize) -> Self {
        DeltaResult {
            delta: vec![f64::INFINITY; n],
            mu: vec![None; n],
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.delta.len()
    }

    /// True when the result covers no points.
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Dependent distance of one point.
    #[inline]
    pub fn delta(&self, p: PointId) -> f64 {
        self.delta[p]
    }

    /// Dependent neighbour of one point (`None` for the global peak).
    #[inline]
    pub fn mu(&self, p: PointId) -> Option<PointId> {
        self.mu[p]
    }

    /// Checks structural consistency against a density order:
    ///
    /// * lengths match,
    /// * every `µ(p)` is denser than `p`,
    /// * exactly the points without `µ` are allowed to exist (at least one —
    ///   the global peak — must have `µ = None`).
    pub fn validate(&self, order: &DensityOrder<'_>) -> Result<()> {
        if self.delta.len() != order.len() {
            return Err(DpcError::LengthMismatch {
                expected: order.len(),
                actual: self.delta.len(),
                what: "delta",
            });
        }
        for p in 0..self.len() {
            if let Some(q) = self.mu[p] {
                if q >= order.len() {
                    return Err(DpcError::LengthMismatch {
                        expected: order.len(),
                        actual: q,
                        what: "mu points outside dataset",
                    });
                }
                if !order.is_denser(q, p) {
                    return Err(DpcError::invalid_parameter(
                        "mu",
                        format!("mu[{p}] = {q} is not denser than {p}"),
                    ));
                }
            }
        }
        if !self.is_empty() && self.mu.iter().all(|m| m.is_some()) {
            return Err(DpcError::invalid_parameter(
                "mu",
                "no global peak: every point has a dependent neighbour",
            ));
        }
        Ok(())
    }

    /// Maximum finite `δ` (0 when there is none). Used to clip the sentinel
    /// `δ` of the global peak in plots.
    pub fn max_finite_delta(&self) -> f64 {
        self.delta
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_denser_uses_rho_first() {
        let rho = vec![5.0, 3.0, 7.0];
        let ord = DensityOrder::new(&rho);
        assert!(ord.is_denser(2, 0));
        assert!(ord.is_denser(0, 1));
        assert!(!ord.is_denser(1, 2));
        assert!(!ord.is_denser(1, 1));
    }

    #[test]
    fn tie_break_smaller_id_default() {
        let rho = vec![4.0, 4.0, 4.0];
        let ord = DensityOrder::new(&rho);
        assert!(ord.is_denser(0, 1));
        assert!(ord.is_denser(1, 2));
        assert!(!ord.is_denser(2, 0));
        assert_eq!(ord.global_peak(), Some(0));
    }

    #[test]
    fn tie_break_larger_id() {
        let rho = vec![4.0, 4.0, 4.0];
        let ord = DensityOrder::with_tie_break(&rho, TieBreak::LargerIdDenser);
        assert!(ord.is_denser(2, 1));
        assert!(!ord.is_denser(0, 1));
        assert_eq!(ord.global_peak(), Some(2));
    }

    #[test]
    fn order_is_total_and_antisymmetric() {
        let rho = vec![1.0, 5.0, 5.0, 0.0, 5.0];
        let ord = DensityOrder::new(&rho);
        for p in 0..rho.len() {
            for q in 0..rho.len() {
                if p == q {
                    assert!(!ord.is_denser(p, q));
                } else {
                    // exactly one direction holds
                    assert_ne!(ord.is_denser(p, q), ord.is_denser(q, p), "{p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn rank_descending_is_consistent_with_is_denser() {
        let rho = vec![2.0, 9.0, 9.0, 1.0, 4.0];
        let ord = DensityOrder::new(&rho);
        let ranked = ord.rank_descending();
        assert_eq!(ranked.len(), rho.len());
        for w in ranked.windows(2) {
            assert!(ord.is_denser(w[0], w[1]));
        }
        assert_eq!(ranked[0], ord.global_peak().unwrap());
    }

    #[test]
    fn key_orders_fractional_densities_and_normalises_negative_zero() {
        let rho = vec![0.5, 1.25, 0.0, -0.0, 1.25];
        let ord = DensityOrder::new(&rho);
        assert!(ord.is_denser(1, 0));
        assert!(ord.key(1) > ord.key(0));
        assert!(ord.key(0) > ord.key(2));
        // The two zeros differ only by id: -0.0 maps to the same rho key.
        assert_eq!(ord.key(2).0, ord.key(3).0);
        assert!(ord.is_denser(2, 3));
        // Equal fractional densities fall back to the id tie-break.
        assert!(ord.key(1) > ord.key(4));
        assert_eq!(ord.global_peak(), Some(1));
        let ranked = ord.rank_descending();
        for w in ranked.windows(2) {
            assert!(ord.is_denser(w[0], w[1]));
        }
    }

    #[test]
    fn global_peak_of_empty_is_none() {
        let rho: Vec<Rho> = vec![];
        assert_eq!(DensityOrder::new(&rho).global_peak(), None);
    }

    #[test]
    fn delta_result_validation_accepts_consistent_result() {
        let rho = vec![3.0, 2.0, 1.0];
        let ord = DensityOrder::new(&rho);
        let res = DeltaResult::new(vec![10.0, 1.0, 2.0], vec![None, Some(0), Some(1)]);
        assert!(res.validate(&ord).is_ok());
    }

    #[test]
    fn delta_result_validation_rejects_non_denser_mu() {
        let rho = vec![3.0, 2.0, 1.0];
        let ord = DensityOrder::new(&rho);
        // mu[0] = 2 but point 2 is sparser than point 0.
        let res = DeltaResult::new(vec![1.0, 1.0, 2.0], vec![Some(2), Some(0), Some(1)]);
        assert!(res.validate(&ord).is_err());
    }

    #[test]
    fn delta_result_validation_requires_a_global_peak() {
        let rho = vec![3.0, 2.0];
        let ord = DensityOrder::new(&rho);
        let res = DeltaResult::new(vec![1.0, 1.0], vec![Some(1), Some(0)]);
        assert!(res.validate(&ord).is_err());
    }

    #[test]
    fn delta_result_validation_rejects_length_mismatch() {
        let rho = vec![3.0, 2.0, 1.0];
        let ord = DensityOrder::new(&rho);
        let res = DeltaResult::unset(2);
        assert!(res.validate(&ord).is_err());
    }

    #[test]
    fn max_finite_delta_ignores_infinities() {
        let res = DeltaResult::new(vec![1.0, f64::INFINITY, 2.5], vec![Some(1), None, Some(1)]);
        assert_eq!(res.max_finite_delta(), 2.5);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn delta_result_new_panics_on_mismatch() {
        DeltaResult::new(vec![1.0], vec![]);
    }
}
