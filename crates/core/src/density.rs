//! Local density (`ρ`) representation.
//!
//! The paper defines the local density of an object `p` as the number of
//! *other* objects within the cut-off distance `dc`:
//!
//! ```text
//! ρ(p) = |{ q ∈ P, q ≠ p : dist(p, q) < dc }|
//! ```
//!
//! i.e. the indicator `χ(dist(p,q) − dc)` is 1 exactly when the distance is
//! *strictly* smaller than `dc` and the point itself is never counted. Every
//! index in this workspace follows that convention so their results are
//! bit-identical to the naive baseline.
//!
//! ## Weighted densities
//!
//! With a pluggable [`Kernel`](crate::Kernel) the indicator generalises to a
//! weight `w(dist(p,q))` for neighbours strictly within `dc` (truncated
//! kernels; see [`crate::kernel`]), so `ρ` is an `f64`. The paper-faithful
//! [`Kernel::Cutoff`](crate::Kernel::Cutoff) keeps every weight exactly
//! `1.0`: sums of exact ones are exact integers in f64 (up to 2⁵³ ≫ any
//! window), so the cut-off path remains **bit-identical** to the historical
//! integer-count representation.

use crate::point::PointId;

/// Local density of a single point: the (possibly kernel-weighted) mass of
/// neighbours within `dc`. Under [`Kernel::Cutoff`](crate::Kernel::Cutoff)
/// this is an exact integer-valued count.
pub type Rho = f64;

/// The local densities of every point of a dataset for one particular `dc`.
///
/// Thin wrapper around `Vec<Rho>` adding the convenience queries used by the
/// decision graph and by the tree indices (which need the maximum density per
/// subtree).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityEstimate {
    values: Vec<Rho>,
}

impl DensityEstimate {
    /// Wraps a per-point density vector.
    pub fn new(values: Vec<Rho>) -> Self {
        DensityEstimate { values }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Density of one point.
    #[inline]
    pub fn rho(&self, id: PointId) -> Rho {
        self.values[id]
    }

    /// The underlying per-point densities indexed by [`PointId`].
    pub fn as_slice(&self) -> &[Rho] {
        &self.values
    }

    /// Consumes the estimate and returns the raw vector.
    pub fn into_vec(self) -> Vec<Rho> {
        self.values
    }

    /// Maximum density over all points (0 for an empty estimate).
    pub fn max(&self) -> Rho {
        self.values.iter().copied().fold(0.0, Rho::max)
    }

    /// Mean density (0 for an empty estimate).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Id of the densest point, ties broken towards the smaller id.
    ///
    /// Returns `None` for an empty estimate.
    pub fn argmax(&self) -> Option<PointId> {
        let mut best: Option<(Rho, PointId)> = None;
        for (id, &r) in self.values.iter().enumerate() {
            match best {
                None => best = Some((r, id)),
                Some((br, _)) if r > br => best = Some((r, id)),
                _ => {}
            }
        }
        best.map(|(_, id)| id)
    }

    /// Histogram of densities: `hist[d]` = number of points whose density
    /// floors to `d` (for integer-valued cut-off densities this is the exact
    /// per-count histogram). Empty for an empty estimate.
    pub fn histogram(&self) -> Vec<usize> {
        if self.values.is_empty() {
            return vec![];
        }
        let mut hist = vec![0usize; self.max() as usize + 1];
        for &r in &self.values {
            hist[r as usize] += 1;
        }
        hist
    }
}

impl From<Vec<Rho>> for DensityEstimate {
    fn from(values: Vec<Rho>) -> Self {
        DensityEstimate::new(values)
    }
}

impl std::ops::Index<PointId> for DensityEstimate {
    type Output = Rho;

    fn index(&self, id: PointId) -> &Rho {
        &self.values[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let d = DensityEstimate::new(vec![3.0, 1.0, 4.0, 1.0, 5.0]);
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());
        assert_eq!(d.rho(2), 4.0);
        assert_eq!(d[4], 5.0);
        assert_eq!(d.max(), 5.0);
        assert_eq!(d.argmax(), Some(4));
        assert!((d.mean() - 2.8).abs() < 1e-12);
    }

    #[test]
    fn argmax_breaks_ties_towards_smaller_id() {
        let d = DensityEstimate::new(vec![2.0, 7.0, 7.0, 3.0]);
        assert_eq!(d.argmax(), Some(1));
    }

    #[test]
    fn empty_estimate() {
        let d = DensityEstimate::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.max(), 0.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.argmax(), None);
        assert!(d.histogram().is_empty());
    }

    #[test]
    fn histogram_counts_each_density() {
        let d = DensityEstimate::new(vec![0.0, 2.0, 2.0, 3.0]);
        assert_eq!(d.histogram(), vec![1, 0, 2, 1]);
    }

    #[test]
    fn histogram_of_all_zero_densities_is_one_bin_holding_n() {
        let d = DensityEstimate::new(vec![0.0; 5]);
        assert_eq!(d.histogram(), vec![5]);
    }

    #[test]
    fn histogram_floors_weighted_densities_into_integer_bins() {
        let d = DensityEstimate::new(vec![0.4, 2.7, 2.1, 3.0]);
        assert_eq!(d.histogram(), vec![1, 0, 2, 1]);
    }

    #[test]
    fn into_vec_round_trips() {
        let v = vec![1.0f64, 2.0, 3.0];
        let d: DensityEstimate = v.clone().into();
        assert_eq!(d.into_vec(), v);
    }
}
