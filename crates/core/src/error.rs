//! Error type shared by the DPC crates.

use std::fmt;

/// Convenience alias for results in the DPC workspace.
pub type Result<T> = std::result::Result<T, DpcError>;

/// Errors produced by dataset construction, index building or the clustering
/// pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DpcError {
    /// A point contained a NaN or infinite coordinate.
    InvalidPoint {
        /// Position of the offending point in the input.
        id: usize,
        /// x coordinate as provided.
        x: f64,
        /// y coordinate as provided.
        y: f64,
    },
    /// A parameter was outside its valid domain (e.g. `dc <= 0`).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// The dataset is empty but the operation needs at least one point.
    EmptyDataset,
    /// The lengths of per-point vectors disagree (internal consistency).
    LengthMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
        /// Which quantity mismatched.
        what: &'static str,
    },
    /// Requested number of cluster centres exceeds the number of points.
    TooManyCenters {
        /// Requested centre count.
        requested: usize,
        /// Number of available points.
        available: usize,
    },
    /// An I/O error while reading or writing datasets or results.
    Io(String),
}

impl fmt::Display for DpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpcError::InvalidPoint { id, x, y } => {
                write!(f, "point {id} has a non-finite coordinate ({x}, {y})")
            }
            DpcError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            DpcError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            DpcError::LengthMismatch {
                expected,
                actual,
                what,
            } => {
                write!(f, "{what}: expected length {expected}, got {actual}")
            }
            DpcError::TooManyCenters {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} cluster centres but only {available} points exist"
                )
            }
            DpcError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DpcError {}

impl From<std::io::Error> for DpcError {
    fn from(e: std::io::Error) -> Self {
        DpcError::Io(e.to_string())
    }
}

impl DpcError {
    /// Helper constructing an [`DpcError::InvalidParameter`].
    pub fn invalid_parameter(name: &'static str, message: impl Into<String>) -> Self {
        DpcError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DpcError::InvalidPoint {
            id: 3,
            x: f64::NAN,
            y: 1.0,
        };
        assert!(e.to_string().contains("point 3"));

        let e = DpcError::invalid_parameter("dc", "must be positive");
        assert!(e.to_string().contains("dc"));
        assert!(e.to_string().contains("must be positive"));

        let e = DpcError::LengthMismatch {
            expected: 5,
            actual: 3,
            what: "rho",
        };
        assert!(e.to_string().contains("expected length 5"));

        let e = DpcError::TooManyCenters {
            requested: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));

        assert!(DpcError::EmptyDataset.to_string().contains("non-empty"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.csv");
        let e: DpcError = io.into();
        assert!(matches!(e, DpcError::Io(_)));
        assert!(e.to_string().contains("missing.csv"));
    }
}
