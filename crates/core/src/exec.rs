//! The shared parallel query engine: chunked work partitioning over scoped
//! threads.
//!
//! Every per-point DPC query is embarrassingly parallel: point `p`'s ρ and δ
//! depend only on the dataset and the (read-only) index, never on another
//! point's result. "Faster Parallel Exact Density Peaks Clustering" (Huang,
//! Yu & Shun, 2023) shows exact DPC scales near-linearly with cores on
//! exactly this decomposition, so this module provides it once for the whole
//! workspace: an [`ExecPolicy`] knob plus two chunked executors that split an
//! output slice into contiguous per-worker chunks, run one scoped thread per
//! chunk, and hand every worker its own scratch state (query statistics,
//! reusable traversal stacks/heaps) that the caller merges after the join.
//!
//! Determinism is by construction: each output slot is written by exactly one
//! worker running exactly the same per-point code as the sequential path, so
//! parallel results are bit-identical to sequential results at every thread
//! count. The chunk partitioning logic lives here and nowhere else —
//! `ParallelDpc`, the neighbour-list builder and every index's parallel
//! query all go through these two functions.

use dpc_obs::Recorder;
use std::time::Instant;

/// How per-point query work is partitioned across worker threads.
///
/// The default is [`Sequential`](ExecPolicy::Sequential): the paper's
/// measurements are single-threaded, so parallelism is strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Run in the calling thread, no workers spawned (paper-faithful
    /// default).
    #[default]
    Sequential,
    /// Use this many worker threads (clamped to the number of work items;
    /// `0` and `1` behave like `Sequential`).
    Threads(usize),
    /// One worker per available CPU core.
    Auto,
}

impl ExecPolicy {
    /// The workspace-wide convention for mapping a user-facing thread count
    /// to a policy: `0` and `1` mean [`Sequential`](ExecPolicy::Sequential),
    /// anything larger means that many workers. This is the single home of
    /// the mapping used by `DpcParams::with_threads`, the CLI `--threads`
    /// flag and the experiment harness.
    pub fn from_threads(n: usize) -> Self {
        if n <= 1 {
            ExecPolicy::Sequential
        } else {
            ExecPolicy::Threads(n)
        }
    }

    /// Number of workers a query over `items` work items will actually use
    /// (always at least 1, never more than `items.max(1)`).
    pub fn workers(&self, items: usize) -> usize {
        let requested = match *self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Threads(t) => t.max(1),
            ExecPolicy::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        requested.min(items).max(1)
    }
}

/// Length of each contiguous chunk when `items` work items are split across
/// `workers` threads. This is the single source of truth for the chunk
/// geometry used by both executors.
fn chunk_len(items: usize, workers: usize) -> usize {
    items.div_ceil(workers.max(1)).max(1)
}

/// Fills `out[i] = body(i, scratch)` for every index `i`, partitioning
/// contiguous chunks of `out` across the policy's workers.
///
/// `make_scratch` creates one scratch value per worker; the scratch lives for
/// the worker's whole chunk, so per-point state (traversal stacks, heaps,
/// statistics counters) is reused instead of re-allocated. The per-worker
/// scratches are returned in chunk order so the caller can merge them
/// deterministically.
pub fn fill_slice<T, S, M, B>(out: &mut [T], policy: ExecPolicy, make_scratch: M, body: B) -> Vec<S>
where
    T: Send,
    S: Send,
    M: Fn() -> S + Sync,
    B: Fn(usize, &mut S) -> T + Sync,
{
    let n = out.len();
    let workers = policy.workers(n);
    if workers <= 1 {
        let mut scratch = make_scratch();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = body(i, &mut scratch);
        }
        return vec![scratch];
    }
    let chunk = chunk_len(n, workers);
    let body = &body;
    let make_scratch = &make_scratch;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(chunk_idx, out_chunk)| {
                let start = chunk_idx * chunk;
                scope.spawn(move |_| {
                    let mut scratch = make_scratch();
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = body(start + offset, &mut scratch);
                    }
                    scratch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker thread panicked"))
            .collect()
    })
    .expect("query worker thread panicked")
}

/// Like [`fill_slice`], but fills two parallel output slices at once:
/// `body(i, &mut a[i], &mut b[i], scratch)`.
///
/// This is the shape of the δ-query, which produces the dependent distance
/// and the dependent neighbour per point.
///
/// # Panics
/// Panics if `a` and `b` have different lengths.
pub fn fill_slice_pair<A, B, S, M, F>(
    a: &mut [A],
    b: &mut [B],
    policy: ExecPolicy,
    make_scratch: M,
    body: F,
) -> Vec<S>
where
    A: Send,
    B: Send,
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut A, &mut B, &mut S) + Sync,
{
    assert_eq!(
        a.len(),
        b.len(),
        "fill_slice_pair: output slices must have the same length"
    );
    let n = a.len();
    let workers = policy.workers(n);
    if workers <= 1 {
        let mut scratch = make_scratch();
        for (i, (slot_a, slot_b)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            body(i, slot_a, slot_b, &mut scratch);
        }
        return vec![scratch];
    }
    let chunk = chunk_len(n, workers);
    let body = &body;
    let make_scratch = &make_scratch;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .enumerate()
            .map(|(chunk_idx, (a_chunk, b_chunk))| {
                let start = chunk_idx * chunk;
                scope.spawn(move |_| {
                    let mut scratch = make_scratch();
                    for (offset, (slot_a, slot_b)) in
                        a_chunk.iter_mut().zip(b_chunk.iter_mut()).enumerate()
                    {
                        body(start + offset, slot_a, slot_b, &mut scratch);
                    }
                    scratch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker thread panicked"))
            .collect()
    })
    .expect("query worker thread panicked")
}

/// Like [`fill_slice`], but reports one `label` span and one `<label>.items`
/// histogram sample per worker chunk to `rec`, so a trace shows every
/// worker's lane and a metrics snapshot shows chunk-size balance.
///
/// With a disabled recorder this is exactly [`fill_slice`] — no clock reads,
/// no allocation.
pub fn fill_slice_recorded<T, S, M, B>(
    out: &mut [T],
    policy: ExecPolicy,
    rec: &dyn Recorder,
    label: &str,
    make_scratch: M,
    body: B,
) -> Vec<S>
where
    T: Send,
    S: Send,
    M: Fn() -> S + Sync,
    B: Fn(usize, &mut S) -> T + Sync,
{
    if !rec.enabled() {
        return fill_slice(out, policy, make_scratch, body);
    }
    let items_label = format!("{label}.items");
    let n = out.len();
    let workers = policy.workers(n);
    if workers <= 1 {
        let started = Instant::now();
        let mut scratch = make_scratch();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = body(i, &mut scratch);
        }
        rec.record(&items_label, n as u64);
        rec.span(label, started, started.elapsed());
        return vec![scratch];
    }
    let chunk = chunk_len(n, workers);
    let body = &body;
    let make_scratch = &make_scratch;
    let items_label = items_label.as_str();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(chunk_idx, out_chunk)| {
                let start = chunk_idx * chunk;
                scope.spawn(move |_| {
                    let started = Instant::now();
                    let items = out_chunk.len() as u64;
                    let mut scratch = make_scratch();
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = body(start + offset, &mut scratch);
                    }
                    rec.record(items_label, items);
                    rec.span(label, started, started.elapsed());
                    scratch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker thread panicked"))
            .collect()
    })
    .expect("query worker thread panicked")
}

/// Like [`fill_slice_pair`], but reports one `label` span and one
/// `<label>.items` histogram sample per worker chunk to `rec`.
///
/// With a disabled recorder this is exactly [`fill_slice_pair`].
///
/// # Panics
/// Panics if `a` and `b` have different lengths.
pub fn fill_slice_pair_recorded<A, B, S, M, F>(
    a: &mut [A],
    b: &mut [B],
    policy: ExecPolicy,
    rec: &dyn Recorder,
    label: &str,
    make_scratch: M,
    body: F,
) -> Vec<S>
where
    A: Send,
    B: Send,
    S: Send,
    M: Fn() -> S + Sync,
    F: Fn(usize, &mut A, &mut B, &mut S) + Sync,
{
    if !rec.enabled() {
        return fill_slice_pair(a, b, policy, make_scratch, body);
    }
    assert_eq!(
        a.len(),
        b.len(),
        "fill_slice_pair: output slices must have the same length"
    );
    let items_label = format!("{label}.items");
    let n = a.len();
    let workers = policy.workers(n);
    if workers <= 1 {
        let started = Instant::now();
        let mut scratch = make_scratch();
        for (i, (slot_a, slot_b)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
            body(i, slot_a, slot_b, &mut scratch);
        }
        rec.record(&items_label, n as u64);
        rec.span(label, started, started.elapsed());
        return vec![scratch];
    }
    let chunk = chunk_len(n, workers);
    let body = &body;
    let make_scratch = &make_scratch;
    let items_label = items_label.as_str();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .enumerate()
            .map(|(chunk_idx, (a_chunk, b_chunk))| {
                let start = chunk_idx * chunk;
                scope.spawn(move |_| {
                    let started = Instant::now();
                    let items = a_chunk.len() as u64;
                    let mut scratch = make_scratch();
                    for (offset, (slot_a, slot_b)) in
                        a_chunk.iter_mut().zip(b_chunk.iter_mut()).enumerate()
                    {
                        body(start + offset, slot_a, slot_b, &mut scratch);
                    }
                    rec.record(items_label, items);
                    rec.span(label, started, started.elapsed());
                    scratch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query worker thread panicked"))
            .collect()
    })
    .expect("query worker thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_obs::MetricsRecorder;

    #[test]
    fn from_threads_maps_zero_and_one_to_sequential() {
        assert_eq!(ExecPolicy::from_threads(0), ExecPolicy::Sequential);
        assert_eq!(ExecPolicy::from_threads(1), ExecPolicy::Sequential);
        assert_eq!(ExecPolicy::from_threads(5), ExecPolicy::Threads(5));
    }

    #[test]
    fn workers_clamp_to_items_and_at_least_one() {
        assert_eq!(ExecPolicy::Sequential.workers(100), 1);
        assert_eq!(ExecPolicy::Threads(4).workers(100), 4);
        assert_eq!(ExecPolicy::Threads(4).workers(3), 3);
        assert_eq!(ExecPolicy::Threads(0).workers(10), 1);
        assert_eq!(ExecPolicy::Threads(8).workers(0), 1);
        assert!(ExecPolicy::Auto.workers(1000) >= 1);
    }

    #[test]
    fn chunk_len_covers_all_items() {
        for items in 0..50 {
            for workers in 1..10 {
                let chunk = chunk_len(items, workers);
                assert!(chunk >= 1);
                // chunks of this size cover `items` with at most `workers`
                // chunks.
                assert!(chunk * workers >= items, "{items} items, {workers} workers");
            }
        }
    }

    #[test]
    fn fill_slice_matches_sequential_at_every_thread_count() {
        let expected: Vec<u64> = (0..97u64).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 7, 16, 200] {
            let mut out = vec![0u64; 97];
            let scratches = fill_slice(
                &mut out,
                ExecPolicy::Threads(threads),
                || 0u64,
                |i, calls| {
                    *calls += 1;
                    (i as u64) * (i as u64) + 1
                },
            );
            assert_eq!(out, expected, "threads = {threads}");
            // Every item was processed exactly once across all workers.
            assert_eq!(scratches.iter().sum::<u64>(), 97, "threads = {threads}");
        }
    }

    #[test]
    fn fill_slice_pair_writes_both_outputs() {
        let mut a = vec![0usize; 23];
        let mut b = vec![0i64; 23];
        fill_slice_pair(
            &mut a,
            &mut b,
            ExecPolicy::Threads(5),
            || (),
            |i, slot_a, slot_b, ()| {
                *slot_a = i + 1;
                *slot_b = -(i as i64);
            },
        );
        assert!(a.iter().enumerate().all(|(i, &v)| v == i + 1));
        assert!(b.iter().enumerate().all(|(i, &v)| v == -(i as i64)));
    }

    #[test]
    fn empty_outputs_are_fine() {
        let mut out: Vec<u32> = vec![];
        let scratches = fill_slice(&mut out, ExecPolicy::Threads(8), || (), |_, ()| 0);
        assert_eq!(scratches.len(), 1);
        let (mut a, mut b): (Vec<u32>, Vec<u32>) = (vec![], vec![]);
        fill_slice_pair(&mut a, &mut b, ExecPolicy::Auto, || (), |_, _, _, ()| {});
    }

    #[test]
    fn scratch_is_reused_within_a_worker_chunk() {
        // With 2 workers over 10 items each worker sees 5 items; the scratch
        // counts how many items it served.
        let mut out = vec![0u32; 10];
        let scratches = fill_slice(
            &mut out,
            ExecPolicy::Threads(2),
            || 0u32,
            |_, served| {
                *served += 1;
                *served
            },
        );
        assert_eq!(scratches, vec![5, 5]);
        // Items within a chunk saw the same scratch growing 1..=5.
        assert_eq!(out, vec![1, 2, 3, 4, 5, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn recorded_fill_matches_plain_fill_and_reports_chunks() {
        let expected: Vec<u64> = (0..41u64).map(|i| i * 3).collect();
        let metrics = MetricsRecorder::new();
        let mut out = vec![0u64; 41];
        fill_slice_recorded(
            &mut out,
            ExecPolicy::Threads(4),
            &metrics,
            "exec.test",
            || (),
            |i, ()| (i as u64) * 3,
        );
        assert_eq!(out, expected);
        let snap = metrics.snapshot();
        // 4 workers → 4 chunk spans and 4 item samples covering all 41 items.
        let spans = snap.histogram("exec.test_us").expect("chunk spans");
        assert_eq!(spans.count(), 4);
        let items = snap.histogram("exec.test.items").expect("chunk items");
        assert_eq!(items.sum(), 41);
    }

    #[test]
    fn recorded_fill_with_noop_recorder_is_plain_fill() {
        let noop = dpc_obs::noop();
        let mut out = vec![0u32; 7];
        let scratches = fill_slice_recorded(
            &mut out,
            ExecPolicy::Sequential,
            &*noop,
            "x",
            || (),
            |i, ()| i as u32,
        );
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(scratches.len(), 1);
    }

    #[test]
    fn recorded_pair_fills_both_outputs_and_reports() {
        let metrics = MetricsRecorder::new();
        let mut a = vec![0usize; 10];
        let mut b = vec![0i64; 10];
        fill_slice_pair_recorded(
            &mut a,
            &mut b,
            ExecPolicy::Threads(2),
            &metrics,
            "exec.pair",
            || (),
            |i, slot_a, slot_b, ()| {
                *slot_a = i;
                *slot_b = i as i64 * 2;
            },
        );
        assert!(a.iter().enumerate().all(|(i, &v)| v == i));
        assert!(b.iter().enumerate().all(|(i, &v)| v == i as i64 * 2));
        let snap = metrics.snapshot();
        assert_eq!(snap.histogram("exec.pair.items").map(|h| h.sum()), Some(10));
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_pair_lengths_panic() {
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 4];
        fill_slice_pair(
            &mut a,
            &mut b,
            ExecPolicy::Sequential,
            || (),
            |_, _, _, ()| {},
        );
    }
}
