//! The [`DpcIndex`] trait — the seam between the clustering pipeline and the
//! concrete index structures.
//!
//! An index is built once over a dataset and can then answer, for *any*
//! cut-off distance `dc`, the two expensive DPC queries:
//!
//! * the **ρ-query**: local density of every point,
//! * the **δ-query**: dependent distance and dependent neighbour of every
//!   point (given the densities).
//!
//! The motivation in the paper is exactly this split: the user typically runs
//! DPC for many `dc` values while searching for a satisfactory clustering, so
//! the index is amortised across runs.

use std::time::Duration;

use crate::delta::{DeltaResult, TieBreak};
use crate::density::Rho;
use crate::error::{DpcError, Result};
use crate::exec::ExecPolicy;
use crate::kernel::Kernel;
use crate::point::{Dataset, Point, PointId};

/// Construction-time statistics of an index, reported by every
/// implementation and consumed by the experiment harness (Tables 3–4 of the
/// paper).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Wall-clock time spent building the index.
    pub construction_time: Duration,
    /// Analytic heap footprint of the index in bytes.
    pub memory_bytes: usize,
    /// Implementation-specific counters (number of tree nodes, bins per
    /// object, truncated list length, …).
    pub counters: Vec<(&'static str, u64)>,
}

impl IndexStats {
    /// Creates stats with the given construction time and memory footprint.
    pub fn new(construction_time: Duration, memory_bytes: usize) -> Self {
        IndexStats {
            construction_time,
            memory_bytes,
            counters: Vec::new(),
        }
    }

    /// Adds an implementation-specific counter (builder style).
    pub fn with_counter(mut self, name: &'static str, value: u64) -> Self {
        self.counters.push((name, value));
        self
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// An index over a dataset that can answer the DPC ρ- and δ-queries for any
/// cut-off distance.
///
/// Implementations must agree on the exact semantics defined in
/// [`crate::density`] and [`crate::delta`]:
///
/// * `ρ(p)` counts *other* points strictly within `dc`;
/// * "denser" is the total order of [`DensityOrder`](crate::DensityOrder)
///   with the index's [`tie_break`](DpcIndex::tie_break) rule;
/// * the global peak gets `µ = None` and `δ` = max distance to any point.
///
/// Exact indices (List, CH, Quadtree, R-tree) return results identical to the
/// naive baseline. Approximate indices (RN-List with threshold `τ`) may
/// return a clipped `δ` for points whose dependent neighbour is farther than
/// `τ`; see `dpc-list-index` for details.
pub trait DpcIndex {
    /// Short, stable name used in reports and plots (e.g. `"list"`,
    /// `"ch"`, `"quadtree"`, `"rtree"`).
    fn name(&self) -> &'static str;

    /// The dataset the index was built over.
    ///
    /// The clustering pipeline needs the raw points for the assignment step
    /// (nearest-centre fallback, halo computation), so every index keeps a
    /// copy of — or a handle to — its dataset. Relative to the index payload
    /// this is negligible.
    fn dataset(&self) -> &Dataset;

    /// Number of indexed points.
    fn len(&self) -> usize {
        self.dataset().len()
    }

    /// True when the index covers no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Computes the local density of every point for the cut-off `dc`.
    ///
    /// Returns [`DpcError::InvalidParameter`] when `dc` is not a positive
    /// finite number.
    fn rho(&self, dc: f64) -> Result<Vec<Rho>>;

    /// Computes `δ` and `µ` for every point, given per-point densities
    /// previously obtained from [`rho`](DpcIndex::rho).
    ///
    /// `dc` is passed through because approximate indices need it to decide
    /// whether a truncated neighbourhood is sufficient.
    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult>;

    /// Runs the ρ-query and δ-query back to back.
    fn rho_delta(&self, dc: f64) -> Result<(Vec<Rho>, DeltaResult)> {
        let rho = self.rho(dc)?;
        let delta = self.delta(dc, &rho)?;
        Ok((rho, delta))
    }

    /// [`rho`](DpcIndex::rho) under an explicit [`ExecPolicy`].
    ///
    /// Implementations that support the parallel query engine override this;
    /// the default ignores the policy and runs the sequential query, so the
    /// result is identical either way (parallelism is a pure acceleration,
    /// never a semantic change).
    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        let _ = policy;
        self.rho(dc)
    }

    /// [`delta`](DpcIndex::delta) under an explicit [`ExecPolicy`].
    ///
    /// Same contract as [`rho_with_policy`](DpcIndex::rho_with_policy):
    /// bit-identical results at every thread count.
    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        let _ = policy;
        self.delta(dc, rho)
    }

    /// Runs both queries back to back under an explicit [`ExecPolicy`].
    fn rho_delta_with_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        let rho = self.rho_with_policy(dc, policy)?;
        let delta = self.delta_with_policy(dc, &rho, policy)?;
        Ok((rho, delta))
    }

    /// [`rho`](DpcIndex::rho) under an explicit density [`Kernel`] and
    /// [`ExecPolicy`].
    ///
    /// For [`Kernel::Cutoff`] this **is**
    /// [`rho_with_policy`](DpcIndex::rho_with_policy) — same code path,
    /// bit-identical results.
    /// For weighted kernels the default falls back to the canonical
    /// brute-force scan ([`weighted_rho_scan`]); indices whose structure can
    /// enumerate the `dc`-neighbourhood override this with an accelerated
    /// traversal that must reproduce the scan bit-for-bit (same ascending-id
    /// summation order; see [`crate::kernel`]).
    fn rho_kernel_with_policy(
        &self,
        dc: f64,
        kernel: Kernel,
        policy: ExecPolicy,
    ) -> Result<Vec<Rho>> {
        if kernel.is_cutoff() {
            return self.rho_with_policy(dc, policy);
        }
        weighted_rho_scan(self.dataset(), dc, kernel, policy)
    }

    /// [`rho`](DpcIndex::rho) under an explicit density [`Kernel`],
    /// sequentially.
    fn rho_kernel(&self, dc: f64, kernel: Kernel) -> Result<Vec<Rho>> {
        self.rho_kernel_with_policy(dc, kernel, ExecPolicy::Sequential)
    }

    /// Runs the kernel-weighted ρ-query and the δ-query back to back.
    ///
    /// The δ-query is kernel-agnostic: it only consumes the densities through
    /// the total order, so every index's accelerated δ traversal works
    /// unchanged on weighted densities.
    fn rho_delta_kernel_with_policy(
        &self,
        dc: f64,
        kernel: Kernel,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        let rho = self.rho_kernel_with_policy(dc, kernel, policy)?;
        let delta = self.delta_with_policy(dc, &rho, policy)?;
        Ok((rho, delta))
    }

    /// Runs both queries under an explicit [`Kernel`] and [`ExecPolicy`],
    /// reporting query telemetry to `rec`.
    ///
    /// For [`Kernel::Cutoff`] this delegates to
    /// [`rho_delta_observed`](DpcIndex::rho_delta_observed) — the exact
    /// pre-existing instrumented path. For weighted kernels the default runs
    /// the kernel ρ-query (unrecorded fallback unless overridden) followed by
    /// the policy δ-query; results are bit-identical with or without the
    /// recorder.
    fn rho_delta_kernel_observed(
        &self,
        dc: f64,
        kernel: Kernel,
        policy: ExecPolicy,
        rec: &dyn dpc_obs::Recorder,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        if kernel.is_cutoff() {
            return self.rho_delta_observed(dc, policy, rec);
        }
        self.rho_delta_kernel_with_policy(dc, kernel, policy)
    }

    /// Runs both queries under an explicit [`ExecPolicy`], reporting query
    /// telemetry (per-worker chunk timings, traversal statistics) to `rec`.
    ///
    /// The default ignores the recorder and delegates to
    /// [`rho_delta_with_policy`](DpcIndex::rho_delta_with_policy); indices
    /// wired into the `dpc-obs` layer override this. The results must be
    /// bit-identical regardless of the recorder — observability is never a
    /// semantic change.
    fn rho_delta_observed(
        &self,
        dc: f64,
        policy: ExecPolicy,
        rec: &dyn dpc_obs::Recorder,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        let _ = rec;
        self.rho_delta_with_policy(dc, policy)
    }

    /// Analytic heap footprint of the index in bytes.
    fn memory_bytes(&self) -> usize;

    /// Construction statistics recorded while building the index.
    fn stats(&self) -> IndexStats;

    /// The tie-break rule this index uses for the density order.
    fn tie_break(&self) -> TieBreak {
        TieBreak::SmallerIdDenser
    }

    /// Whether the index guarantees results identical to the naive baseline
    /// (`true`) or may trade accuracy for memory (`false`).
    fn is_exact(&self) -> bool {
        true
    }
}

/// One mutation of an epoch batch, consumed by
/// [`UpdatableIndex::apply_batch`].
///
/// A batch is an ordered sequence of these: the streaming engine translates
/// a whole epoch of inserts and expiries into `BatchOp`s (resolving handles
/// to the dense ids they hold *at execution time*) and hands them to the
/// index in one call, so the index can amortise its internal maintenance
/// triggers over the epoch instead of paying them per update.
///
/// ```
/// use dpc_core::naive_reference::NaiveReferenceIndex;
/// use dpc_core::{BatchOp, Dataset, DpcIndex, Point, UpdatableIndex};
///
/// let data = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0)]);
/// let mut index = NaiveReferenceIndex::build(&data);
/// // Insert two points, then swap-remove the point at dense id 0: the
/// // default implementation replays the ops through insert()/remove().
/// index
///     .apply_batch(&[
///         BatchOp::Insert(Point::new(2.0, 2.0)),
///         BatchOp::Insert(Point::new(3.0, 3.0)),
///         BatchOp::Remove(0),
///     ])
///     .unwrap();
/// assert_eq!(index.len(), 3);
/// // Swap-remove semantics: the last point (3,3) was renamed to id 0.
/// assert_eq!(index.dataset().point(0), Point::new(3.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchOp {
    /// Append a point (its id becomes the dataset length before the op).
    Insert(Point),
    /// Swap-remove the point at this dense id (resolved against the dataset
    /// state at the moment the op executes, mid-batch).
    Remove(PointId),
}

/// An index that supports online point insertion and deletion, plus the
/// ε-range query the streaming engine uses to find the *affected set* of an
/// update.
///
/// This is the seam behind `dpc-stream`'s incremental clustering: inserting
/// or deleting a point `p` only changes `ρ` for points within `dc` of `p`
/// (the locality property the paper's indexes already exploit for batch
/// queries), so an updatable index lets `ρ` be *maintained* instead of
/// recomputed — the same insight as the parallel-exact and k-d-tree DPC
/// follow-ups ("Faster Parallel Exact Density Peaks Clustering", Huang, Yu &
/// Shun 2023; Shan et al. 2022).
///
/// ## Contract
///
/// * The index's [`dataset`](DpcIndex::dataset) mirrors the mutations:
///   [`insert`](UpdatableIndex::insert) appends (new id = old `len()`),
///   [`remove`](UpdatableIndex::remove) uses *swap-remove* semantics exactly
///   like [`Dataset::swap_remove`] — the last point is renamed to the removed
///   id, and the old id of the moved point is returned so callers can fix up
///   external references.
/// * After any sequence of updates, every [`DpcIndex`] query must return
///   exactly what a freshly built index over the same dataset would return.
///   (Internal bookkeeping such as node bounding boxes may be *conservative*
///   after deletions — correct but less tight — as long as query results are
///   unchanged.)
/// * [`eps_neighbors`](UpdatableIndex::eps_neighbors) takes a *location*, not
///   an id, so it can be asked about a point before it is inserted or after
///   it is removed. It returns ids in ascending order.
pub trait UpdatableIndex: DpcIndex {
    /// Inserts a point, returning its id (the previous `len()`).
    ///
    /// Returns [`DpcError::InvalidPoint`] for non-finite coordinates.
    fn insert(&mut self, p: Point) -> Result<PointId>;

    /// Removes the point with the given id via swap-remove.
    ///
    /// Returns the old id of the point that was moved into the hole
    /// (`Some(len - 1)`), or `None` when the last point was removed. Errors
    /// when `id` is out of range.
    fn remove(&mut self, id: PointId) -> Result<Option<PointId>>;

    /// Applies a whole epoch of mutations in order.
    ///
    /// Semantically this is exactly a loop over [`insert`](Self::insert) and
    /// [`remove`](Self::remove) — the default implementation *is* that loop,
    /// and every override must leave the dataset in the identical state
    /// (same points at the same dense ids; the id effects of each op are
    /// deterministic: an insert lands at the current length, a remove renames
    /// the last point into the hole). What an override **may** change is the
    /// *internal* structural maintenance: amortised triggers such as the k-d
    /// tree's scapegoat/dead-fraction rebuilds or the R-tree's forced
    /// reinsertion round are allowed to fire **once per batch** instead of
    /// once per op, as long as every [`DpcIndex`] query still returns exactly
    /// what a freshly built index over the final dataset would return.
    ///
    /// # Errors and partial progress
    ///
    /// An op that fails (non-finite point, out-of-range id) aborts the batch
    /// at that op; ops already applied **stay applied**, mirroring the
    /// per-update contract. Callers that need atomicity must validate the
    /// batch first (the streaming engine does).
    fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<()> {
        for op in ops {
            match *op {
                BatchOp::Insert(p) => {
                    self.insert(p)?;
                }
                BatchOp::Remove(id) => {
                    self.remove(id)?;
                }
            }
        }
        Ok(())
    }

    /// Replaces the index's contents with `dataset` in one **bulk load** —
    /// the fast path behind the streaming engine's rebuild commits.
    ///
    /// The caller (see `dpc-stream`'s rebuild commit path) materialises the
    /// epoch's final dataset itself — applying the batch with the exact
    /// per-update id semantics, so the dataset's points, ids *and* its
    /// mutation [`version`](Dataset::version) already carry the same state an
    /// in-place [`apply_batch`](Self::apply_batch) would have produced — and
    /// hands it over here. Afterwards every [`DpcIndex`] query must return
    /// exactly what a freshly built index over `dataset` would return, and
    /// [`dataset`](DpcIndex::dataset) must expose the adopted points at the
    /// same dense ids. Implementations should adopt `dataset` **verbatim**
    /// (including its version) and rebuild their structure with their bulk
    /// constructor: construction is `O(n log n)`-ish where incremental
    /// maintenance of a churned structure is not, which is what makes rebuild
    /// a genuine per-epoch alternative instead of a penalty box.
    ///
    /// The default implementation is the portable slow path — evict
    /// everything, re-insert every point — which leaves the same points at
    /// the same ids but pays per-update maintenance `old_len + new_len` times
    /// and advances the dataset version by that many mutations instead of
    /// adopting `dataset`'s version. Every in-tree engine overrides it.
    fn rebuild_from(&mut self, dataset: Dataset) -> Result<()> {
        while self.len() > 0 {
            self.remove(self.len() - 1)?;
        }
        for (_, p) in dataset.iter() {
            self.insert(p)?;
        }
        Ok(())
    }

    /// Ids of all points strictly within `eps` of `center`, ascending.
    ///
    /// Strictness matches the ρ definition (`dist < eps`), so
    /// `eps_neighbors(point(p), dc)` returns exactly the points whose ρ a
    /// mutation of `p` touches (including `p` itself when it is indexed —
    /// its distance to its own location is 0). `eps` is validated like a
    /// cut-off distance ([`validate_dc`]).
    fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>>;

    /// Counters describing the amortised structural maintenance the index
    /// has performed so far (subtree rebuilds, forced reinsertions, node
    /// merges, …).
    ///
    /// Indexes that keep themselves healthy through occasional restructuring
    /// expose their triggers here so the test harness can assert they
    /// actually fire under adversarial workloads (a rebuild threshold that
    /// never trips is dead code, and a rebuild bug should fail as a counter
    /// assertion, not as a distant label diff). Indexes with no amortised
    /// maintenance return an empty list.
    fn maintenance_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Checks the index's internal structural invariants (bounding-box
    /// containment, subtree counts, id bookkeeping), panicking with a
    /// descriptive message on the first violation.
    ///
    /// This is a test/debug hook: the generic streaming equivalence harness
    /// calls it after every mutation so a broken rebuild fails loudly at the
    /// step that corrupted the structure. The default does nothing (the
    /// brute-force baselines have no structure to check).
    fn check_invariants(&self) {}
}

/// Brute-force ε-range scan over the structure-of-arrays coordinate slices:
/// ids of all points strictly within `eps` of `center`, ascending.
///
/// This is the shared reference implementation of
/// [`UpdatableIndex::eps_neighbors`] used by the index-free baselines
/// (`NaiveReferenceIndex`, `LeanDpc`); real indexes answer the same query
/// through their structure. Keeping one copy pins the contract — strict
/// `dist < eps`, same validation as a cut-off distance — in one place.
pub fn eps_neighbors_scan(dataset: &Dataset, center: Point, eps: f64) -> Result<Vec<PointId>> {
    validate_dc(eps)?;
    let (xs, ys) = dataset.coord_slices();
    let eps2 = eps * eps;
    Ok((0..dataset.len())
        .filter(|&q| {
            let (dx, dy) = (xs[q] - center.x, ys[q] - center.y);
            dx * dx + dy * dy < eps2
        })
        .collect())
}

/// Canonical kernel-weighted ρ scan: for every point `p`, the sum of
/// `kernel` weights over the *other* points strictly within `dc`, accumulated
/// in **ascending neighbour-id order** (the workspace-wide canonical
/// summation order for weighted densities; see [`crate::kernel`]).
///
/// This is the reference implementation every accelerated weighted traversal
/// must match bit-for-bit, and the fallback behind
/// [`DpcIndex::rho_kernel_with_policy`]. Parallelism partitions the *output*
/// points across workers; each point's sum is still accumulated in ascending
/// id order, so results are bit-identical at every thread count.
pub fn weighted_rho_scan(
    dataset: &Dataset,
    dc: f64,
    kernel: Kernel,
    policy: ExecPolicy,
) -> Result<Vec<Rho>> {
    validate_dc(dc)?;
    kernel.validate()?;
    let n = dataset.len();
    let (xs, ys) = dataset.coord_slices();
    let dc2 = dc * dc;
    let mut rho = vec![0.0 as Rho; n];
    crate::exec::fill_slice(
        &mut rho,
        policy,
        || (),
        |i, ()| {
            let (xi, yi) = (xs[i], ys[i]);
            let mut mass = 0.0f64;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let (dx, dy) = (xs[j] - xi, ys[j] - yi);
                let d2 = dx * dx + dy * dy;
                if d2 < dc2 {
                    mass += kernel.weight_from_sq(d2);
                }
            }
            mass
        },
    );
    Ok(rho)
}

/// Validates a cut-off distance, shared by all index implementations.
///
/// Besides rejecting non-positive and non-finite values, this rejects
/// cut-offs whose square leaves the finite f64 range: the sqrt-free hot
/// loops compare squared distances against `dc²` (see [`crate::metric`]),
/// so an *underflowed* square (`dc` ≲ 1.5e-154, `dc²` rounding to 0) would
/// silently classify every point — including coincident ones — as outside
/// the neighbourhood, and an *overflowed* square (`dc` ≳ 1.3e154, `dc²`
/// rounding to +∞) would make the comparison against equally-overflowed
/// pairwise distances undercount. No meaningful dataset has a cut-off within
/// 150 orders of magnitude of either limit.
pub fn validate_dc(dc: f64) -> Result<()> {
    if !(dc.is_finite() && dc > 0.0) {
        return Err(DpcError::invalid_parameter(
            "dc",
            format!(
                "cut-off distance must be a positive finite number \
                 (valid range: approx. 1.5e-154 to 1.3e154), got {dc}"
            ),
        ));
    }
    if dc * dc < f64::MIN_POSITIVE {
        return Err(DpcError::invalid_parameter(
            "dc",
            format!(
                "cut-off distance {dc:e} is below the minimum of approx. 1.5e-154 \
                 (valid range: approx. 1.5e-154 to 1.3e154): its square underflows \
                 f64, which would break the squared-distance comparisons"
            ),
        ));
    }
    if !(dc * dc).is_finite() {
        return Err(DpcError::invalid_parameter(
            "dc",
            format!(
                "cut-off distance {dc:e} is above the maximum of approx. 1.3e154 \
                 (valid range: approx. 1.5e-154 to 1.3e154): its square overflows \
                 f64, which would break the squared-distance comparisons"
            ),
        ));
    }
    Ok(())
}

/// Validates that a `rho` slice covers the whole dataset, shared by all index
/// implementations.
pub fn validate_rho_len(rho: &[Rho], expected: usize) -> Result<()> {
    if rho.len() != expected {
        return Err(DpcError::LengthMismatch {
            expected,
            actual: rho.len(),
            what: "rho slice passed to delta query",
        });
    }
    Ok(())
}

/// Convenience used by index constructors that want to fail early on invalid
/// datasets (currently only emptiness is rejected lazily, at query time).
pub fn dataset_len(dataset: &Dataset) -> usize {
    dataset.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_dc_accepts_positive_finite() {
        assert!(validate_dc(0.1).is_ok());
        assert!(validate_dc(1e9).is_ok());
    }

    #[test]
    fn validate_dc_rejects_bad_values() {
        assert!(validate_dc(0.0).is_err());
        assert!(validate_dc(-1.0).is_err());
        assert!(validate_dc(f64::NAN).is_err());
        assert!(validate_dc(f64::INFINITY).is_err());
    }

    #[test]
    fn validate_dc_rejects_cutoffs_whose_square_underflows() {
        // 1e-170 is positive and finite but (1e-170)² == 0.0 in f64.
        assert!(validate_dc(1e-170).is_err());
        assert!(validate_dc(1e-160).is_err());
        // Just above the underflow limit is fine.
        assert!(validate_dc(1e-150).is_ok());
    }

    #[test]
    fn validate_dc_rejects_cutoffs_whose_square_overflows() {
        // 1e200 is positive and finite but (1e200)² == +inf in f64.
        assert!(validate_dc(1e200).is_err());
        assert!(validate_dc(f64::MAX).is_err());
        let msg = validate_dc(1e200).unwrap_err().to_string();
        assert!(msg.contains("1e200"), "value missing in: {msg}");
        assert!(msg.contains("1.3e154"), "range missing in: {msg}");
        // Just below the overflow limit is fine.
        assert!(validate_dc(1e150).is_ok());
    }

    #[test]
    fn validate_dc_errors_name_the_value_and_the_valid_range() {
        // Out-of-domain values: the message must quote the offending value
        // and state the valid range.
        for bad in [-3.25f64, 0.0, f64::NAN, f64::NEG_INFINITY] {
            let msg = validate_dc(bad).unwrap_err().to_string();
            assert!(msg.contains(&format!("{bad}")), "value missing in: {msg}");
            assert!(msg.contains("1.5e-154"), "range missing in: {msg}");
        }
        // Underflowing values: same requirements through the other branch.
        let msg = validate_dc(1e-170).unwrap_err().to_string();
        assert!(msg.contains("1e-170"), "value missing in: {msg}");
        assert!(msg.contains("1.5e-154"), "range missing in: {msg}");
    }

    /// A delegating wrapper that deliberately does NOT override
    /// `rebuild_from`, pinning the default evict-and-reinsert path.
    struct NoOverride(crate::naive_reference::NaiveReferenceIndex);

    impl DpcIndex for NoOverride {
        fn name(&self) -> &'static str {
            "no-override"
        }
        fn dataset(&self) -> &Dataset {
            self.0.dataset()
        }
        fn rho(&self, dc: f64) -> Result<Vec<crate::density::Rho>> {
            self.0.rho(dc)
        }
        fn delta(&self, dc: f64, rho: &[crate::density::Rho]) -> Result<DeltaResult> {
            self.0.delta(dc, rho)
        }
        fn memory_bytes(&self) -> usize {
            self.0.memory_bytes()
        }
        fn stats(&self) -> IndexStats {
            self.0.stats()
        }
    }

    impl UpdatableIndex for NoOverride {
        fn insert(&mut self, p: Point) -> Result<PointId> {
            self.0.insert(p)
        }
        fn remove(&mut self, id: PointId) -> Result<Option<PointId>> {
            self.0.remove(id)
        }
        fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>> {
            self.0.eps_neighbors(center, eps)
        }
    }

    #[test]
    fn default_rebuild_from_replays_the_dataset_in_id_order() {
        let old = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let new = Dataset::from_coords(vec![(5.0, 5.0), (6.0, 6.0)]);
        let mut index = NoOverride(crate::naive_reference::NaiveReferenceIndex::build(&old));
        index.rebuild_from(new.clone()).unwrap();
        assert_eq!(index.len(), 2);
        assert_eq!(index.dataset().points(), new.points());
        // The default is a mutation replay, so the version advances by
        // old_len + new_len on top of the index's own dataset — overrides
        // instead adopt the passed dataset (and its version) verbatim.
        assert_eq!(index.dataset().version(), 3 + 2);
        // Queries match a fresh build over the adopted dataset.
        let fresh = crate::naive_reference::NaiveReferenceIndex::build(&new);
        assert_eq!(index.rho_delta(2.0).unwrap(), fresh.rho_delta(2.0).unwrap());
    }

    #[test]
    fn validate_rho_len_checks_length() {
        assert!(validate_rho_len(&[1.0, 2.0, 3.0], 3).is_ok());
        assert!(validate_rho_len(&[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn weighted_rho_scan_cutoff_matches_integer_counts() {
        let data = Dataset::from_coords(vec![
            (0.0, 0.0),
            (0.5, 0.0),
            (0.0, 0.5),
            (5.0, 5.0),
            (5.2, 5.0),
        ]);
        let rho = weighted_rho_scan(
            &data,
            1.0,
            crate::kernel::Kernel::Cutoff,
            ExecPolicy::Sequential,
        )
        .unwrap();
        assert_eq!(rho, vec![2.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn weighted_rho_scan_gaussian_weights_and_truncates() {
        let data = Dataset::from_coords(vec![(0.0, 0.0), (0.5, 0.0), (2.0, 0.0)]);
        let k = crate::kernel::Kernel::gaussian(1.0);
        let rho = weighted_rho_scan(&data, 1.0, k, ExecPolicy::Sequential).unwrap();
        let w = k.weight(0.5);
        // Point 2 is outside everyone's dc: weight truncates to exactly 0.
        assert_eq!(rho[2], 0.0);
        assert_eq!(rho[0], w);
        assert_eq!(rho[1], w);
        // Parallel partitioning is bit-identical.
        let rho_par = weighted_rho_scan(&data, 1.0, k, ExecPolicy::Threads(4)).unwrap();
        assert_eq!(rho, rho_par);
    }

    #[test]
    fn weighted_rho_scan_validates_dc_and_kernel() {
        let data = Dataset::from_coords(vec![(0.0, 0.0)]);
        let k = crate::kernel::Kernel::gaussian(1.0);
        assert!(weighted_rho_scan(&data, 0.0, k, ExecPolicy::Sequential).is_err());
        let bad = crate::kernel::Kernel::gaussian(-1.0);
        assert!(weighted_rho_scan(&data, 1.0, bad, ExecPolicy::Sequential).is_err());
    }

    #[test]
    fn index_stats_counters() {
        let s = IndexStats::new(Duration::from_millis(5), 1024)
            .with_counter("nodes", 17)
            .with_counter("height", 3);
        assert_eq!(s.counter("nodes"), Some(17));
        assert_eq!(s.counter("height"), Some(3));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.memory_bytes, 1024);
    }
}
