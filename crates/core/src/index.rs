//! The [`DpcIndex`] trait — the seam between the clustering pipeline and the
//! concrete index structures.
//!
//! An index is built once over a dataset and can then answer, for *any*
//! cut-off distance `dc`, the two expensive DPC queries:
//!
//! * the **ρ-query**: local density of every point,
//! * the **δ-query**: dependent distance and dependent neighbour of every
//!   point (given the densities).
//!
//! The motivation in the paper is exactly this split: the user typically runs
//! DPC for many `dc` values while searching for a satisfactory clustering, so
//! the index is amortised across runs.

use std::time::Duration;

use crate::delta::{DeltaResult, TieBreak};
use crate::density::Rho;
use crate::error::{DpcError, Result};
use crate::exec::ExecPolicy;
use crate::point::Dataset;

/// Construction-time statistics of an index, reported by every
/// implementation and consumed by the experiment harness (Tables 3–4 of the
/// paper).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Wall-clock time spent building the index.
    pub construction_time: Duration,
    /// Analytic heap footprint of the index in bytes.
    pub memory_bytes: usize,
    /// Implementation-specific counters (number of tree nodes, bins per
    /// object, truncated list length, …).
    pub counters: Vec<(&'static str, u64)>,
}

impl IndexStats {
    /// Creates stats with the given construction time and memory footprint.
    pub fn new(construction_time: Duration, memory_bytes: usize) -> Self {
        IndexStats {
            construction_time,
            memory_bytes,
            counters: Vec::new(),
        }
    }

    /// Adds an implementation-specific counter (builder style).
    pub fn with_counter(mut self, name: &'static str, value: u64) -> Self {
        self.counters.push((name, value));
        self
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// An index over a dataset that can answer the DPC ρ- and δ-queries for any
/// cut-off distance.
///
/// Implementations must agree on the exact semantics defined in
/// [`crate::density`] and [`crate::delta`]:
///
/// * `ρ(p)` counts *other* points strictly within `dc`;
/// * "denser" is the total order of [`DensityOrder`](crate::DensityOrder)
///   with the index's [`tie_break`](DpcIndex::tie_break) rule;
/// * the global peak gets `µ = None` and `δ` = max distance to any point.
///
/// Exact indices (List, CH, Quadtree, R-tree) return results identical to the
/// naive baseline. Approximate indices (RN-List with threshold `τ`) may
/// return a clipped `δ` for points whose dependent neighbour is farther than
/// `τ`; see `dpc-list-index` for details.
pub trait DpcIndex {
    /// Short, stable name used in reports and plots (e.g. `"list"`,
    /// `"ch"`, `"quadtree"`, `"rtree"`).
    fn name(&self) -> &'static str;

    /// The dataset the index was built over.
    ///
    /// The clustering pipeline needs the raw points for the assignment step
    /// (nearest-centre fallback, halo computation), so every index keeps a
    /// copy of — or a handle to — its dataset. Relative to the index payload
    /// this is negligible.
    fn dataset(&self) -> &Dataset;

    /// Number of indexed points.
    fn len(&self) -> usize {
        self.dataset().len()
    }

    /// True when the index covers no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Computes the local density of every point for the cut-off `dc`.
    ///
    /// Returns [`DpcError::InvalidParameter`] when `dc` is not a positive
    /// finite number.
    fn rho(&self, dc: f64) -> Result<Vec<Rho>>;

    /// Computes `δ` and `µ` for every point, given per-point densities
    /// previously obtained from [`rho`](DpcIndex::rho).
    ///
    /// `dc` is passed through because approximate indices need it to decide
    /// whether a truncated neighbourhood is sufficient.
    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult>;

    /// Runs the ρ-query and δ-query back to back.
    fn rho_delta(&self, dc: f64) -> Result<(Vec<Rho>, DeltaResult)> {
        let rho = self.rho(dc)?;
        let delta = self.delta(dc, &rho)?;
        Ok((rho, delta))
    }

    /// [`rho`](DpcIndex::rho) under an explicit [`ExecPolicy`].
    ///
    /// Implementations that support the parallel query engine override this;
    /// the default ignores the policy and runs the sequential query, so the
    /// result is identical either way (parallelism is a pure acceleration,
    /// never a semantic change).
    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        let _ = policy;
        self.rho(dc)
    }

    /// [`delta`](DpcIndex::delta) under an explicit [`ExecPolicy`].
    ///
    /// Same contract as [`rho_with_policy`](DpcIndex::rho_with_policy):
    /// bit-identical results at every thread count.
    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        let _ = policy;
        self.delta(dc, rho)
    }

    /// Runs both queries back to back under an explicit [`ExecPolicy`].
    fn rho_delta_with_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        let rho = self.rho_with_policy(dc, policy)?;
        let delta = self.delta_with_policy(dc, &rho, policy)?;
        Ok((rho, delta))
    }

    /// Analytic heap footprint of the index in bytes.
    fn memory_bytes(&self) -> usize;

    /// Construction statistics recorded while building the index.
    fn stats(&self) -> IndexStats;

    /// The tie-break rule this index uses for the density order.
    fn tie_break(&self) -> TieBreak {
        TieBreak::SmallerIdDenser
    }

    /// Whether the index guarantees results identical to the naive baseline
    /// (`true`) or may trade accuracy for memory (`false`).
    fn is_exact(&self) -> bool {
        true
    }
}

/// Validates a cut-off distance, shared by all index implementations.
///
/// Besides rejecting non-positive and non-finite values, this rejects
/// cut-offs so small that `dc²` underflows below `f64::MIN_POSITIVE`
/// (`dc` ≲ 1.5e-154): the sqrt-free hot loops compare squared distances
/// against `dc²` (see [`crate::metric`]), and an underflowed threshold would
/// silently classify *every* point — including coincident ones — as outside
/// the neighbourhood. No meaningful dataset has a cut-off within 150 orders
/// of magnitude of that limit.
pub fn validate_dc(dc: f64) -> Result<()> {
    if !(dc.is_finite() && dc > 0.0) {
        return Err(DpcError::invalid_parameter(
            "dc",
            format!("cut-off distance must be a positive finite number, got {dc}"),
        ));
    }
    if dc * dc < f64::MIN_POSITIVE {
        return Err(DpcError::invalid_parameter(
            "dc",
            format!(
                "cut-off distance {dc} is too small: its square underflows f64, \
                 which would break the squared-distance comparisons (minimum ≈ 1.5e-154)"
            ),
        ));
    }
    Ok(())
}

/// Validates that a `rho` slice covers the whole dataset, shared by all index
/// implementations.
pub fn validate_rho_len(rho: &[Rho], expected: usize) -> Result<()> {
    if rho.len() != expected {
        return Err(DpcError::LengthMismatch {
            expected,
            actual: rho.len(),
            what: "rho slice passed to delta query",
        });
    }
    Ok(())
}

/// Convenience used by index constructors that want to fail early on invalid
/// datasets (currently only emptiness is rejected lazily, at query time).
pub fn dataset_len(dataset: &Dataset) -> usize {
    dataset.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_dc_accepts_positive_finite() {
        assert!(validate_dc(0.1).is_ok());
        assert!(validate_dc(1e9).is_ok());
    }

    #[test]
    fn validate_dc_rejects_bad_values() {
        assert!(validate_dc(0.0).is_err());
        assert!(validate_dc(-1.0).is_err());
        assert!(validate_dc(f64::NAN).is_err());
        assert!(validate_dc(f64::INFINITY).is_err());
    }

    #[test]
    fn validate_dc_rejects_cutoffs_whose_square_underflows() {
        // 1e-170 is positive and finite but (1e-170)² == 0.0 in f64.
        assert!(validate_dc(1e-170).is_err());
        assert!(validate_dc(1e-160).is_err());
        // Just above the underflow limit is fine.
        assert!(validate_dc(1e-150).is_ok());
    }

    #[test]
    fn validate_rho_len_checks_length() {
        assert!(validate_rho_len(&[1, 2, 3], 3).is_ok());
        assert!(validate_rho_len(&[1, 2], 3).is_err());
    }

    #[test]
    fn index_stats_counters() {
        let s = IndexStats::new(Duration::from_millis(5), 1024)
            .with_counter("nodes", 17)
            .with_counter("height", 3);
        assert_eq!(s.counter("nodes"), Some(17));
        assert_eq!(s.counter("height"), Some(3));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.memory_bytes, 1024);
    }
}
