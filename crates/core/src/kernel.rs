//! Pluggable density kernels: how much a neighbour at distance `d < dc`
//! contributes to a point's local density ρ.
//!
//! The source paper defines ρ as a **hard cut-off count**: every neighbour
//! strictly within `dc` contributes exactly 1. That is [`Kernel::Cutoff`],
//! the default, and it stays bit-identical to the original integer-count
//! semantics (a sum of exact `1.0`s over at most 2⁵³ neighbours is an exact
//! integer in f64). The smooth kernels — the default choice for real data in
//! both exemplar implementations this workspace tracks — weight closer
//! neighbours more:
//!
//! * [`Kernel::Gaussian`]: `w(d) = exp(−(d/h)²)` — the classic gaussian
//!   kernel of the original DPC paper's supplement, computable from squared
//!   distances without a square root;
//! * [`Kernel::Exponential`]: `w(d) = exp(−d/h)` — heavier tail, one square
//!   root per pair.
//!
//! All kernels here are **truncated at `dc`**: a pair at distance `≥ dc`
//! contributes exactly 0, whatever the kernel. Truncation is what preserves
//! the locality property every index and the streaming engine's affected-set
//! machinery exploit — an update can only change the ρ of points within `dc`
//! of it — at the cost of a (documented) discontinuity of size `w(dc)` at
//! the neighbourhood boundary. Choose `h` comfortably below `dc` (the usual
//! choice is `h = dc`, giving a boundary weight of `e⁻¹`/`e⁻¹`).
//!
//! ## Canonical summation order
//!
//! Weighted densities are f64 sums, and f64 addition is not associative, so
//! "the" weighted ρ of a point is only well defined together with a
//! summation order. The workspace-wide convention is **ascending neighbour
//! id**: every implementation — the brute-force scan, the tree traversals
//! (which collect matches and sort by id before summing), and the streaming
//! repair — accumulates contributions in ascending id order, so all of them
//! agree bit-for-bit. [`Kernel::Cutoff`] is insensitive to the order (every
//! contribution is exactly 1.0).

use crate::error::{DpcError, Result};

/// A density kernel: maps a pairwise distance `d < dc` to a contribution
/// weight. See the [module docs](self) for semantics and the canonical
/// summation order.
///
/// ```
/// use dpc_core::Kernel;
///
/// let cutoff = Kernel::Cutoff;
/// assert_eq!(cutoff.weight(0.3), 1.0);
///
/// let gauss = Kernel::Gaussian { bandwidth: 0.5 };
/// assert!(gauss.weight(0.0) == 1.0);
/// assert!(gauss.weight(0.5) < 1.0);
/// assert!(gauss.validate().is_ok());
/// assert!(Kernel::Gaussian { bandwidth: -1.0 }.validate().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Kernel {
    /// The paper-faithful hard cut-off: every neighbour within `dc` counts
    /// exactly 1. Bit-identical to the original integer-count ρ.
    #[default]
    Cutoff,
    /// Truncated gaussian kernel `w(d) = exp(−(d/bandwidth)²)`. Sqrt-free:
    /// evaluated directly from the squared distance.
    Gaussian {
        /// The length scale `h`; typically `dc`.
        bandwidth: f64,
    },
    /// Truncated exponential kernel `w(d) = exp(−d/bandwidth)`.
    Exponential {
        /// The length scale `h`; typically `dc`.
        bandwidth: f64,
    },
}

impl Kernel {
    /// A gaussian kernel with `bandwidth = dc` (the conventional default).
    pub fn gaussian(bandwidth: f64) -> Self {
        Kernel::Gaussian { bandwidth }
    }

    /// An exponential kernel with the given bandwidth.
    pub fn exponential(bandwidth: f64) -> Self {
        Kernel::Exponential { bandwidth }
    }

    /// True for the paper-faithful cut-off kernel.
    #[inline]
    pub fn is_cutoff(&self) -> bool {
        matches!(self, Kernel::Cutoff)
    }

    /// Short stable name (`"cutoff"`, `"gaussian"`, `"exponential"`) used in
    /// CLI flags, bench rows and metric names.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Cutoff => "cutoff",
            Kernel::Gaussian { .. } => "gaussian",
            Kernel::Exponential { .. } => "exponential",
        }
    }

    /// The bandwidth parameter (`None` for the cut-off kernel).
    pub fn bandwidth(&self) -> Option<f64> {
        match *self {
            Kernel::Cutoff => None,
            Kernel::Gaussian { bandwidth } | Kernel::Exponential { bandwidth } => Some(bandwidth),
        }
    }

    /// Contribution weight of a neighbour at **squared** distance `d2 < dc²`.
    ///
    /// This is the hot-loop entry point: the cut-off and gaussian kernels
    /// never take a square root.
    #[inline]
    pub fn weight_from_sq(&self, d2: f64) -> f64 {
        match *self {
            Kernel::Cutoff => 1.0,
            Kernel::Gaussian { bandwidth } => (-(d2 / (bandwidth * bandwidth))).exp(),
            Kernel::Exponential { bandwidth } => (-(d2.sqrt() / bandwidth)).exp(),
        }
    }

    /// Contribution weight of a neighbour at distance `d < dc`.
    #[inline]
    pub fn weight(&self, d: f64) -> f64 {
        match *self {
            Kernel::Cutoff => 1.0,
            _ => self.weight_from_sq(d * d),
        }
    }

    /// Validates the kernel's parameters.
    ///
    /// Bandwidths must be positive and finite. The gaussian kernel evaluates
    /// `exp(−d²/h²)` straight from squared distances, so — exactly like
    /// [`validate_dc`](crate::index::validate_dc) — a bandwidth whose square
    /// underflows f64 (`h` ≲ 1.5e-154, `h²` rounding to 0, every weight
    /// collapsing to `exp(−∞) = 0`) or overflows it (`h` ≳ 1.3e154) is
    /// rejected.
    pub fn validate(&self) -> Result<()> {
        let (name, h) = match *self {
            Kernel::Cutoff => return Ok(()),
            Kernel::Gaussian { bandwidth } => ("gaussian bandwidth", bandwidth),
            Kernel::Exponential { bandwidth } => ("exponential bandwidth", bandwidth),
        };
        if !(h.is_finite() && h > 0.0) {
            return Err(DpcError::invalid_parameter(
                "kernel",
                format!(
                    "{name} must be a positive finite number \
                     (valid range: approx. 1.5e-154 to 1.3e154), got {h}"
                ),
            ));
        }
        if matches!(self, Kernel::Gaussian { .. }) {
            if h * h < f64::MIN_POSITIVE {
                return Err(DpcError::invalid_parameter(
                    "kernel",
                    format!(
                        "{name} {h:e} is below the minimum of approx. 1.5e-154 \
                         (valid range: approx. 1.5e-154 to 1.3e154): its square \
                         underflows f64, which would collapse every gaussian \
                         weight to zero"
                    ),
                ));
            }
            if !(h * h).is_finite() {
                return Err(DpcError::invalid_parameter(
                    "kernel",
                    format!(
                        "{name} {h:e} is above the maximum of approx. 1.3e154 \
                         (valid range: approx. 1.5e-154 to 1.3e154): its square \
                         overflows f64, which would break the squared-distance \
                         weight evaluation"
                    ),
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.bandwidth() {
            None => write!(f, "{}", self.name()),
            Some(h) => write!(f, "{}(h={h})", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_weight_is_always_one() {
        let k = Kernel::Cutoff;
        for d in [0.0, 0.1, 1.0, 1e100] {
            assert_eq!(k.weight(d), 1.0);
            assert_eq!(k.weight_from_sq(d), 1.0);
        }
        assert!(k.is_cutoff());
        assert!(k.validate().is_ok());
        assert_eq!(k.bandwidth(), None);
    }

    #[test]
    fn gaussian_weight_decays_monotonically_from_one() {
        let k = Kernel::gaussian(0.5);
        assert_eq!(k.weight(0.0), 1.0);
        let (w1, w2, w3) = (k.weight(0.1), k.weight(0.3), k.weight(0.5));
        assert!(w1 > w2 && w2 > w3 && w3 > 0.0);
        // w(h) = e^-1.
        assert!((w3 - (-1.0f64).exp()).abs() < 1e-15);
        // weight_from_sq agrees with weight.
        assert_eq!(k.weight_from_sq(0.3 * 0.3), k.weight(0.3));
    }

    #[test]
    fn exponential_weight_decays_monotonically_from_one() {
        let k = Kernel::exponential(2.0);
        assert_eq!(k.weight(0.0), 1.0);
        assert!((k.weight(2.0) - (-1.0f64).exp()).abs() < 1e-15);
        assert!(k.weight(1.0) > k.weight(2.0));
    }

    #[test]
    fn validation_rejects_non_finite_and_non_positive_bandwidths() {
        for h in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let msg = Kernel::gaussian(h).validate().unwrap_err().to_string();
            assert!(msg.contains("1.5e-154"), "range missing in: {msg}");
            assert!(Kernel::exponential(h).validate().is_err());
        }
        // The message quotes the offending value.
        let msg = Kernel::gaussian(-3.5).validate().unwrap_err().to_string();
        assert!(msg.contains("-3.5"), "value missing in: {msg}");
    }

    #[test]
    fn gaussian_validation_guards_the_squared_bandwidth_range() {
        // 1e-170 is positive and finite but its square underflows to 0.
        let msg = Kernel::gaussian(1e-170).validate().unwrap_err().to_string();
        assert!(msg.contains("1e-170"), "value missing in: {msg}");
        assert!(msg.contains("1.5e-154"), "range missing in: {msg}");
        assert!(Kernel::gaussian(1e-160).validate().is_err());
        assert!(Kernel::gaussian(1e-150).validate().is_ok());
        // 1e200 squares to +inf.
        assert!(Kernel::gaussian(1e200).validate().is_err());
        assert!(Kernel::gaussian(1e150).validate().is_ok());
        // The exponential kernel never squares its bandwidth: tiny and huge
        // bandwidths are legal as long as they are positive and finite.
        assert!(Kernel::exponential(1e-170).validate().is_ok());
        assert!(Kernel::exponential(1e200).validate().is_ok());
    }

    #[test]
    fn display_names_the_kernel_and_bandwidth() {
        assert_eq!(Kernel::Cutoff.to_string(), "cutoff");
        assert_eq!(Kernel::gaussian(0.5).to_string(), "gaussian(h=0.5)");
        assert_eq!(Kernel::exponential(2.0).to_string(), "exponential(h=2)");
    }

    #[test]
    fn default_is_the_paper_faithful_cutoff() {
        assert_eq!(Kernel::default(), Kernel::Cutoff);
    }
}
