//! # dpc-core
//!
//! Core model for **Density Peak Clustering** (DPC) and the seam that every
//! index structure in this workspace implements.
//!
//! DPC (Rodriguez & Laio, *Science* 2014) clusters a point set by computing,
//! for every point `p`:
//!
//! * the **local density** `ρ(p)` — the number of other points within the
//!   cut-off distance `dc`, and
//! * the **dependent distance** `δ(p)` — the distance from `p` to its nearest
//!   neighbour of higher density (its *dependent neighbour* `µ(p)`).
//!
//! Cluster centres are the points with both high `ρ` and anomalously large
//! `δ`; every remaining point is assigned to the cluster of its dependent
//! neighbour.
//!
//! The expensive part of DPC is computing `ρ` and `δ` for every point; the
//! paper reproduced by this workspace ("Index-based Solutions for Efficient
//! Density Peak Clustering") accelerates exactly those two queries with list-
//! and tree-based index structures. This crate contains everything that is
//! *independent* of the index choice:
//!
//! * [`Point`], [`Dataset`], [`BoundingBox`] — the data model,
//! * [`Metric`] and the concrete metrics ([`Euclidean`], [`Manhattan`], …),
//! * [`DensityOrder`] — the total order on densities used for `δ`,
//! * [`DpcIndex`] — the trait implemented by every index,
//! * [`ExecPolicy`] and the chunked parallel query engine ([`exec`]),
//! * [`DecisionGraph`] and [`CenterSelection`] — cluster-centre selection,
//! * [`assign_clusters`] / [`Clustering`] — the final assignment step,
//! * [`DpcPipeline`] — an end-to-end convenience wrapper.
//!
//! ## Quick example
//!
//! ```
//! use dpc_core::{Dataset, Point, DpcParams, CenterSelection};
//! use dpc_core::pipeline::cluster_with_index;
//! use dpc_core::naive_reference::NaiveReferenceIndex;
//!
//! // Two well separated blobs of 3 points each.
//! let pts = vec![
//!     Point::new(0.0, 0.0), Point::new(0.1, 0.0), Point::new(0.0, 0.1),
//!     Point::new(9.0, 9.0), Point::new(9.1, 9.0), Point::new(9.0, 9.1),
//! ];
//! let data = Dataset::new(pts);
//! let index = NaiveReferenceIndex::build(&data);
//! let params = DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 });
//! let clustering = cluster_with_index(&index, &params).unwrap();
//! assert_eq!(clustering.num_clusters(), 2);
//! assert_eq!(clustering.label(0), clustering.label(1));
//! assert_ne!(clustering.label(0), clustering.label(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod bbox;
pub mod cluster;
pub mod dc_estimation;
pub mod decision;
pub mod delta;
pub mod density;
pub mod error;
pub mod exec;
pub mod index;
pub mod kernel;
pub mod metric;
pub mod naive_reference;
pub mod params;
pub mod pipeline;
pub mod point;
pub mod snapshot;
pub mod stats;

pub use assign::{assign_clusters, AssignmentOptions};
pub use bbox::BoundingBox;
pub use cluster::{ClusterId, Clustering};
pub use dc_estimation::{estimate_dc, DcEstimation};
pub use decision::{CenterSelection, DecisionGraph};
pub use delta::{DeltaResult, DensityOrder, TieBreak};
pub use density::{DensityEstimate, Rho};
pub use error::{DpcError, Result};
pub use exec::ExecPolicy;
pub use index::{BatchOp, DpcIndex, IndexStats, UpdatableIndex};
pub use kernel::Kernel;
pub use metric::{Chebyshev, Euclidean, Manhattan, Metric, SquaredEuclidean};
pub use params::DpcParams;
pub use pipeline::{cluster_with_index, DpcPipeline, DpcRun};
pub use point::{Dataset, Point, PointId};
pub use snapshot::StateSnapshot;
pub use stats::{MemoryReport, Timer};
