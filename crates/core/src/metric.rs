//! Distance metrics.
//!
//! The paper (and the original DPC algorithm) uses the Euclidean distance on
//! 2-D spatial data. The [`Metric`] trait keeps the rest of the crate generic
//! enough to experiment with other metrics (e.g. Manhattan for grid-like
//! mobility data) while every index in the workspace defaults to
//! [`Euclidean`].
//!
//! ## Where squared distances are safe — and where they are not
//!
//! The hot loops of the workspace avoid square roots wherever the comparison
//! allows it, and this is the one place that documents the rule:
//!
//! * **Safe: the ρ threshold test.** `ρ` counts points with
//!   `dist(p, q) < dc`. Squaring is strictly monotone on non-negative reals,
//!   so `dist < dc ⟺ dist² < dc²` (and
//!   [`validate_dc`](crate::index::validate_dc) rejects degenerate cut-offs
//!   whose square would underflow f64, keeping the squared comparison
//!   well-defined); the baselines and the tree traversals
//!   therefore compare [`Point::distance_squared`] (and
//!   [`BoundingBox::min_dist_squared`](crate::BoundingBox::min_dist_squared) /
//!   [`BoundingBox::max_dist_squared`](crate::BoundingBox::max_dist_squared))
//!   against a precomputed `dc²` and never take a root. The same holds for
//!   any *pure comparison* of two distances from the same query point, e.g.
//!   a nearest-neighbour argmin.
//! * **Unsafe: δ pruning and anything built on the triangle inequality.**
//!   Lemma 2 of the paper prunes a node `N` because
//!   `dmin(p, N) ≤ dist(p, q)` for every `q ∈ N` — a geometric lower bound
//!   that the best-first δ-search compares against the best candidate δ so
//!   far, and that downstream consumers (the decision graph, the RN-List
//!   threshold reasoning of §3.3, halo boundaries) combine *additively* with
//!   other distances. Squared "distance" is not a metric: it violates the
//!   triangle inequality (`d²(a,c) ≰ d²(a,b) + d²(b,c)`), so any bound that
//!   offsets, sums or subtracts distances breaks after squaring. The δ-query
//!   therefore keeps true metric distances throughout, and
//!   [`SquaredEuclidean`] is documented as a comparison-only pseudo-metric.

use crate::point::Point;

/// A distance function over 2-D points.
///
/// Implementations must be *metrics* in the mathematical sense for the index
/// pruning rules to remain correct: non-negative, symmetric, zero only on
/// identical inputs, and satisfying the triangle inequality.
/// [`SquaredEuclidean`] deliberately violates the triangle inequality and is
/// documented as such; it is only meant for nearest-neighbour style
/// comparisons where monotonicity suffices.
pub trait Metric: Send + Sync {
    /// Distance between two points.
    fn distance(&self, a: &Point, b: &Point) -> f64;

    /// Human-readable name of the metric (used in reports).
    fn name(&self) -> &'static str;
}

/// The standard Euclidean (L2) distance. This is the metric used throughout
/// the paper's evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        a.distance(b)
    }

    fn name(&self) -> &'static str {
        "euclidean"
    }
}

/// Squared Euclidean distance.
///
/// Not a metric (no triangle inequality); only useful where distances are
/// compared against each other or against a squared threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Metric for SquaredEuclidean {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        a.distance_squared(b)
    }

    fn name(&self) -> &'static str {
        "squared-euclidean"
    }
}

/// Manhattan (L1) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        (a.x - b.x).abs() + (a.y - b.y).abs()
    }

    fn name(&self) -> &'static str {
        "manhattan"
    }
}

/// Chebyshev (L∞) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn distance(&self, a: &Point, b: &Point) -> f64 {
        (a.x - b.x).abs().max((a.y - b.y).abs())
    }

    fn name(&self) -> &'static str {
        "chebyshev"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Point = Point::new(1.0, 2.0);
    const B: Point = Point::new(4.0, 6.0);

    #[test]
    fn euclidean_matches_point_distance() {
        assert_eq!(Euclidean.distance(&A, &B), 5.0);
        assert_eq!(Euclidean.name(), "euclidean");
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        assert_eq!(SquaredEuclidean.distance(&A, &B), 25.0);
    }

    #[test]
    fn manhattan_sums_axis_distances() {
        assert_eq!(Manhattan.distance(&A, &B), 7.0);
    }

    #[test]
    fn chebyshev_takes_max_axis_distance() {
        assert_eq!(Chebyshev.distance(&A, &B), 4.0);
    }

    #[test]
    fn all_metrics_are_symmetric_and_zero_on_self() {
        let metrics: [&dyn Metric; 4] = [&Euclidean, &SquaredEuclidean, &Manhattan, &Chebyshev];
        for m in metrics {
            assert_eq!(m.distance(&A, &B), m.distance(&B, &A), "{}", m.name());
            assert_eq!(m.distance(&A, &A), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn lp_metric_ordering_on_same_pair() {
        // For any pair: chebyshev <= euclidean <= manhattan.
        let c = Chebyshev.distance(&A, &B);
        let e = Euclidean.distance(&A, &B);
        let m = Manhattan.distance(&A, &B);
        assert!(c <= e && e <= m);
    }
}
