//! A deliberately simple O(n²) reference implementation of the ρ- and
//! δ-queries.
//!
//! This is *not* the paper's baseline (that lives in the `dpc-baseline`
//! crate, with matrix-based, memory-lean and parallel variants); it is the
//! smallest possible implementation of [`DpcIndex`], used as ground truth in
//! unit tests, doctests and property tests throughout the workspace, and as
//! the default index for tiny datasets in examples.

use std::time::Duration;

use crate::delta::{DeltaResult, DensityOrder, TieBreak};
use crate::density::Rho;
use crate::error::Result;
use crate::index::{
    eps_neighbors_scan, validate_dc, validate_rho_len, DpcIndex, IndexStats, UpdatableIndex,
};
use crate::point::{Dataset, Point, PointId};
use crate::stats::Timer;

/// The reference index: stores only a clone of the dataset and answers every
/// query by scanning all pairs.
#[derive(Debug, Clone)]
pub struct NaiveReferenceIndex {
    dataset: Dataset,
    tie: TieBreak,
    stats: IndexStats,
}

impl NaiveReferenceIndex {
    /// "Builds" the reference index (just clones the dataset).
    pub fn build(dataset: &Dataset) -> Self {
        Self::build_with_tie_break(dataset, TieBreak::default())
    }

    /// Builds the reference index with an explicit tie-break rule.
    pub fn build_with_tie_break(dataset: &Dataset, tie: TieBreak) -> Self {
        let timer = Timer::start();
        let dataset = dataset.clone();
        let memory = dataset.memory_bytes();
        let stats = IndexStats::new(timer.elapsed(), memory);
        NaiveReferenceIndex {
            dataset,
            tie,
            stats,
        }
    }
}

impl DpcIndex for NaiveReferenceIndex {
    fn name(&self) -> &'static str {
        "naive-reference"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn len(&self) -> usize {
        self.dataset.len()
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        validate_dc(dc)?;
        let pts = self.dataset.points();
        let n = pts.len();
        let mut rho = vec![0.0 as Rho; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if pts[i].distance(&pts[j]) < dc {
                    rho[i] += 1.0;
                    rho[j] += 1.0;
                }
            }
        }
        Ok(rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let pts = self.dataset.points();
        let n = pts.len();
        let order = DensityOrder::with_tie_break(rho, self.tie);
        let mut result = DeltaResult::unset(n);
        for p in 0..n {
            let mut best = f64::INFINITY;
            let mut best_q = None;
            let mut max_dist = 0.0f64;
            for q in 0..n {
                if q == p {
                    continue;
                }
                let d = pts[p].distance(&pts[q]);
                max_dist = max_dist.max(d);
                if order.is_denser(q, p) && d < best {
                    best = d;
                    best_q = Some(q);
                }
            }
            if best_q.is_some() {
                result.delta[p] = best;
                result.mu[p] = best_q;
            } else {
                // Global peak: δ is the maximum distance to any other point.
                result.delta[p] = max_dist;
                result.mu[p] = None;
            }
        }
        Ok(result)
    }

    fn memory_bytes(&self) -> usize {
        self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            construction_time: self.stats.construction_time.max(Duration::ZERO),
            memory_bytes: self.memory_bytes(),
            counters: self.stats.counters.clone(),
        }
    }

    fn tie_break(&self) -> TieBreak {
        self.tie
    }
}

/// The reference index is trivially updatable: it holds nothing but the
/// dataset, so the mutations delegate straight to [`Dataset`] and the
/// ε-query is a linear scan. This makes it the ground truth for the
/// streaming engine exactly as it is for the batch queries.
impl UpdatableIndex for NaiveReferenceIndex {
    fn insert(&mut self, p: Point) -> Result<PointId> {
        self.dataset.push(p)
    }

    fn remove(&mut self, id: PointId) -> Result<Option<PointId>> {
        self.dataset.swap_remove(id)
    }

    fn rebuild_from(&mut self, dataset: Dataset) -> Result<()> {
        // No derived structure: a bulk load is plain adoption (the caller's
        // version history included).
        self.dataset = dataset;
        Ok(())
    }

    fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>> {
        eps_neighbors_scan(&self.dataset, center, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn two_blobs() -> Dataset {
        Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.0, 0.1),
            Point::new(5.0, 5.0),
            Point::new(5.1, 5.0),
        ])
    }

    #[test]
    fn rho_counts_strictly_within_dc() {
        let data = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let idx = NaiveReferenceIndex::build(&data);
        // dc exactly equal to a pairwise distance must NOT count it.
        let rho = idx.rho(1.0).unwrap();
        assert_eq!(rho, vec![0.0, 0.0, 0.0]);
        let rho = idx.rho(1.0001).unwrap();
        assert_eq!(rho, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn rho_never_counts_self() {
        let data = Dataset::new(vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)]);
        let idx = NaiveReferenceIndex::build(&data);
        // Coincident points: each sees the other but not itself.
        assert_eq!(idx.rho(0.5).unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn delta_of_global_peak_is_max_distance() {
        let data = two_blobs();
        let idx = NaiveReferenceIndex::build(&data);
        let (rho, dres) = idx.rho_delta(0.2).unwrap();
        let order = DensityOrder::new(&rho);
        let peak = order.global_peak().unwrap();
        assert_eq!(dres.mu(peak), None);
        let expected: f64 = (0..data.len())
            .filter(|&q| q != peak)
            .map(|q| data.distance(peak, q))
            .fold(0.0, f64::max);
        assert!((dres.delta(peak) - expected).abs() < 1e-12);
    }

    #[test]
    fn delta_points_to_strictly_denser_neighbours() {
        let data = two_blobs();
        let idx = NaiveReferenceIndex::build(&data);
        let (rho, dres) = idx.rho_delta(0.2).unwrap();
        let order = DensityOrder::new(&rho);
        dres.validate(&order).unwrap();
    }

    #[test]
    fn delta_is_distance_to_mu() {
        let data = two_blobs();
        let idx = NaiveReferenceIndex::build(&data);
        let (_, dres) = idx.rho_delta(0.2).unwrap();
        for p in 0..data.len() {
            if let Some(q) = dres.mu(p) {
                assert!((dres.delta(p) - data.distance(p, q)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn queries_reject_invalid_dc() {
        let idx = NaiveReferenceIndex::build(&two_blobs());
        assert!(idx.rho(0.0).is_err());
        assert!(idx.rho(-2.0).is_err());
        assert!(idx.rho(f64::NAN).is_err());
        assert!(idx.delta(0.0, &[0.0; 5]).is_err());
    }

    #[test]
    fn delta_rejects_wrong_rho_length() {
        let idx = NaiveReferenceIndex::build(&two_blobs());
        assert!(idx.delta(0.5, &[0.0; 3]).is_err());
    }

    #[test]
    fn empty_dataset_yields_empty_results() {
        let idx = NaiveReferenceIndex::build(&Dataset::new(vec![]));
        let (rho, dres) = idx.rho_delta(1.0).unwrap();
        assert!(rho.is_empty());
        assert!(dres.is_empty());
    }

    #[test]
    fn single_point_is_its_own_peak_with_zero_delta() {
        let idx = NaiveReferenceIndex::build(&Dataset::new(vec![Point::new(1.0, 1.0)]));
        let (rho, dres) = idx.rho_delta(1.0).unwrap();
        assert_eq!(rho, vec![0.0]);
        assert_eq!(dres.mu(0), None);
        assert_eq!(dres.delta(0), 0.0);
    }

    #[test]
    fn updatable_impl_matches_a_fresh_build_after_mutations() {
        let mut idx = NaiveReferenceIndex::build(&two_blobs());
        let x = idx.insert(Point::new(0.05, 0.05)).unwrap();
        assert_eq!(x, 5);
        // Removing id 1 renames the last point (5) to 1.
        assert_eq!(idx.remove(1).unwrap(), Some(5));
        let fresh = NaiveReferenceIndex::build(idx.dataset());
        let (r1, d1) = idx.rho_delta(0.2).unwrap();
        let (r2, d2) = fresh.rho_delta(0.2).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn eps_neighbors_is_strict_and_sorted() {
        let data = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.5, 0.0),
        ]);
        let idx = NaiveReferenceIndex::build(&data);
        // Strictly-within: the point at distance exactly 1.0 is excluded.
        assert_eq!(
            idx.eps_neighbors(Point::new(0.0, 0.0), 1.0).unwrap(),
            vec![0, 3]
        );
        assert_eq!(
            idx.eps_neighbors(Point::new(0.0, 0.0), 1.5).unwrap(),
            vec![0, 1, 3]
        );
        assert!(idx.eps_neighbors(Point::origin(), 0.0).is_err());
    }

    #[test]
    fn tie_break_changes_global_peak_for_symmetric_data() {
        // Two coincident pairs: all rho equal, so the peak is decided by ties.
        let data = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
        ]);
        let small = NaiveReferenceIndex::build_with_tie_break(&data, TieBreak::SmallerIdDenser);
        let large = NaiveReferenceIndex::build_with_tie_break(&data, TieBreak::LargerIdDenser);
        let (_, d_small) = small.rho_delta(0.5).unwrap();
        let (_, d_large) = large.rho_delta(0.5).unwrap();
        assert_eq!(d_small.mu(0), None);
        assert_eq!(d_large.mu(3), None);
    }
}
