//! Parameters of a DPC run.

use crate::assign::AssignmentOptions;
use crate::decision::CenterSelection;
use crate::delta::TieBreak;
use crate::error::{DpcError, Result};

/// All parameters needed to turn an index's ρ/δ answers into a clustering.
///
/// The only mandatory parameter is the cut-off distance `dc` — the parameter
/// whose sensitivity motivates the whole paper. Centre selection defaults to
/// the automatic γ-gap heuristic and halo computation is off by default.
#[derive(Debug, Clone, PartialEq)]
pub struct DpcParams {
    /// Cut-off distance defining the density neighbourhood.
    pub dc: f64,
    /// How cluster centres are chosen from the decision graph.
    pub centers: CenterSelection,
    /// Tie-break rule for the density total order.
    pub tie_break: TieBreak,
    /// Assignment options (halo computation).
    pub assignment: AssignmentOptions,
}

impl DpcParams {
    /// Parameters with the given `dc` and defaults for everything else.
    pub fn new(dc: f64) -> Self {
        DpcParams {
            dc,
            centers: CenterSelection::default(),
            tie_break: TieBreak::default(),
            assignment: AssignmentOptions::default(),
        }
    }

    /// Sets the centre-selection strategy.
    pub fn with_centers(mut self, centers: CenterSelection) -> Self {
        self.centers = centers;
        self
    }

    /// Sets the tie-break rule.
    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Enables or disables halo computation.
    pub fn with_halo(mut self, compute_halo: bool) -> Self {
        self.assignment = AssignmentOptions { compute_halo };
        self
    }

    /// Validates the parameters (currently: `dc` must be positive and finite).
    pub fn validate(&self) -> Result<()> {
        if !(self.dc.is_finite() && self.dc > 0.0) {
            return Err(DpcError::invalid_parameter(
                "dc",
                format!(
                    "cut-off distance must be a positive finite number, got {}",
                    self.dc
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let p = DpcParams::new(0.5)
            .with_centers(CenterSelection::TopKGamma { k: 3 })
            .with_tie_break(TieBreak::LargerIdDenser)
            .with_halo(true);
        assert_eq!(p.dc, 0.5);
        assert_eq!(p.centers, CenterSelection::TopKGamma { k: 3 });
        assert_eq!(p.tie_break, TieBreak::LargerIdDenser);
        assert!(p.assignment.compute_halo);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn defaults_are_sensible() {
        let p = DpcParams::new(1.0);
        assert!(!p.assignment.compute_halo);
        assert_eq!(p.tie_break, TieBreak::SmallerIdDenser);
        assert!(matches!(p.centers, CenterSelection::GammaGap { .. }));
    }

    #[test]
    fn validation_rejects_non_positive_dc() {
        assert!(DpcParams::new(0.0).validate().is_err());
        assert!(DpcParams::new(-1.0).validate().is_err());
        assert!(DpcParams::new(f64::NAN).validate().is_err());
    }
}
