//! Parameters of a DPC run.

use crate::assign::AssignmentOptions;
use crate::decision::CenterSelection;
use crate::delta::TieBreak;
use crate::error::Result;
use crate::exec::ExecPolicy;
use crate::kernel::Kernel;

/// All parameters needed to turn an index's ρ/δ answers into a clustering.
///
/// The only mandatory parameter is the cut-off distance `dc` — the parameter
/// whose sensitivity motivates the whole paper. Centre selection defaults to
/// the automatic γ-gap heuristic and halo computation is off by default.
#[derive(Debug, Clone, PartialEq)]
pub struct DpcParams {
    /// Cut-off distance defining the density neighbourhood.
    pub dc: f64,
    /// How cluster centres are chosen from the decision graph.
    pub centers: CenterSelection,
    /// Tie-break rule for the density total order.
    pub tie_break: TieBreak,
    /// Assignment options (halo computation).
    pub assignment: AssignmentOptions,
    /// How the per-point ρ/δ queries are partitioned across threads.
    /// Defaults to [`ExecPolicy::Sequential`] so measurements stay
    /// paper-faithful unless parallelism is explicitly requested.
    pub exec: ExecPolicy,
    /// Density kernel weighting neighbours within `dc`. Defaults to the
    /// paper-faithful [`Kernel::Cutoff`] (every neighbour counts exactly 1).
    pub kernel: Kernel,
}

impl DpcParams {
    /// Parameters with the given `dc` and defaults for everything else.
    pub fn new(dc: f64) -> Self {
        DpcParams {
            dc,
            centers: CenterSelection::default(),
            tie_break: TieBreak::default(),
            assignment: AssignmentOptions::default(),
            exec: ExecPolicy::default(),
            kernel: Kernel::default(),
        }
    }

    /// Sets the centre-selection strategy.
    pub fn with_centers(mut self, centers: CenterSelection) -> Self {
        self.centers = centers;
        self
    }

    /// Sets the tie-break rule.
    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Enables or disables halo computation.
    pub fn with_halo(mut self, compute_halo: bool) -> Self {
        self.assignment = AssignmentOptions { compute_halo };
        self
    }

    /// Sets the execution policy for the ρ/δ queries.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Convenience: runs the ρ/δ queries on `threads` worker threads
    /// (`threads <= 1` keeps the sequential default).
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_exec(ExecPolicy::from_threads(threads))
    }

    /// Sets the density kernel.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Validates the parameters: `dc` must pass the same checks every index
    /// applies at query time ([`validate_dc`](crate::index::validate_dc)),
    /// and the kernel's bandwidth must be in range
    /// ([`Kernel::validate`]).
    pub fn validate(&self) -> Result<()> {
        crate::index::validate_dc(self.dc)?;
        self.kernel.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let p = DpcParams::new(0.5)
            .with_centers(CenterSelection::TopKGamma { k: 3 })
            .with_tie_break(TieBreak::LargerIdDenser)
            .with_halo(true)
            .with_threads(4);
        assert_eq!(p.dc, 0.5);
        assert_eq!(p.centers, CenterSelection::TopKGamma { k: 3 });
        assert_eq!(p.tie_break, TieBreak::LargerIdDenser);
        assert!(p.assignment.compute_halo);
        assert_eq!(p.exec, ExecPolicy::Threads(4));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn defaults_are_sensible() {
        let p = DpcParams::new(1.0);
        assert!(!p.assignment.compute_halo);
        assert_eq!(p.tie_break, TieBreak::SmallerIdDenser);
        assert!(matches!(p.centers, CenterSelection::GammaGap { .. }));
        assert_eq!(p.exec, ExecPolicy::Sequential);
    }

    #[test]
    fn one_thread_stays_sequential() {
        assert_eq!(
            DpcParams::new(1.0).with_threads(1).exec,
            ExecPolicy::Sequential
        );
        assert_eq!(
            DpcParams::new(1.0).with_threads(0).exec,
            ExecPolicy::Sequential
        );
        assert_eq!(
            DpcParams::new(1.0).with_exec(ExecPolicy::Auto).exec,
            ExecPolicy::Auto
        );
    }

    #[test]
    fn validation_rejects_non_positive_dc() {
        assert!(DpcParams::new(0.0).validate().is_err());
        assert!(DpcParams::new(-1.0).validate().is_err());
        assert!(DpcParams::new(f64::NAN).validate().is_err());
    }

    #[test]
    fn default_kernel_is_cutoff_and_with_kernel_sets_it() {
        let p = DpcParams::new(1.0);
        assert_eq!(p.kernel, Kernel::Cutoff);
        let p = p.with_kernel(Kernel::gaussian(1.0));
        assert_eq!(p.kernel, Kernel::gaussian(1.0));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_kernel_bandwidths() {
        assert!(DpcParams::new(1.0)
            .with_kernel(Kernel::gaussian(0.0))
            .validate()
            .is_err());
        assert!(DpcParams::new(1.0)
            .with_kernel(Kernel::exponential(f64::NAN))
            .validate()
            .is_err());
    }
}
