//! End-to-end DPC pipeline on top of any [`DpcIndex`].
//!
//! The pipeline performs the four steps of the original algorithm, with steps
//! 1–2 delegated to the index:
//!
//! 1. ρ-query (index),
//! 2. δ-query (index),
//! 3. centre selection on the decision graph,
//! 4. assignment of every point to the cluster of its dependent neighbour.
//!
//! [`cluster_with_index`] returns just the [`Clustering`];
//! [`DpcPipeline::run`] additionally returns the intermediate quantities and
//! per-step timings as a [`DpcRun`], which is what the experiment harness
//! consumes.

use std::time::Duration;

use crate::assign::assign_clusters;
use crate::cluster::Clustering;
use crate::decision::DecisionGraph;
use crate::delta::{DeltaResult, DensityOrder};
use crate::density::Rho;
use crate::error::Result;
use crate::index::DpcIndex;
use crate::params::DpcParams;
use crate::point::PointId;
use crate::stats::Timer;

/// Everything produced by one DPC run: intermediate quantities, the final
/// clustering and per-step timings.
#[derive(Debug, Clone)]
pub struct DpcRun {
    /// Local density of every point.
    pub rho: Vec<Rho>,
    /// Dependent distance / neighbour of every point.
    pub deltas: DeltaResult,
    /// The decision graph built from `rho` and `deltas`.
    pub decision_graph: DecisionGraph,
    /// The selected cluster centres (sorted).
    pub centers: Vec<PointId>,
    /// The final clustering.
    pub clustering: Clustering,
    /// Wall-clock time of the ρ-query.
    pub rho_time: Duration,
    /// Wall-clock time of the δ-query.
    pub delta_time: Duration,
    /// Wall-clock time of centre selection plus assignment.
    pub assign_time: Duration,
}

impl DpcRun {
    /// Total time of the two index queries (the quantity the paper's Figure 5
    /// and Figure 6 report).
    pub fn query_time(&self) -> Duration {
        self.rho_time + self.delta_time
    }

    /// Total end-to-end time.
    pub fn total_time(&self) -> Duration {
        self.rho_time + self.delta_time + self.assign_time
    }
}

/// A reusable pipeline configuration.
#[derive(Debug, Clone)]
pub struct DpcPipeline {
    params: DpcParams,
}

impl DpcPipeline {
    /// Creates a pipeline with the given parameters.
    pub fn new(params: DpcParams) -> Self {
        DpcPipeline { params }
    }

    /// The pipeline's parameters.
    pub fn params(&self) -> &DpcParams {
        &self.params
    }

    /// Runs the full pipeline against an index.
    pub fn run<I: DpcIndex + ?Sized>(&self, index: &I) -> Result<DpcRun> {
        self.params.validate()?;
        let dc = self.params.dc;

        let timer = Timer::start();
        let rho = index.rho_kernel_with_policy(dc, self.params.kernel, self.params.exec)?;
        let rho_time = timer.elapsed();

        let timer = Timer::start();
        let deltas = index.delta_with_policy(dc, &rho, self.params.exec)?;
        let delta_time = timer.elapsed();

        let timer = Timer::start();
        let decision_graph = DecisionGraph::new(rho.clone(), &deltas)?;
        let centers = decision_graph.select_centers(&self.params.centers)?;
        let order = DensityOrder::with_tie_break(&rho, self.params.tie_break);
        let clustering = assign_clusters(
            index.dataset(),
            &order,
            &deltas,
            &centers,
            dc,
            &self.params.assignment,
        )?;
        let assign_time = timer.elapsed();

        Ok(DpcRun {
            rho,
            deltas,
            decision_graph,
            centers,
            clustering,
            rho_time,
            delta_time,
            assign_time,
        })
    }
}

/// Convenience wrapper: runs the pipeline and returns only the clustering.
pub fn cluster_with_index<I: DpcIndex + ?Sized>(
    index: &I,
    params: &DpcParams,
) -> Result<Clustering> {
    DpcPipeline::new(params.clone())
        .run(index)
        .map(|run| run.clustering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::CenterSelection;
    use crate::naive_reference::NaiveReferenceIndex;
    use crate::point::{Dataset, Point};

    fn three_blobs() -> Dataset {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)] {
            for i in 0..5 {
                for j in 0..5 {
                    pts.push(Point::new(cx + i as f64 * 0.05, cy + j as f64 * 0.05));
                }
            }
        }
        Dataset::new(pts)
    }

    #[test]
    fn pipeline_recovers_three_blobs() {
        let data = three_blobs();
        let index = NaiveReferenceIndex::build(&data);
        let params = DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 3 });
        let run = DpcPipeline::new(params).run(&index).unwrap();

        assert_eq!(run.clustering.num_clusters(), 3);
        let sizes = run.clustering.sizes();
        assert_eq!(sizes, vec![25, 25, 25]);

        // Points of the same blob share a label, different blobs differ.
        assert_eq!(run.clustering.label(0), run.clustering.label(24));
        assert_ne!(run.clustering.label(0), run.clustering.label(25));
        assert_ne!(run.clustering.label(25), run.clustering.label(50));
    }

    #[test]
    fn gamma_gap_auto_selection_also_finds_three() {
        let data = three_blobs();
        let index = NaiveReferenceIndex::build(&data);
        let params =
            DpcParams::new(0.5).with_centers(CenterSelection::GammaGap { max_centers: 10 });
        let clustering = cluster_with_index(&index, &params).unwrap();
        assert_eq!(clustering.num_clusters(), 3);
    }

    #[test]
    fn run_reports_timings_and_intermediates() {
        let data = three_blobs();
        let index = NaiveReferenceIndex::build(&data);
        let params = DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 3 });
        let run = DpcPipeline::new(params).run(&index).unwrap();
        assert_eq!(run.rho.len(), data.len());
        assert_eq!(run.deltas.len(), data.len());
        assert_eq!(run.centers.len(), 3);
        assert!(run.query_time() <= run.total_time());
    }

    #[test]
    fn invalid_dc_is_rejected_before_querying() {
        let data = three_blobs();
        let index = NaiveReferenceIndex::build(&data);
        let params = DpcParams::new(-1.0);
        assert!(DpcPipeline::new(params).run(&index).is_err());
    }

    #[test]
    fn centres_are_members_of_their_own_cluster() {
        let data = three_blobs();
        let index = NaiveReferenceIndex::build(&data);
        let params = DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 3 });
        let run = DpcPipeline::new(params).run(&index).unwrap();
        for (cluster_id, &c) in run.centers.iter().enumerate() {
            assert_eq!(run.clustering.label(c), cluster_id);
        }
    }
}
