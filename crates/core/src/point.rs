//! Points, point identifiers and datasets.
//!
//! The paper evaluates DPC on two-dimensional spatial data (synthetic cluster
//! benchmarks and geo check-ins), so the data model here is a dense array of
//! 2-D points addressed by a stable [`PointId`]. Every index structure in the
//! workspace refers to points exclusively through their id, which is the
//! position of the point inside its [`Dataset`].

use crate::bbox::BoundingBox;
use crate::error::{DpcError, Result};

/// Identifier of a point inside a [`Dataset`].
///
/// Ids are dense: the i-th point of the dataset has id `i`. They are stable
/// for the lifetime of the dataset, which lets indices store plain `u32`
/// references instead of copies of the coordinates.
pub type PointId = usize;

/// A two-dimensional point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// First coordinate (x / longitude).
    pub x: f64,
    /// Second coordinate (y / latitude).
    pub y: f64,
}

impl Point {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Point { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::distance`] and sufficient whenever only
    /// comparisons are needed.
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Coordinate of the point along dimension `dim` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `dim > 1`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        match dim {
            0 => self.x,
            1 => self.y,
            _ => panic!("Point::coord: dimension {dim} out of range (2-D points)"),
        }
    }

    /// Returns true if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<[f64; 2]> for Point {
    fn from([x, y]: [f64; 2]) -> Self {
        Point::new(x, y)
    }
}

/// A collection of points to be clustered.
///
/// A dataset owns its points and exposes them by [`PointId`]. Construction
/// validates that all coordinates are finite so that downstream distance
/// computations and index invariants never have to deal with NaN.
///
/// ## Mutation and versioning
///
/// Datasets were originally immutable; the streaming engine (`dpc-stream`)
/// needs an append/evict workflow, so two mutators exist:
///
/// * [`push`](Dataset::push) appends a point at the end (its id is the old
///   length), and
/// * [`swap_remove`](Dataset::swap_remove) removes a point by moving the
///   *last* point into its slot — O(1), but it renames the last point's id.
///
/// Every successful mutation bumps the dataset's
/// [`version`](Dataset::version), a monotonically increasing epoch counter.
/// Indices and other derived structures can record the version they were
/// built against and detect staleness instead of silently answering queries
/// over a dataset that has moved on.
#[derive(Debug, Clone)]
pub struct Dataset {
    points: Vec<Point>,
    /// Structure-of-arrays mirror of `points`: all x coordinates, then all y
    /// coordinates, each contiguous. Brute-force scans that stream over every
    /// point (the O(n²) baselines, neighbour-list construction) iterate these
    /// instead of the interleaved `points` so the compiler can vectorise the
    /// distance computations.
    xs: Vec<f64>,
    ys: Vec<f64>,
    bbox: BoundingBox,
    /// Mutation epoch: 0 at construction, +1 per successful push/swap_remove.
    version: u64,
}

impl PartialEq for Dataset {
    /// Two datasets are equal when they hold the same points in the same
    /// order; the mutation [`version`](Dataset::version) is deliberately
    /// ignored (a dataset that had a point pushed and swap-removed again is
    /// equal to one that never mutated).
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
    }
}

impl Dataset {
    /// Creates a dataset from a vector of points.
    ///
    /// # Panics
    /// Panics if any coordinate is non-finite. Use [`Dataset::try_new`] for a
    /// fallible variant.
    pub fn new(points: Vec<Point>) -> Self {
        Self::try_new(points).expect("Dataset::new: non-finite coordinate")
    }

    /// Creates a dataset, returning an error when a coordinate is NaN or
    /// infinite.
    pub fn try_new(points: Vec<Point>) -> Result<Self> {
        for (id, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(DpcError::InvalidPoint { id, x: p.x, y: p.y });
            }
        }
        let bbox = BoundingBox::from_points(&points);
        let xs = points.iter().map(|p| p.x).collect();
        let ys = points.iter().map(|p| p.y).collect();
        Ok(Dataset {
            points,
            xs,
            ys,
            bbox,
            version: 0,
        })
    }

    /// Creates a dataset from `(x, y)` tuples.
    pub fn from_coords<I>(coords: I) -> Self
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        Self::new(coords.into_iter().map(Point::from).collect())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: PointId) -> Point {
        self.points[id]
    }

    /// The point with the given id, or `None` when out of range.
    #[inline]
    pub fn get(&self, id: PointId) -> Option<Point> {
        self.points.get(id).copied()
    }

    /// All points as a slice, indexed by [`PointId`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Iterator over `(id, point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, Point)> + '_ {
        self.points.iter().copied().enumerate()
    }

    /// Contiguous slice of all x coordinates, indexed by [`PointId`].
    ///
    /// Together with [`ys`](Self::ys) this is the structure-of-arrays view of
    /// the dataset: streaming scans (ρ counting in the brute-force baselines)
    /// read two flat `f64` streams, which keeps the hot loop cache-friendly
    /// and lets the compiler vectorise it.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Contiguous slice of all y coordinates, indexed by [`PointId`].
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Both coordinate slices at once: `(xs, ys)`.
    #[inline]
    pub fn coord_slices(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// Mutation epoch of the dataset: 0 at construction, incremented by
    /// every successful [`push`](Dataset::push) /
    /// [`swap_remove`](Dataset::swap_remove).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Appends a point, returning its id (the previous length).
    ///
    /// The interleaved array, both structure-of-arrays mirrors and the
    /// bounding box stay in sync, and the [`version`](Dataset::version) is
    /// bumped. Returns [`DpcError::InvalidPoint`] for non-finite coordinates
    /// (the dataset is left untouched).
    pub fn push(&mut self, p: Point) -> Result<PointId> {
        if !p.is_finite() {
            return Err(DpcError::InvalidPoint {
                id: self.points.len(),
                x: p.x,
                y: p.y,
            });
        }
        let id = self.points.len();
        self.points.push(p);
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.bbox = self.bbox.extended(p);
        self.version += 1;
        Ok(id)
    }

    /// Removes the point with the given id by moving the *last* point into
    /// its slot.
    ///
    /// Returns the id the moved point previously had (`Some(old_len - 1)`),
    /// or `None` when the removed point was the last one and nothing moved.
    /// Callers that hold ids for the moved point must rename it to `id`; the
    /// [`HandleMap` of `dpc-stream`] exists to do exactly that bookkeeping.
    ///
    /// The bounding box stays tight and the [`version`](Dataset::version) is
    /// bumped. Cost: O(1) unless the removed point lay on the bounding box
    /// (then the box is rescanned in O(n) — a strictly interior point cannot
    /// change a tight box, so the streaming hot path usually skips the
    /// rescan).
    ///
    /// [`HandleMap` of `dpc-stream`]: Dataset#mutation-and-versioning
    pub fn swap_remove(&mut self, id: PointId) -> Result<Option<PointId>> {
        let n = self.points.len();
        if id >= n {
            return Err(DpcError::invalid_parameter(
                "id",
                format!("swap_remove: point id {id} is out of range (n = {n})"),
            ));
        }
        let removed = self.points[id];
        self.points.swap_remove(id);
        self.xs.swap_remove(id);
        self.ys.swap_remove(id);
        let on_boundary = removed.x <= self.bbox.min_x()
            || removed.x >= self.bbox.max_x()
            || removed.y <= self.bbox.min_y()
            || removed.y >= self.bbox.max_y();
        if on_boundary {
            self.bbox = BoundingBox::from_points(&self.points);
        }
        self.version += 1;
        Ok(if id == n - 1 { None } else { Some(n - 1) })
    }

    /// Euclidean distance between two points of the dataset.
    #[inline]
    pub fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.points[a].distance(&self.points[b])
    }

    /// The tight axis-aligned bounding box of the dataset.
    ///
    /// For an empty dataset this is the canonical empty box.
    #[inline]
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// The diameter of the bounding box (length of its diagonal).
    ///
    /// This is an upper bound on any pairwise distance and is the natural
    /// scale against which cut-off distances `dc` are expressed.
    pub fn bbox_diameter(&self) -> f64 {
        self.bbox.diagonal()
    }

    /// Approximate number of heap bytes held by the dataset (the interleaved
    /// point array plus the structure-of-arrays coordinate mirror).
    pub fn memory_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Point>()
            + (self.xs.capacity() + self.ys.capacity()) * std::mem::size_of::<f64>()
    }
}

impl From<Vec<Point>> for Dataset {
    fn from(points: Vec<Point>) -> Self {
        Dataset::new(points)
    }
}

impl From<Vec<(f64, f64)>> for Dataset {
    fn from(coords: Vec<(f64, f64)>) -> Self {
        Dataset::from_coords(coords)
    }
}

impl std::ops::Index<PointId> for Dataset {
    type Output = Point;

    fn index(&self, id: PointId) -> &Point {
        &self.points[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn point_distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn point_distance_to_self_is_zero() {
        let a = Point::new(12.0, -3.5);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn point_coord_accessor() {
        let p = Point::new(3.0, 7.0);
        assert_eq!(p.coord(0), 3.0);
        assert_eq!(p.coord(1), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_coord_out_of_range_panics() {
        Point::new(0.0, 0.0).coord(2);
    }

    #[test]
    fn point_conversions() {
        assert_eq!(Point::from((1.0, 2.0)), Point::new(1.0, 2.0));
        assert_eq!(Point::from([1.0, 2.0]), Point::new(1.0, 2.0));
    }

    #[test]
    fn dataset_basic_accessors() {
        let d = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.point(1), Point::new(1.0, 1.0));
        assert_eq!(d[2], Point::new(2.0, 0.0));
        assert_eq!(d.get(3), None);
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn dataset_distance_between_members() {
        let d = Dataset::from_coords(vec![(0.0, 0.0), (3.0, 4.0)]);
        assert_eq!(d.distance(0, 1), 5.0);
        assert_eq!(d.distance(1, 0), 5.0);
    }

    #[test]
    fn dataset_rejects_nan() {
        let err = Dataset::try_new(vec![Point::new(0.0, f64::NAN)]).unwrap_err();
        match err {
            DpcError::InvalidPoint { id, .. } => assert_eq!(id, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn dataset_rejects_infinity() {
        assert!(Dataset::try_new(vec![Point::new(f64::INFINITY, 0.0)]).is_err());
    }

    #[test]
    fn dataset_bounding_box_is_tight() {
        let d = Dataset::from_coords(vec![(0.0, -1.0), (4.0, 2.0), (2.0, 5.0)]);
        let bb = d.bounding_box();
        assert_eq!(bb.min_x(), 0.0);
        assert_eq!(bb.max_x(), 4.0);
        assert_eq!(bb.min_y(), -1.0);
        assert_eq!(bb.max_y(), 5.0);
        assert!((d.bbox_diameter() - (16.0f64 + 36.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn coord_slices_mirror_the_points() {
        let d = Dataset::from_coords(vec![(0.5, -1.0), (4.0, 2.0), (2.0, 5.0)]);
        let (xs, ys) = d.coord_slices();
        assert_eq!(xs, &[0.5, 4.0, 2.0]);
        assert_eq!(ys, &[-1.0, 2.0, 5.0]);
        assert_eq!(d.xs().len(), d.len());
        for (id, p) in d.iter() {
            assert_eq!(p, Point::new(xs[id], ys[id]));
        }
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.bbox_diameter(), 0.0);
    }

    /// The SoA mirrors and the interleaved array must describe the same
    /// points after any mutation.
    fn assert_soa_in_sync(d: &Dataset) {
        assert_eq!(d.xs().len(), d.len());
        assert_eq!(d.ys().len(), d.len());
        for (id, p) in d.iter() {
            assert_eq!(p.x, d.xs()[id], "xs out of sync at {id}");
            assert_eq!(p.y, d.ys()[id], "ys out of sync at {id}");
            assert!(d.bounding_box().contains(p), "bbox misses point {id}");
        }
    }

    #[test]
    fn push_appends_and_keeps_soa_in_sync() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 2.0)]);
        assert_eq!(d.version(), 0);
        let id = d.push(Point::new(-3.0, 7.0)).unwrap();
        assert_eq!(id, 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d.point(2), Point::new(-3.0, 7.0));
        assert_eq!(d.version(), 1);
        assert_soa_in_sync(&d);
        // The bounding box grew to cover the new point.
        assert_eq!(d.bounding_box().min_x(), -3.0);
        assert_eq!(d.bounding_box().max_y(), 7.0);
    }

    #[test]
    fn push_rejects_non_finite_and_leaves_dataset_untouched() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0)]);
        assert!(d.push(Point::new(f64::NAN, 0.0)).is_err());
        assert!(d.push(Point::new(0.0, f64::INFINITY)).is_err());
        assert_eq!(d.len(), 1);
        assert_eq!(d.version(), 0);
        assert_soa_in_sync(&d);
    }

    #[test]
    fn swap_remove_moves_last_point_into_hole() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let moved = d.swap_remove(1).unwrap();
        assert_eq!(moved, Some(3));
        assert_eq!(d.len(), 3);
        // Point 3 now lives at id 1.
        assert_eq!(d.point(1), Point::new(3.0, 3.0));
        assert_eq!(d.point(0), Point::new(0.0, 0.0));
        assert_eq!(d.point(2), Point::new(2.0, 2.0));
        assert_eq!(d.version(), 1);
        assert_soa_in_sync(&d);
    }

    #[test]
    fn swap_remove_of_last_point_moves_nothing() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(d.swap_remove(1).unwrap(), None);
        assert_eq!(d.len(), 1);
        assert_soa_in_sync(&d);
        assert_eq!(d.swap_remove(0).unwrap(), None);
        assert!(d.is_empty());
        assert_eq!(d.version(), 2);
    }

    #[test]
    fn swap_remove_keeps_bounding_box_tight() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0), (100.0, 100.0), (1.0, 1.0)]);
        // Removing the extreme point must shrink the box.
        d.swap_remove(1).unwrap();
        let bb = d.bounding_box();
        assert_eq!(bb.max_x(), 1.0);
        assert_eq!(bb.max_y(), 1.0);
        assert_soa_in_sync(&d);
    }

    #[test]
    fn swap_remove_of_interior_point_keeps_the_box() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0), (5.0, 5.0), (10.0, 10.0), (2.0, 9.0)]);
        let before = d.bounding_box();
        // (5, 5) is strictly inside: the tight box cannot change (and the
        // fast path skips the rescan entirely).
        d.swap_remove(1).unwrap();
        assert_eq!(d.bounding_box(), before);
        assert_eq!(d.bounding_box(), BoundingBox::from_points(d.points()));
        assert_soa_in_sync(&d);
    }

    #[test]
    fn swap_remove_rejects_out_of_range_ids() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0)]);
        assert!(d.swap_remove(1).is_err());
        assert!(d.swap_remove(usize::MAX).is_err());
        assert_eq!(d.version(), 0);
        let mut empty = Dataset::new(vec![]);
        assert!(empty.swap_remove(0).is_err());
    }

    #[test]
    fn push_after_swap_remove_reuses_dense_ids() {
        let mut d = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        d.swap_remove(0).unwrap(); // point 2 takes id 0
        let id = d.push(Point::new(9.0, 9.0)).unwrap();
        assert_eq!(id, 2);
        assert_eq!(d.point(0), Point::new(2.0, 2.0));
        assert_eq!(d.point(1), Point::new(1.0, 1.0));
        assert_eq!(d.point(2), Point::new(9.0, 9.0));
        assert_eq!(d.version(), 2);
        assert_soa_in_sync(&d);
    }

    #[test]
    fn version_is_ignored_by_equality() {
        let mut a = Dataset::from_coords(vec![(0.0, 0.0)]);
        let b = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0)]);
        a.push(Point::new(1.0, 1.0)).unwrap();
        assert_eq!(a.version(), 1);
        assert_eq!(b.version(), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn memory_accounting_scales_with_len() {
        let small = Dataset::from_coords(vec![(0.0, 0.0); 10]);
        let big = Dataset::from_coords(vec![(0.0, 0.0); 1000]);
        assert!(big.memory_bytes() > small.memory_bytes());
        assert!(big.memory_bytes() >= 1000 * std::mem::size_of::<Point>());
    }
}
