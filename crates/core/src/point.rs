//! Points, point identifiers and datasets.
//!
//! The paper evaluates DPC on two-dimensional spatial data (synthetic cluster
//! benchmarks and geo check-ins), so the data model here is a dense array of
//! 2-D points addressed by a stable [`PointId`]. Every index structure in the
//! workspace refers to points exclusively through their id, which is the
//! position of the point inside its [`Dataset`].

use crate::bbox::BoundingBox;
use crate::error::{DpcError, Result};

/// Identifier of a point inside a [`Dataset`].
///
/// Ids are dense: the i-th point of the dataset has id `i`. They are stable
/// for the lifetime of the dataset, which lets indices store plain `u32`
/// references instead of copies of the coordinates.
pub type PointId = usize;

/// A two-dimensional point.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// First coordinate (x / longitude).
    pub x: f64,
    /// Second coordinate (y / latitude).
    pub y: f64,
}

impl Point {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Point { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::distance`] and sufficient whenever only
    /// comparisons are needed.
    #[inline]
    pub fn distance_squared(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Coordinate of the point along dimension `dim` (0 = x, 1 = y).
    ///
    /// # Panics
    /// Panics if `dim > 1`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        match dim {
            0 => self.x,
            1 => self.y,
            _ => panic!("Point::coord: dimension {dim} out of range (2-D points)"),
        }
    }

    /// Returns true if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<[f64; 2]> for Point {
    fn from([x, y]: [f64; 2]) -> Self {
        Point::new(x, y)
    }
}

/// An immutable collection of points to be clustered.
///
/// A dataset owns its points and exposes them by [`PointId`]. Construction
/// validates that all coordinates are finite so that downstream distance
/// computations and index invariants never have to deal with NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    points: Vec<Point>,
    /// Structure-of-arrays mirror of `points`: all x coordinates, then all y
    /// coordinates, each contiguous. Brute-force scans that stream over every
    /// point (the O(n²) baselines, neighbour-list construction) iterate these
    /// instead of the interleaved `points` so the compiler can vectorise the
    /// distance computations.
    xs: Vec<f64>,
    ys: Vec<f64>,
    bbox: BoundingBox,
}

impl Dataset {
    /// Creates a dataset from a vector of points.
    ///
    /// # Panics
    /// Panics if any coordinate is non-finite. Use [`Dataset::try_new`] for a
    /// fallible variant.
    pub fn new(points: Vec<Point>) -> Self {
        Self::try_new(points).expect("Dataset::new: non-finite coordinate")
    }

    /// Creates a dataset, returning an error when a coordinate is NaN or
    /// infinite.
    pub fn try_new(points: Vec<Point>) -> Result<Self> {
        for (id, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(DpcError::InvalidPoint { id, x: p.x, y: p.y });
            }
        }
        let bbox = BoundingBox::from_points(&points);
        let xs = points.iter().map(|p| p.x).collect();
        let ys = points.iter().map(|p| p.y).collect();
        Ok(Dataset {
            points,
            xs,
            ys,
            bbox,
        })
    }

    /// Creates a dataset from `(x, y)` tuples.
    pub fn from_coords<I>(coords: I) -> Self
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        Self::new(coords.into_iter().map(Point::from).collect())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: PointId) -> Point {
        self.points[id]
    }

    /// The point with the given id, or `None` when out of range.
    #[inline]
    pub fn get(&self, id: PointId) -> Option<Point> {
        self.points.get(id).copied()
    }

    /// All points as a slice, indexed by [`PointId`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Iterator over `(id, point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, Point)> + '_ {
        self.points.iter().copied().enumerate()
    }

    /// Contiguous slice of all x coordinates, indexed by [`PointId`].
    ///
    /// Together with [`ys`](Self::ys) this is the structure-of-arrays view of
    /// the dataset: streaming scans (ρ counting in the brute-force baselines)
    /// read two flat `f64` streams, which keeps the hot loop cache-friendly
    /// and lets the compiler vectorise it.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Contiguous slice of all y coordinates, indexed by [`PointId`].
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Both coordinate slices at once: `(xs, ys)`.
    #[inline]
    pub fn coord_slices(&self) -> (&[f64], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// Euclidean distance between two points of the dataset.
    #[inline]
    pub fn distance(&self, a: PointId, b: PointId) -> f64 {
        self.points[a].distance(&self.points[b])
    }

    /// The tight axis-aligned bounding box of the dataset.
    ///
    /// For an empty dataset this is the canonical empty box.
    #[inline]
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// The diameter of the bounding box (length of its diagonal).
    ///
    /// This is an upper bound on any pairwise distance and is the natural
    /// scale against which cut-off distances `dc` are expressed.
    pub fn bbox_diameter(&self) -> f64 {
        self.bbox.diagonal()
    }

    /// Approximate number of heap bytes held by the dataset (the interleaved
    /// point array plus the structure-of-arrays coordinate mirror).
    pub fn memory_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Point>()
            + (self.xs.capacity() + self.ys.capacity()) * std::mem::size_of::<f64>()
    }
}

impl From<Vec<Point>> for Dataset {
    fn from(points: Vec<Point>) -> Self {
        Dataset::new(points)
    }
}

impl From<Vec<(f64, f64)>> for Dataset {
    fn from(coords: Vec<(f64, f64)>) -> Self {
        Dataset::from_coords(coords)
    }
}

impl std::ops::Index<PointId> for Dataset {
    type Output = Point;

    fn index(&self, id: PointId) -> &Point {
        &self.points[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn point_distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn point_distance_to_self_is_zero() {
        let a = Point::new(12.0, -3.5);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn point_coord_accessor() {
        let p = Point::new(3.0, 7.0);
        assert_eq!(p.coord(0), 3.0);
        assert_eq!(p.coord(1), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_coord_out_of_range_panics() {
        Point::new(0.0, 0.0).coord(2);
    }

    #[test]
    fn point_conversions() {
        assert_eq!(Point::from((1.0, 2.0)), Point::new(1.0, 2.0));
        assert_eq!(Point::from([1.0, 2.0]), Point::new(1.0, 2.0));
    }

    #[test]
    fn dataset_basic_accessors() {
        let d = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.point(1), Point::new(1.0, 1.0));
        assert_eq!(d[2], Point::new(2.0, 0.0));
        assert_eq!(d.get(3), None);
        assert_eq!(d.iter().count(), 3);
    }

    #[test]
    fn dataset_distance_between_members() {
        let d = Dataset::from_coords(vec![(0.0, 0.0), (3.0, 4.0)]);
        assert_eq!(d.distance(0, 1), 5.0);
        assert_eq!(d.distance(1, 0), 5.0);
    }

    #[test]
    fn dataset_rejects_nan() {
        let err = Dataset::try_new(vec![Point::new(0.0, f64::NAN)]).unwrap_err();
        match err {
            DpcError::InvalidPoint { id, .. } => assert_eq!(id, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn dataset_rejects_infinity() {
        assert!(Dataset::try_new(vec![Point::new(f64::INFINITY, 0.0)]).is_err());
    }

    #[test]
    fn dataset_bounding_box_is_tight() {
        let d = Dataset::from_coords(vec![(0.0, -1.0), (4.0, 2.0), (2.0, 5.0)]);
        let bb = d.bounding_box();
        assert_eq!(bb.min_x(), 0.0);
        assert_eq!(bb.max_x(), 4.0);
        assert_eq!(bb.min_y(), -1.0);
        assert_eq!(bb.max_y(), 5.0);
        assert!((d.bbox_diameter() - (16.0f64 + 36.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn coord_slices_mirror_the_points() {
        let d = Dataset::from_coords(vec![(0.5, -1.0), (4.0, 2.0), (2.0, 5.0)]);
        let (xs, ys) = d.coord_slices();
        assert_eq!(xs, &[0.5, 4.0, 2.0]);
        assert_eq!(ys, &[-1.0, 2.0, 5.0]);
        assert_eq!(d.xs().len(), d.len());
        for (id, p) in d.iter() {
            assert_eq!(p, Point::new(xs[id], ys[id]));
        }
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.bbox_diameter(), 0.0);
    }

    #[test]
    fn memory_accounting_scales_with_len() {
        let small = Dataset::from_coords(vec![(0.0, 0.0); 10]);
        let big = Dataset::from_coords(vec![(0.0, 0.0); 1000]);
        assert!(big.memory_bytes() > small.memory_bytes());
        assert!(big.memory_bytes() >= 1000 * std::mem::size_of::<Point>());
    }
}
