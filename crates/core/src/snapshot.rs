//! Immutable point-in-time views of clustering state, built for concurrent
//! serving.
//!
//! A [`StateSnapshot`] freezes everything a read-only query needs — the
//! window's coordinates, ρ, δ, µ, labels, centres and halo flags — plus a
//! compact uniform grid over the frozen coordinates so ε-neighbourhood
//! queries stay sub-linear without keeping the (mutable) source index
//! alive. Snapshots are plain owned data: cloning is deep, sharing is
//! cheap behind an `Arc`, and nothing in this module can observe later
//! mutations of the engine that produced it.

use std::collections::HashMap;

use crate::cluster::Clustering;
use crate::delta::DeltaResult;
use crate::density::Rho;
use crate::error::Result;
use crate::index::validate_dc;
use crate::point::{Dataset, Point, PointId};

/// Average cell occupancy the snapshot grid aims for; mirrors the default of
/// the updatable grid index.
const TARGET_POINTS_PER_CELL: f64 = 32.0;

/// A compact uniform grid over a frozen point set, supporting exact
/// ε-neighbourhood queries. Geometry is derived from the points at build
/// time; since a snapshot never mutates, it can never drift.
#[derive(Debug, Clone)]
struct SnapshotGrid {
    origin: (f64, f64),
    cell_size: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
}

impl SnapshotGrid {
    fn build(points: &[Point]) -> Self {
        let bb = points
            .iter()
            .fold(crate::bbox::BoundingBox::EMPTY, |acc, p| acc.extended(*p));
        let origin = if bb.is_empty() {
            (0.0, 0.0)
        } else {
            (bb.min_x(), bb.min_y())
        };
        let n = points.len();
        let mut cell_size = {
            let cells = (n as f64 / TARGET_POINTS_PER_CELL).max(1.0);
            let per_axis = cells.sqrt().ceil().max(1.0);
            bb.width().max(bb.height()).max(f64::MIN_POSITIVE) / per_axis
        };
        if !(cell_size.is_finite() && cell_size > 0.0) {
            cell_size = 1.0;
        }
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (id, p) in points.iter().enumerate() {
            cells
                .entry(Self::key(*p, origin, cell_size))
                .or_default()
                .push(id as u32);
        }
        SnapshotGrid {
            origin,
            cell_size,
            cells,
        }
    }

    /// Integer cell coordinates; the f64→i64 cast saturates so degenerate
    /// geometries collapse into boundary cells instead of overflowing.
    fn key(p: Point, origin: (f64, f64), cell_size: f64) -> (i64, i64) {
        (
            ((p.x - origin.0) / cell_size).floor() as i64,
            ((p.y - origin.1) / cell_size).floor() as i64,
        )
    }

    /// Ids of all points strictly within `eps` of `center`, ascending — the
    /// same contract (and bit-identical answer) as a linear scan in id
    /// order with a strict `< eps²` test.
    fn eps_neighbors(&self, points: &[Point], center: Point, eps: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        if points.is_empty() {
            return out;
        }
        let eps2 = eps * eps;
        // Widen the key rectangle by one cell per side: rounded f64
        // arithmetic may push fl(center ± eps) across a cell boundary, and
        // the exact strict `< eps²` test below keeps the result tight.
        let (kx0, ky0) = Self::key(
            Point::new(center.x - eps, center.y - eps),
            self.origin,
            self.cell_size,
        );
        let (kx1, ky1) = Self::key(
            Point::new(center.x + eps, center.y + eps),
            self.origin,
            self.cell_size,
        );
        let (kx0, ky0) = (kx0.saturating_sub(1), ky0.saturating_sub(1));
        let (kx1, ky1) = (kx1.saturating_add(1), ky1.saturating_add(1));
        let scan = |ids: &[u32], out: &mut Vec<PointId>| {
            for &q in ids {
                let q = q as PointId;
                if points[q].distance_squared(&center) < eps2 {
                    out.push(q);
                }
            }
        };
        // Enumerate the rectangle when small; for a huge eps relative to
        // the cell size, walking the existing cells is cheaper.
        let span = ((kx1 as i128 - kx0 as i128 + 1) as u128)
            .saturating_mul((ky1 as i128 - ky0 as i128 + 1) as u128);
        if span <= self.cells.len() as u128 {
            for kx in kx0..=kx1 {
                for ky in ky0..=ky1 {
                    if let Some(ids) = self.cells.get(&(kx, ky)) {
                        scan(ids, &mut out);
                    }
                }
            }
        } else {
            for (&(kx, ky), ids) in &self.cells {
                if (kx0..=kx1).contains(&kx) && (ky0..=ky1).contains(&ky) {
                    scan(ids, &mut out);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// An immutable copy of one epoch's full clustering state.
///
/// All per-point vectors are indexed by the dense [`PointId`]s of the source
/// dataset *at the moment of the snapshot*; `version` records the dataset's
/// mutation counter so the snapshot can be correlated with the live engine.
#[derive(Debug, Clone)]
pub struct StateSnapshot {
    version: u64,
    points: Vec<Point>,
    rho: Vec<Rho>,
    deltas: DeltaResult,
    clustering: Clustering,
    grid: SnapshotGrid,
}

impl StateSnapshot {
    /// Freezes a snapshot from its parts, building the internal ε-query
    /// grid.
    ///
    /// # Panics
    /// Panics if the per-point vectors disagree on length.
    pub fn new(
        version: u64,
        points: Vec<Point>,
        rho: Vec<Rho>,
        deltas: DeltaResult,
        clustering: Clustering,
    ) -> Self {
        let n = points.len();
        assert_eq!(rho.len(), n, "rho length must match the point count");
        assert_eq!(
            deltas.delta.len(),
            n,
            "delta length must match the point count"
        );
        assert_eq!(deltas.mu.len(), n, "mu length must match the point count");
        assert_eq!(
            clustering.len(),
            n,
            "clustering length must match the point count"
        );
        let grid = SnapshotGrid::build(&points);
        StateSnapshot {
            version,
            points,
            rho,
            deltas,
            clustering,
            grid,
        }
    }

    /// Freezes the current state of a dataset plus its derived quantities.
    pub fn capture(
        dataset: &Dataset,
        rho: &[Rho],
        deltas: &DeltaResult,
        clustering: &Clustering,
    ) -> Self {
        StateSnapshot::new(
            dataset.version(),
            dataset.points().to_vec(),
            rho.to_vec(),
            deltas.clone(),
            clustering.clone(),
        )
    }

    /// The dataset mutation counter at snapshot time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of points in the snapshot.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the snapshot holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The frozen coordinates, indexed by dense id.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// One frozen point.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn point(&self, id: PointId) -> Point {
        self.points[id]
    }

    /// The frozen ρ values.
    pub fn rho(&self) -> &[Rho] {
        &self.rho
    }

    /// The frozen δ/µ values.
    pub fn deltas(&self) -> &DeltaResult {
        &self.deltas
    }

    /// The frozen clustering (labels, centres, halo).
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Ids of all points strictly within `eps` of `center`, ascending.
    /// Bit-identical to a linear scan of the frozen points with a strict
    /// `< eps²` test.
    ///
    /// # Errors
    /// Rejects a non-finite or non-positive `eps`.
    pub fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>> {
        validate_dc(eps)?;
        Ok(self.grid.eps_neighbors(&self.points, center, eps))
    }

    /// Verifies the snapshot's internal consistency: per-point vectors agree
    /// on length, every label points at a valid centre, every centre is
    /// labelled with its own cluster, and the ε-grid partitions exactly the
    /// frozen ids. A torn snapshot (state mixed across epochs) cannot pass.
    ///
    /// # Panics
    /// Panics with a descriptive message on the first violation.
    pub fn check_consistency(&self) {
        let n = self.points.len();
        assert_eq!(self.rho.len(), n, "rho/points length mismatch");
        assert_eq!(self.deltas.delta.len(), n, "delta/points length mismatch");
        assert_eq!(self.deltas.mu.len(), n, "mu/points length mismatch");
        assert_eq!(self.clustering.len(), n, "labels/points length mismatch");
        let centers = self.clustering.centers();
        for (p, &label) in self.clustering.labels().iter().enumerate() {
            assert!(
                label < centers.len(),
                "point {p} labelled {label} but only {} clusters exist",
                centers.len()
            );
        }
        for (cluster, &c) in centers.iter().enumerate() {
            assert!(c < n, "centre {c} of cluster {cluster} is out of range");
            assert_eq!(
                self.clustering.label(c),
                cluster,
                "centre {c} is not labelled with its own cluster"
            );
        }
        let mut seen = vec![false; n];
        for ((kx, ky), ids) in &self.grid.cells {
            for &q in ids {
                let q = q as PointId;
                assert!(q < n, "grid lists out-of-range id {q}");
                assert!(!seen[q], "grid lists id {q} twice");
                seen[q] = true;
                assert_eq!(
                    SnapshotGrid::key(self.points[q], self.grid.origin, self.grid.cell_size),
                    (*kx, *ky),
                    "point {q} is listed in cell ({kx}, {ky}) but keys elsewhere"
                );
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "grid must partition every frozen id"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_reference::NaiveReferenceIndex;
    use crate::params::DpcParams;
    use crate::pipeline::DpcPipeline;

    fn snapshot_of(coords: Vec<(f64, f64)>, dc: f64) -> (Dataset, StateSnapshot) {
        let dataset = Dataset::from_coords(coords);
        let index = NaiveReferenceIndex::build(&dataset);
        let run = DpcPipeline::new(DpcParams::new(dc)).run(&index).unwrap();
        let snap = StateSnapshot::capture(&dataset, &run.rho, &run.deltas, &run.clustering);
        (dataset, snap)
    }

    fn grid_coords() -> Vec<(f64, f64)> {
        let mut coords = Vec::new();
        for i in 0..13 {
            for j in 0..11 {
                coords.push((i as f64 * 1.7, j as f64 * 2.3 + (i % 3) as f64 * 0.1));
            }
        }
        coords
    }

    #[test]
    fn capture_freezes_state_and_passes_consistency() {
        let (dataset, snap) = snapshot_of(grid_coords(), 3.0);
        assert_eq!(snap.len(), dataset.len());
        assert_eq!(snap.version(), dataset.version());
        assert_eq!(snap.points(), dataset.points());
        snap.check_consistency();
    }

    #[test]
    fn eps_neighbors_matches_a_linear_scan() {
        let (dataset, snap) = snapshot_of(grid_coords(), 3.0);
        for (center, eps) in [
            (dataset.point(0), 2.5),
            (dataset.point(57), 4.0),
            (Point::new(-3.0, -3.0), 1.0),
            (dataset.point(8), 1.0e6),
        ] {
            let got = snap.eps_neighbors(center, eps).unwrap();
            let expected: Vec<PointId> = dataset
                .iter()
                .filter(|(_, p)| p.distance_squared(&center) < eps * eps)
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, expected, "eps = {eps}");
        }
        assert!(snap.eps_neighbors(Point::new(0.0, 0.0), f64::NAN).is_err());
        assert!(snap.eps_neighbors(Point::new(0.0, 0.0), -1.0).is_err());
    }

    #[test]
    fn empty_snapshot_is_consistent() {
        let snap = StateSnapshot::new(
            0,
            Vec::new(),
            Vec::new(),
            DeltaResult::unset(0),
            Clustering::new(vec![], vec![], vec![]),
        );
        assert!(snap.is_empty());
        snap.check_consistency();
        assert!(snap
            .eps_neighbors(Point::new(0.0, 0.0), 1.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "rho length")]
    fn mismatched_lengths_panic() {
        let _ = StateSnapshot::new(
            0,
            vec![Point::new(0.0, 0.0)],
            Vec::new(),
            DeltaResult::unset(1),
            Clustering::new(vec![0], vec![0], vec![false]),
        );
    }
}
