//! Timing and memory-accounting helpers shared by all indices and by the
//! experiment harness.
//!
//! Memory accounting is *analytic*: each structure reports the heap bytes it
//! would occupy based on the capacities of its vectors. This mirrors how the
//! paper reports index sizes (Table 3, Figure 9) and keeps the numbers
//! reproducible across platforms and allocators.

// The wall-clock timer and duration formatter used to live here; they are
// now shared workspace-wide from `dpc-obs` and re-exported so existing
// `dpc_core::Timer` / `dpc_core::stats::format_duration` call sites keep
// working.
pub use dpc_obs::{format_duration, Timer};

/// Heap bytes held by a `Vec<T>` (capacity-based, excluding `T`'s own heap).
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Heap bytes held by a `Vec<Vec<T>>` including the outer spine.
pub fn nested_vec_bytes<T>(v: &Vec<Vec<T>>) -> usize {
    vec_bytes(v) + v.iter().map(vec_bytes).sum::<usize>()
}

/// A labelled collection of memory measurements, convertible to a compact
/// human-readable report. Used by the harness to reproduce Table 3 and
/// Figure 9.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryReport {
    entries: Vec<(String, usize)>,
}

impl MemoryReport {
    /// An empty report.
    pub fn new() -> Self {
        MemoryReport::default()
    }

    /// Adds one labelled measurement (bytes).
    pub fn add(&mut self, label: impl Into<String>, bytes: usize) -> &mut Self {
        self.entries.push((label.into(), bytes));
        self
    }

    /// All measurements in insertion order.
    pub fn entries(&self) -> &[(String, usize)] {
        &self.entries
    }

    /// Total bytes across all measurements.
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    /// Total expressed in mebibytes.
    pub fn total_mib(&self) -> f64 {
        bytes_to_mib(self.total_bytes())
    }

    /// Renders the report as aligned `label: size` lines.
    pub fn render(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(0)
            .max("total".len());
        let mut out = String::new();
        for (label, bytes) in &self.entries {
            out.push_str(&format!("{label:<width$}  {}\n", format_bytes(*bytes)));
        }
        out.push_str(&format!(
            "{:<width$}  {}\n",
            "total",
            format_bytes(self.total_bytes())
        ));
        out
    }
}

/// Converts bytes to mebibytes.
pub fn bytes_to_mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Human-readable byte count (`B`, `KiB`, `MiB`, `GiB`).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn timer_measures_nonnegative_time() {
        let t = Timer::start();
        assert!(t.elapsed_secs() >= 0.0);
        assert!(t.elapsed() <= Duration::from_secs(60));
    }

    #[test]
    fn vec_bytes_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
    }

    #[test]
    fn nested_vec_bytes_counts_inner_and_outer() {
        let v: Vec<Vec<u32>> = vec![Vec::with_capacity(4), Vec::with_capacity(8)];
        let expected = vec_bytes(&v) + 4 * 4 + 8 * 4;
        assert_eq!(nested_vec_bytes(&v), expected);
    }

    #[test]
    fn memory_report_totals_and_renders() {
        let mut r = MemoryReport::new();
        r.add("lists", 2 * 1024 * 1024)
            .add("histograms", 512 * 1024);
        assert_eq!(r.total_bytes(), 2 * 1024 * 1024 + 512 * 1024);
        assert!((r.total_mib() - 2.5).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("lists"));
        assert!(text.contains("total"));
    }

    #[test]
    fn format_bytes_picks_sensible_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert!(format_bytes(5 * 1024 * 1024 * 1024).contains("GiB"));
    }

    #[test]
    fn format_duration_scales_units() {
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(format_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(format_duration(Duration::from_micros(7)).ends_with(" µs"));
    }
}
