//! Property-based tests of the core geometric and ordering primitives.
//!
//! The pruning rules of the tree indices are only correct if `min_dist` /
//! `max_dist` really bound every point-to-region distance, and the δ
//! semantics are only well defined if the density order is a strict total
//! order — these are the invariants checked here on random inputs.

use dpc_core::naive_reference::NaiveReferenceIndex;
use dpc_core::{
    assign_clusters, AssignmentOptions, BoundingBox, CenterSelection, Dataset, DecisionGraph,
    DensityOrder, DpcIndex, Point, TieBreak,
};
use proptest::prelude::*;

fn point_strategy() -> impl Strategy<Value = Point> {
    (-1_000.0f64..1_000.0, -1_000.0f64..1_000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn points_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point_strategy(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bbox_contains_all_generating_points(points in points_strategy(50)) {
        let bb = BoundingBox::from_points(&points);
        for p in &points {
            prop_assert!(bb.contains(*p));
        }
    }

    #[test]
    fn min_and_max_dist_bound_every_contained_point(
        points in points_strategy(50),
        query in point_strategy()
    ) {
        let bb = BoundingBox::from_points(&points);
        let dmin = bb.min_dist(query);
        let dmax = bb.max_dist(query);
        prop_assert!(dmin <= dmax + 1e-12);
        for p in &points {
            let d = query.distance(p);
            prop_assert!(d + 1e-9 >= dmin, "point closer than min_dist");
            prop_assert!(d <= dmax + 1e-9, "point farther than max_dist");
        }
    }

    #[test]
    fn union_is_commutative_and_covers_operands(
        a in points_strategy(20),
        b in points_strategy(20)
    ) {
        let ba = BoundingBox::from_points(&a);
        let bb = BoundingBox::from_points(&b);
        let u1 = ba.union(&bb);
        let u2 = bb.union(&ba);
        prop_assert_eq!(u1, u2);
        prop_assert!(u1.contains_box(&ba));
        prop_assert!(u1.contains_box(&bb));
    }

    #[test]
    fn quadrants_cover_all_contained_points(points in points_strategy(60)) {
        let bb = BoundingBox::from_points(&points);
        if bb.is_empty() || bb.width() == 0.0 || bb.height() == 0.0 {
            return Ok(());
        }
        let quadrants = bb.quadrants();
        for p in &points {
            prop_assert!(
                quadrants.iter().any(|q| q.contains(*p)),
                "point {p:?} not covered by any quadrant"
            );
        }
    }

    #[test]
    fn density_order_is_a_strict_total_order(
        raw in prop::collection::vec(0u32..10, 2..40),
        larger_tie in any::<bool>()
    ) {
        // Half-integer densities exercise the weighted-f64 order too.
        let rho: Vec<f64> = raw.iter().map(|&r| r as f64 * 0.5).collect();
        let tie = if larger_tie { TieBreak::LargerIdDenser } else { TieBreak::SmallerIdDenser };
        let order = DensityOrder::with_tie_break(&rho, tie);
        let n = rho.len();
        for a in 0..n {
            prop_assert!(!order.is_denser(a, a), "irreflexivity");
            for b in 0..n {
                if a != b {
                    prop_assert!(
                        order.is_denser(a, b) != order.is_denser(b, a),
                        "totality/antisymmetry for ({a},{b})"
                    );
                }
                for c in 0..n {
                    if order.is_denser(a, b) && order.is_denser(b, c) {
                        prop_assert!(order.is_denser(a, c), "transitivity for ({a},{b},{c})");
                    }
                }
            }
        }
        // The ranking is consistent with the relation.
        let ranked = order.rank_descending();
        for w in ranked.windows(2) {
            prop_assert!(order.is_denser(w[0], w[1]));
        }
    }

    #[test]
    fn reference_index_rho_delta_satisfy_definitions(
        coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..40),
        dc in 0.5f64..150.0
    ) {
        let data = Dataset::from_coords(coords);
        let index = NaiveReferenceIndex::build(&data);
        let (rho, deltas) = index.rho_delta(dc).unwrap();
        let order = DensityOrder::new(&rho);
        // Definition of rho.
        for (p, &rho_p) in rho.iter().enumerate() {
            let expected = (0..data.len())
                .filter(|&q| q != p && data.distance(p, q) < dc)
                .count() as f64;
            prop_assert_eq!(rho_p, expected);
        }
        // Structural validity of delta.
        deltas.validate(&order).unwrap();
        // Minimality of delta.
        for p in 0..data.len() {
            if deltas.mu(p).is_some() {
                for q in 0..data.len() {
                    if q != p && order.is_denser(q, p) {
                        prop_assert!(data.distance(p, q) >= deltas.delta(p) - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn top_k_selection_returns_exactly_k_distinct_centres(
        coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..40),
        dc in 1.0f64..100.0,
        k in 1usize..5
    ) {
        let data = Dataset::from_coords(coords);
        let k = k.min(data.len());
        let index = NaiveReferenceIndex::build(&data);
        let (rho, deltas) = index.rho_delta(dc).unwrap();
        let graph = DecisionGraph::new(rho, &deltas).unwrap();
        let centers = graph.select_centers(&CenterSelection::TopKGamma { k }).unwrap();
        prop_assert_eq!(centers.len(), k);
        let mut sorted = centers.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(centers.iter().all(|&c| c < data.len()));
    }

    #[test]
    fn assignment_is_total_and_respects_centres(
        coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..40),
        dc in 1.0f64..100.0,
        k in 1usize..4
    ) {
        let data = Dataset::from_coords(coords);
        let k = k.min(data.len());
        let index = NaiveReferenceIndex::build(&data);
        let (rho, deltas) = index.rho_delta(dc).unwrap();
        let graph = DecisionGraph::new(rho.clone(), &deltas).unwrap();
        let centers = graph.select_centers(&CenterSelection::TopKGamma { k }).unwrap();
        let order = DensityOrder::new(&rho);
        let clustering = assign_clusters(
            &data, &order, &deltas, &centers, dc, &AssignmentOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(clustering.len(), data.len());
        prop_assert_eq!(clustering.num_clusters(), centers.len());
        // Every label is valid and every centre belongs to its own cluster.
        for p in 0..data.len() {
            prop_assert!(clustering.label(p) < centers.len());
        }
        for (cluster_id, &c) in centers.iter().enumerate() {
            prop_assert_eq!(clustering.label(c), cluster_id);
        }
        // Cluster sizes sum to n.
        prop_assert_eq!(clustering.sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    fn assignment_follows_the_dependent_neighbour_chain(
        coords in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 4..40),
        dc in 1.0f64..100.0
    ) {
        // With a single centre every point must end up in that cluster, and
        // with centres = all points every point keeps its own label — two
        // degenerate cases that pin the chain-following logic.
        let data = Dataset::from_coords(coords);
        let index = NaiveReferenceIndex::build(&data);
        let (rho, deltas) = index.rho_delta(dc).unwrap();
        let order = DensityOrder::new(&rho);

        let single = vec![order.global_peak().unwrap()];
        let clustering = assign_clusters(
            &data, &order, &deltas, &single, dc, &AssignmentOptions::default(),
        )
        .unwrap();
        prop_assert!(clustering.labels().iter().all(|&l| l == 0));

        let all: Vec<usize> = (0..data.len()).collect();
        let clustering = assign_clusters(
            &data, &order, &deltas, &all, dc, &AssignmentOptions::default(),
        )
        .unwrap();
        for p in 0..data.len() {
            prop_assert_eq!(clustering.label(p), p);
        }
    }
}
