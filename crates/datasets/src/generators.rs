//! Synthetic dataset generators.
//!
//! Each generator is deterministic given its seed and returns a
//! [`LabelledDataset`] carrying the generating component of every point. The
//! six named generators ([`s1`], [`query`], [`birch`], [`range`] and
//! [`checkins`] for the two check-in datasets) reproduce the size, domain and
//! density structure of the paper's evaluation datasets; `DESIGN.md` records
//! the substitution rationale.

use dpc_core::{BoundingBox, Dataset, Point};

use crate::ground_truth::LabelledDataset;
use crate::rng::SplitMix64;

/// One Gaussian mixture component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianBlob {
    /// Centre of the component.
    pub center: Point,
    /// Isotropic standard deviation.
    pub std_dev: f64,
    /// Relative weight (need not be normalised).
    pub weight: f64,
}

impl GaussianBlob {
    /// Creates a component with the given centre, spread and weight.
    pub fn new(center: Point, std_dev: f64, weight: f64) -> Self {
        GaussianBlob {
            center,
            std_dev,
            weight,
        }
    }
}

/// Configuration of a Gaussian-mixture dataset with optional uniform
/// background noise.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureConfig {
    /// The mixture components.
    pub blobs: Vec<GaussianBlob>,
    /// Fraction of points drawn uniformly from `domain` instead of from a
    /// component (labelled as noise).
    pub noise_fraction: f64,
    /// Domain for noise points and for clamping component samples.
    pub domain: BoundingBox,
}

impl MixtureConfig {
    /// Creates a mixture configuration without background noise.
    pub fn new(blobs: Vec<GaussianBlob>, domain: BoundingBox) -> Self {
        MixtureConfig {
            blobs,
            noise_fraction: 0.0,
            domain,
        }
    }

    /// Sets the fraction of uniform background noise.
    pub fn with_noise(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "noise fraction must lie in [0, 1]"
        );
        self.noise_fraction = fraction;
        self
    }

    /// Generates `n` points from the mixture.
    pub fn generate(&self, n: usize, seed: u64) -> LabelledDataset {
        assert!(
            !self.blobs.is_empty(),
            "mixture needs at least one component"
        );
        let mut rng = SplitMix64::new(seed);
        let total_weight: f64 = self.blobs.iter().map(|b| b.weight).sum();
        let mut points = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            if self.noise_fraction > 0.0 && rng.next_f64() < self.noise_fraction {
                points.push(sample_uniform(&mut rng, &self.domain));
                labels.push(None);
                continue;
            }
            let component = sample_component(&mut rng, &self.blobs, total_weight);
            let blob = &self.blobs[component];
            let p = Point::new(
                rng.normal_with(blob.center.x, blob.std_dev),
                rng.normal_with(blob.center.y, blob.std_dev),
            );
            points.push(clamp_to(&self.domain, p));
            labels.push(Some(component));
        }
        LabelledDataset::new(Dataset::new(points), labels)
    }
}

fn sample_component(rng: &mut SplitMix64, blobs: &[GaussianBlob], total_weight: f64) -> usize {
    let target = rng.next_f64() * total_weight;
    let mut acc = 0.0;
    for (i, b) in blobs.iter().enumerate() {
        acc += b.weight;
        if acc >= target {
            return i;
        }
    }
    blobs.len() - 1
}

fn sample_uniform(rng: &mut SplitMix64, domain: &BoundingBox) -> Point {
    Point::new(
        rng.uniform(domain.min_x(), domain.max_x()),
        rng.uniform(domain.min_y(), domain.max_y()),
    )
}

fn clamp_to(domain: &BoundingBox, p: Point) -> Point {
    Point::new(
        p.x.clamp(domain.min_x(), domain.max_x()),
        p.y.clamp(domain.min_y(), domain.max_y()),
    )
}

/// Uniformly distributed points over a domain (no cluster structure; every
/// point is labelled as noise).
pub fn uniform(n: usize, domain: BoundingBox, seed: u64) -> LabelledDataset {
    let mut rng = SplitMix64::new(seed);
    let points = (0..n).map(|_| sample_uniform(&mut rng, &domain)).collect();
    LabelledDataset::new(Dataset::new(points), vec![None; n])
}

/// Clusters centred on a regular `rows × cols` grid — the BIRCH benchmark
/// layout. `spread` is the standard deviation of each cluster relative to the
/// grid spacing (the original BIRCH-1 uses well separated clusters, ≈0.2).
pub fn grid_clusters(
    n: usize,
    rows: usize,
    cols: usize,
    domain: BoundingBox,
    spread: f64,
    seed: u64,
) -> LabelledDataset {
    assert!(
        rows > 0 && cols > 0,
        "grid_clusters: grid must be non-empty"
    );
    let dx = domain.width() / cols as f64;
    let dy = domain.height() / rows as f64;
    let std_dev = spread * dx.min(dy);
    let mut blobs = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let center = Point::new(
                domain.min_x() + (c as f64 + 0.5) * dx,
                domain.min_y() + (r as f64 + 0.5) * dy,
            );
            blobs.push(GaussianBlob::new(center, std_dev, 1.0));
        }
    }
    MixtureConfig::new(blobs, domain).generate(n, seed)
}

/// S1-like dataset: 15 Gaussian clusters with moderate overlap on a
/// `[0, 10⁶]²` domain, matching the size and scale of the S1 benchmark of
/// Fränti & Virmajoki used in the paper (5 000 points at `scale = 1`).
pub fn s1(seed: u64, scale: f64) -> LabelledDataset {
    let n = scaled(5_000, scale);
    let domain = BoundingBox::new(0.0, 0.0, 1.0e6, 1.0e6);
    // Cluster centres laid out irregularly (mimicking S1's hand-placed
    // centres) with ~9% overlap between neighbouring clusters.
    let centres = [
        (150_000.0, 180_000.0),
        (370_000.0, 120_000.0),
        (610_000.0, 150_000.0),
        (850_000.0, 200_000.0),
        (120_000.0, 420_000.0),
        (330_000.0, 390_000.0),
        (560_000.0, 430_000.0),
        (800_000.0, 410_000.0),
        (200_000.0, 640_000.0),
        (430_000.0, 620_000.0),
        (660_000.0, 680_000.0),
        (880_000.0, 650_000.0),
        (280_000.0, 860_000.0),
        (540_000.0, 880_000.0),
        (780_000.0, 870_000.0),
    ];
    let blobs = centres
        .iter()
        .map(|&(x, y)| GaussianBlob::new(Point::new(x, y), 32_000.0, 1.0))
        .collect();
    MixtureConfig::new(blobs, domain).generate(n, seed)
}

/// Birch-like dataset: 100 clusters on a 10×10 grid over `[0, 10⁶]²`
/// (100 000 points at `scale = 1`).
pub fn birch(seed: u64, scale: f64) -> LabelledDataset {
    let n = scaled(100_000, scale);
    let domain = BoundingBox::new(0.0, 0.0, 1.0e6, 1.0e6);
    grid_clusters(n, 10, 10, domain, 0.18, seed)
}

/// Query-workload-like dataset: a handful of dense regions over a unit
/// domain with a uniform background, mimicking the spatial attributes of the
/// UCI "Query Analytics" workload used in the paper (50 000 points at
/// `scale = 1`, domain `[0, 1]²`).
pub fn query(seed: u64, scale: f64) -> LabelledDataset {
    let n = scaled(50_000, scale);
    let domain = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
    let blobs = vec![
        GaussianBlob::new(Point::new(0.22, 0.28), 0.045, 3.0),
        GaussianBlob::new(Point::new(0.70, 0.25), 0.055, 2.5),
        GaussianBlob::new(Point::new(0.48, 0.55), 0.040, 2.0),
        GaussianBlob::new(Point::new(0.25, 0.78), 0.050, 2.0),
        GaussianBlob::new(Point::new(0.76, 0.72), 0.060, 2.5),
        GaussianBlob::new(Point::new(0.52, 0.88), 0.035, 1.5),
    ];
    MixtureConfig::new(blobs, domain)
        .with_noise(0.15)
        .generate(n, seed)
}

/// Range-query-like dataset: like [`query`] but larger and on a
/// `[0, 10⁵]²` domain (200 000 points at `scale = 1`), matching the dc range
/// the paper sweeps for the Range dataset (300 … 10 000).
pub fn range(seed: u64, scale: f64) -> LabelledDataset {
    let n = scaled(200_000, scale);
    let domain = BoundingBox::new(0.0, 0.0, 1.0e5, 1.0e5);
    let blobs = vec![
        GaussianBlob::new(Point::new(18_000.0, 22_000.0), 4_200.0, 3.0),
        GaussianBlob::new(Point::new(62_000.0, 18_000.0), 5_000.0, 2.5),
        GaussianBlob::new(Point::new(45_000.0, 52_000.0), 3_800.0, 2.0),
        GaussianBlob::new(Point::new(21_000.0, 76_000.0), 4_600.0, 2.5),
        GaussianBlob::new(Point::new(71_000.0, 68_000.0), 5_400.0, 3.0),
        GaussianBlob::new(Point::new(88_000.0, 42_000.0), 3_200.0, 1.5),
        GaussianBlob::new(Point::new(55_000.0, 85_000.0), 3_600.0, 1.5),
    ];
    MixtureConfig::new(blobs, domain)
        .with_noise(0.18)
        .generate(n, seed)
}

/// Configuration of the check-in (Brightkite/Gowalla-like) simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckinConfig {
    /// Number of hotspot centres (cities).
    pub hotspots: usize,
    /// Zipf exponent controlling how skewed the hotspot popularity is.
    pub zipf_exponent: f64,
    /// Standard deviation of a hotspot, in domain units (degrees).
    pub hotspot_spread: f64,
    /// Fraction of points scattered uniformly over the domain (rural noise).
    pub noise_fraction: f64,
    /// Geographic domain (longitude × latitude).
    pub domain: BoundingBox,
}

impl Default for CheckinConfig {
    fn default() -> Self {
        CheckinConfig {
            hotspots: 60,
            zipf_exponent: 1.1,
            hotspot_spread: 0.35,
            noise_fraction: 0.04,
            domain: BoundingBox::new(-125.0, 24.0, -60.0, 50.0),
        }
    }
}

impl CheckinConfig {
    /// Configuration resembling Brightkite (moderately skewed, ~400 k points
    /// at scale 1).
    pub fn brightkite() -> Self {
        CheckinConfig {
            hotspots: 60,
            zipf_exponent: 1.0,
            ..CheckinConfig::default()
        }
    }

    /// Configuration resembling Gowalla (very skewed, ~1.26 M points at
    /// scale 1).
    pub fn gowalla() -> Self {
        CheckinConfig {
            hotspots: 90,
            zipf_exponent: 1.3,
            hotspot_spread: 0.25,
            noise_fraction: 0.03,
            ..CheckinConfig::default()
        }
    }
}

/// Check-in simulator: heavy-tailed hotspot clusters (cities) with Gaussian
/// spread over a longitude/latitude domain plus uniform rural noise. This is
/// the substitution for the real Brightkite/Gowalla check-in datasets; the
/// skew is what stresses the quadtree balance and the approximate RN-List in
/// the paper's experiments.
pub fn checkins(n: usize, config: &CheckinConfig, seed: u64) -> LabelledDataset {
    assert!(config.hotspots > 0, "checkins: need at least one hotspot");
    let mut rng = SplitMix64::new(seed);
    // Hotspot centres are themselves random but drawn once per dataset.
    let centres: Vec<Point> = (0..config.hotspots)
        .map(|_| sample_uniform(&mut rng, &config.domain))
        .collect();
    // Hotspot spread shrinks slowly with popularity rank: big cities are
    // denser, not just bigger.
    let zipf_total = SplitMix64::zipf_total_weight(config.hotspots, config.zipf_exponent);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        if config.noise_fraction > 0.0 && rng.next_f64() < config.noise_fraction {
            points.push(sample_uniform(&mut rng, &config.domain));
            labels.push(None);
            continue;
        }
        let hotspot = rng.zipf(config.hotspots, config.zipf_exponent, zipf_total);
        let spread =
            config.hotspot_spread * (1.0 + 0.5 * (hotspot as f64 / config.hotspots as f64));
        let centre = centres[hotspot];
        let p = Point::new(
            rng.normal_with(centre.x, spread),
            rng.normal_with(centre.y, spread * 0.8),
        );
        points.push(clamp_to(&config.domain, p));
        labels.push(Some(hotspot));
    }
    LabelledDataset::new(Dataset::new(points), labels)
}

/// The classic "two moons" dataset — two interleaving half circles. Not part
/// of the paper's evaluation, but a standard showcase of what density-based
/// clustering can do that centroid-based clustering cannot; used by the
/// examples.
pub fn two_moons(n: usize, noise: f64, seed: u64) -> LabelledDataset {
    let mut rng = SplitMix64::new(seed);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let t = rng.next_f64() * std::f64::consts::PI;
        let (p, label) = if i % 2 == 0 {
            (Point::new(t.cos(), t.sin()), 0)
        } else {
            (Point::new(1.0 - t.cos(), 0.5 - t.sin()), 1)
        };
        points.push(Point::new(
            p.x + rng.normal_with(0.0, noise),
            p.y + rng.normal_with(0.0, noise),
        ));
        labels.push(Some(label));
    }
    LabelledDataset::new(Dataset::new(points), labels)
}

/// Rounds `base * scale` to a dataset size, never below 16 points.
fn scaled(base: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "dataset scale must be positive");
    ((base as f64 * scale).round() as usize).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_is_deterministic_per_seed() {
        let cfg = MixtureConfig::new(
            vec![GaussianBlob::new(Point::new(0.0, 0.0), 1.0, 1.0)],
            BoundingBox::new(-10.0, -10.0, 10.0, 10.0),
        );
        let a = cfg.generate(100, 7);
        let b = cfg.generate(100, 7);
        let c = cfg.generate(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mixture_labels_match_components() {
        let cfg = MixtureConfig::new(
            vec![
                GaussianBlob::new(Point::new(0.0, 0.0), 0.1, 1.0),
                GaussianBlob::new(Point::new(100.0, 100.0), 0.1, 1.0),
            ],
            BoundingBox::new(-10.0, -10.0, 110.0, 110.0),
        );
        let data = cfg.generate(200, 3);
        for (id, p) in data.dataset.iter() {
            match data.label(id) {
                Some(0) => assert!(p.x < 50.0),
                Some(1) => assert!(p.x > 50.0),
                other => panic!("unexpected label {other:?}"),
            }
        }
    }

    #[test]
    fn noise_fraction_produces_noise_labels() {
        let cfg = MixtureConfig::new(
            vec![GaussianBlob::new(Point::new(0.5, 0.5), 0.01, 1.0)],
            BoundingBox::new(0.0, 0.0, 1.0, 1.0),
        )
        .with_noise(0.5);
        let data = cfg.generate(1000, 11);
        let noise = data.noise_count();
        assert!(noise > 350 && noise < 650, "noise count {noise}");
    }

    #[test]
    fn points_respect_domain() {
        let domain = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        let data = query(5, 0.01);
        for (_, p) in data.dataset.iter() {
            assert!(domain.contains(p), "{p:?} outside domain");
        }
    }

    #[test]
    fn s1_has_15_components_and_right_size() {
        let data = s1(42, 1.0);
        assert_eq!(data.len(), 5000);
        assert_eq!(data.num_components(), 15);
        assert!(data.dataset.bounding_box().max_x() <= 1.0e6);
    }

    #[test]
    fn birch_has_100_components() {
        let data = birch(42, 0.1);
        assert_eq!(data.len(), 10_000);
        assert_eq!(data.num_components(), 100);
    }

    #[test]
    fn scaled_sizes_follow_scale_factor() {
        assert_eq!(query(1, 0.1).len(), 5_000);
        assert_eq!(range(1, 0.05).len(), 10_000);
        assert_eq!(s1(1, 2.0).len(), 10_000);
    }

    #[test]
    fn checkins_is_heavy_tailed() {
        let data = checkins(20_000, &CheckinConfig::gowalla(), 5);
        assert_eq!(data.len(), 20_000);
        // Count points per hotspot; the most popular hotspot must dominate.
        let mut counts = std::collections::HashMap::new();
        for l in data.labels.iter().flatten() {
            *counts.entry(*l).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let min = *counts.values().min().unwrap_or(&0);
        assert!(max > 10 * min.max(1), "max {max} min {min}");
    }

    #[test]
    fn checkins_respects_domain() {
        let cfg = CheckinConfig::brightkite();
        let data = checkins(2_000, &cfg, 9);
        for (_, p) in data.dataset.iter() {
            assert!(cfg.domain.contains(p));
        }
    }

    #[test]
    fn uniform_has_only_noise_labels() {
        let data = uniform(500, BoundingBox::new(0.0, 0.0, 1.0, 1.0), 3);
        assert_eq!(data.noise_count(), 500);
        assert_eq!(data.num_components(), 0);
    }

    #[test]
    fn two_moons_has_two_balanced_components() {
        let data = two_moons(1000, 0.05, 21);
        assert_eq!(data.num_components(), 2);
        let zeros = data.labels.iter().filter(|l| **l == Some(0)).count();
        assert!((400..=600).contains(&zeros));
    }

    #[test]
    fn grid_clusters_components_sit_near_grid_cells() {
        let domain = BoundingBox::new(0.0, 0.0, 100.0, 100.0);
        let data = grid_clusters(2_000, 2, 2, domain, 0.1, 13);
        assert_eq!(data.num_components(), 4);
        // Component 0 is the bottom-left cell (centre 25, 25).
        for (id, p) in data.dataset.iter() {
            if data.label(id) == Some(0) {
                assert!(p.x < 50.0 && p.y < 50.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn invalid_noise_fraction_panics() {
        MixtureConfig::new(
            vec![GaussianBlob::new(Point::origin(), 1.0, 1.0)],
            BoundingBox::new(0.0, 0.0, 1.0, 1.0),
        )
        .with_noise(1.5);
    }
}
