//! Datasets bundled with generator-provided ground-truth labels.
//!
//! The paper's quality experiment (Figure 10) measures the approximate
//! indices against the clustering produced by the *exact* DPC algorithm, not
//! against generator labels; but having the generating cluster of every
//! synthetic point available is useful for sanity checks and for the
//! examples, so the generators return a [`LabelledDataset`].

use dpc_core::{Dataset, PointId};

/// A dataset together with the generating cluster of every point.
///
/// `labels[p]` is `Some(cluster)` for points drawn from a mixture component
/// and `None` for background-noise points.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledDataset {
    /// The points.
    pub dataset: Dataset,
    /// Generating component per point (`None` = background noise).
    pub labels: Vec<Option<usize>>,
}

impl LabelledDataset {
    /// Creates a labelled dataset.
    ///
    /// # Panics
    /// Panics if the number of labels differs from the number of points.
    pub fn new(dataset: Dataset, labels: Vec<Option<usize>>) -> Self {
        assert_eq!(
            dataset.len(),
            labels.len(),
            "LabelledDataset: labels must cover every point"
        );
        LabelledDataset { dataset, labels }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// True when the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Generating component of a point (`None` = noise).
    pub fn label(&self, p: PointId) -> Option<usize> {
        self.labels[p]
    }

    /// Number of distinct generating components (noise excluded).
    pub fn num_components(&self) -> usize {
        let mut seen: Vec<usize> = self.labels.iter().filter_map(|l| *l).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Number of background-noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Drops the labels, keeping only the dataset.
    pub fn into_dataset(self) -> Dataset {
        self.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::Point;

    #[test]
    fn accessors() {
        let d = Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        let l = LabelledDataset::new(d, vec![Some(0), Some(1), None]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.label(0), Some(0));
        assert_eq!(l.label(2), None);
        assert_eq!(l.num_components(), 2);
        assert_eq!(l.noise_count(), 1);
        assert_eq!(l.into_dataset().len(), 3);
    }

    #[test]
    #[should_panic(expected = "labels must cover")]
    fn mismatched_labels_panic() {
        let d = Dataset::new(vec![Point::new(0.0, 0.0)]);
        LabelledDataset::new(d, vec![]);
    }
}
