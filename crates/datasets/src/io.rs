//! Minimal CSV I/O for datasets and clustering labels.
//!
//! The experiment harness writes every generated dataset and every result
//! series to plain CSV so they can be plotted or diffed outside of Rust. The
//! format is deliberately simple: an optional `x,y` header followed by one
//! `x,y` row per point (labels add a third column).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use dpc_core::{Dataset, DpcError, Point, Result};

/// Writes a dataset as `x,y` rows (with header) to `path`.
pub fn write_points_csv(path: &Path, dataset: &Dataset) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "x,y").map_err(DpcError::from)?;
    for (_, p) in dataset.iter() {
        writeln!(w, "{},{}", p.x, p.y).map_err(DpcError::from)?;
    }
    w.flush().map_err(DpcError::from)
}

/// Writes a dataset together with per-point labels as `x,y,label` rows.
/// `label` is empty for `None` (noise / halo).
pub fn write_labels_csv(path: &Path, dataset: &Dataset, labels: &[Option<usize>]) -> Result<()> {
    if dataset.len() != labels.len() {
        return Err(DpcError::LengthMismatch {
            expected: dataset.len(),
            actual: labels.len(),
            what: "labels written to CSV",
        });
    }
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "x,y,label").map_err(DpcError::from)?;
    for (id, p) in dataset.iter() {
        match labels[id] {
            Some(l) => writeln!(w, "{},{},{}", p.x, p.y, l).map_err(DpcError::from)?,
            None => writeln!(w, "{},{},", p.x, p.y).map_err(DpcError::from)?,
        }
    }
    w.flush().map_err(DpcError::from)
}

/// Reads a dataset from a CSV file of `x,y[,...]` rows. A non-numeric first
/// row is treated as a header and skipped; extra columns are ignored.
pub fn read_points_csv(path: &Path) -> Result<Dataset> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut points = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut cols = trimmed.split(',');
        let x = cols.next().map(str::trim);
        let y = cols.next().map(str::trim);
        match (x, y) {
            (Some(xs), Some(ys)) => match (xs.parse::<f64>(), ys.parse::<f64>()) {
                (Ok(x), Ok(y)) => points.push(Point::new(x, y)),
                _ if lineno == 0 => continue, // header row
                _ => {
                    return Err(DpcError::Io(format!(
                        "{}: line {} is not a valid x,y row: {trimmed:?}",
                        path.display(),
                        lineno + 1
                    )))
                }
            },
            _ => {
                return Err(DpcError::Io(format!(
                    "{}: line {} has fewer than two columns",
                    path.display(),
                    lineno + 1
                )))
            }
        }
    }
    Dataset::try_new(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpc-datasets-io-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn points_round_trip() {
        let path = temp_path("roundtrip.csv");
        let data = Dataset::new(vec![Point::new(1.5, -2.25), Point::new(0.0, 3.0)]);
        write_points_csv(&path, &data).unwrap();
        let back = read_points_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.point(0), Point::new(1.5, -2.25));
        assert_eq!(back.point(1), Point::new(0.0, 3.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labels_csv_contains_label_column() {
        let path = temp_path("labels.csv");
        let data = Dataset::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        write_labels_csv(&path, &data, &[Some(3), None]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,y,label"));
        assert!(content.contains("0,0,3"));
        assert!(content.lines().count() == 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labels_length_mismatch_is_an_error() {
        let path = temp_path("mismatch.csv");
        let data = Dataset::new(vec![Point::new(0.0, 0.0)]);
        assert!(write_labels_csv(&path, &data, &[]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_skips_header_and_ignores_extra_columns() {
        let path = temp_path("header.csv");
        std::fs::write(&path, "x,y,label\n1.0,2.0,7\n3.0,4.0,\n").unwrap();
        let data = read_points_csv(&path).unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.point(1), Point::new(3.0, 4.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_garbage_rows() {
        let path = temp_path("garbage.csv");
        std::fs::write(&path, "1.0,2.0\nnot,numbers\n").unwrap();
        assert!(read_points_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_an_io_error() {
        let err = read_points_csv(Path::new("/nonexistent/definitely-missing.csv")).unwrap_err();
        assert!(matches!(err, DpcError::Io(_)));
    }
}
