//! # dpc-datasets
//!
//! Seeded synthetic dataset generators that reproduce the *shape* of the six
//! datasets used in the paper's evaluation (Table 2), plus CSV I/O and a
//! registry that maps dataset names to generators with a configurable scale
//! factor.
//!
//! | Paper dataset | Points | Kind | Generator here |
//! |---------------|--------|------|----------------|
//! | S1            | 5 000  | 15 Gaussian clusters | [`s1`] |
//! | Query         | 50 000 | spatial attributes of a query workload | [`query`] |
//! | Birch         | 100 000| 100 clusters on a 10×10 grid | [`birch`] |
//! | Range         | 200 000| spatial attributes, larger | [`range`] |
//! | Brightkite    | 399 100| real check-ins (skewed hotspots) | [`checkins`] |
//! | Gowalla       | 1 256 680 | real check-ins (very skewed) | [`checkins`] |
//!
//! The real check-in datasets are substituted by a heavy-tailed hotspot
//! simulator (see `DESIGN.md` for the substitution rationale); every
//! generator is fully deterministic given its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod ground_truth;
pub mod io;
pub mod registry;
pub mod rng;
pub mod testsupport;

pub use generators::{
    birch, checkins, grid_clusters, query, range, s1, two_moons, uniform, CheckinConfig,
    GaussianBlob, MixtureConfig,
};
pub use ground_truth::LabelledDataset;
pub use io::{read_points_csv, write_labels_csv, write_points_csv};
pub use registry::{DatasetKind, DatasetSpec, PAPER_DATASETS};
pub use rng::SplitMix64;
