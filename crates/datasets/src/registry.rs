//! Registry of the paper's evaluation datasets and their experiment
//! parameters.
//!
//! Table 2 of the paper lists six datasets; §5.3 and §5.4 sweep dataset-
//! specific values of the cut-off distance `dc`, the histogram bin width `w`
//! and the neighbour threshold `τ`. Those parameter grids live here, next to
//! the generators, so the bench harness and the tests share a single source
//! of truth.

use crate::generators::{birch, checkins, query, range, s1, CheckinConfig};
use crate::ground_truth::LabelledDataset;

/// The six evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// S1: 5 000 points, 15 Gaussian clusters.
    S1,
    /// Query: 50 000 points, spatial attributes of a query workload.
    Query,
    /// Birch: 100 000 points, 100 clusters on a 10×10 grid.
    Birch,
    /// Range: 200 000 points, spatial attributes.
    Range,
    /// Brightkite: 399 100 check-ins (simulated here).
    Brightkite,
    /// Gowalla: 1 256 680 check-ins (simulated here).
    Gowalla,
}

/// All six datasets in the order the paper presents them (non-decreasing
/// size).
pub const PAPER_DATASETS: [DatasetKind; 6] = [
    DatasetKind::S1,
    DatasetKind::Query,
    DatasetKind::Birch,
    DatasetKind::Range,
    DatasetKind::Brightkite,
    DatasetKind::Gowalla,
];

impl DatasetKind {
    /// Dataset name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::S1 => "S1",
            DatasetKind::Query => "Query",
            DatasetKind::Birch => "Birch",
            DatasetKind::Range => "Range",
            DatasetKind::Brightkite => "Brightkite",
            DatasetKind::Gowalla => "Gowalla",
        }
    }

    /// Parses a dataset name (case-insensitive).
    pub fn parse(name: &str) -> Option<DatasetKind> {
        PAPER_DATASETS
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name.trim()))
    }

    /// Number of points in the paper's version of the dataset (Table 2).
    pub fn paper_size(&self) -> usize {
        match self {
            DatasetKind::S1 => 5_000,
            DatasetKind::Query => 50_000,
            DatasetKind::Birch => 100_000,
            DatasetKind::Range => 200_000,
            DatasetKind::Brightkite => 399_100,
            DatasetKind::Gowalla => 1_256_680,
        }
    }

    /// Whether the paper classifies the dataset as synthetic or real.
    pub fn is_synthetic(&self) -> bool {
        !matches!(self, DatasetKind::Brightkite | DatasetKind::Gowalla)
    }

    /// Number of generating components of the dataset: the documented
    /// cluster count for the synthetic benchmarks (S1 has 15 clusters, Birch
    /// has 100, …) and the number of simulated hotspots for the check-in
    /// datasets. Useful as a `k` for Top-k centre selection in experiments
    /// and examples.
    pub fn natural_clusters(&self) -> usize {
        match self {
            DatasetKind::S1 => 15,
            DatasetKind::Query => 6,
            DatasetKind::Birch => 100,
            DatasetKind::Range => 7,
            DatasetKind::Brightkite => 60,
            DatasetKind::Gowalla => 90,
        }
    }

    /// Generates the dataset at a size of `paper_size() * scale` points.
    pub fn generate(&self, seed: u64, scale: f64) -> LabelledDataset {
        match self {
            DatasetKind::S1 => s1(seed, scale),
            DatasetKind::Query => query(seed, scale),
            DatasetKind::Birch => birch(seed, scale),
            DatasetKind::Range => range(seed, scale),
            DatasetKind::Brightkite => {
                let n = scale_size(self.paper_size(), scale);
                checkins(n, &CheckinConfig::brightkite(), seed)
            }
            DatasetKind::Gowalla => {
                let n = scale_size(self.paper_size(), scale);
                checkins(n, &CheckinConfig::gowalla(), seed)
            }
        }
    }

    /// The `dc` values the paper sweeps for this dataset in Figure 6 (the
    /// final "L" column of the figure — "largest", i.e. the bounding-box
    /// diameter — is handled by the harness, not listed here).
    pub fn fig6_dc_values(&self) -> &'static [f64] {
        match self {
            DatasetKind::S1 => &[5_000.0, 10_000.0, 30_000.0, 200_000.0, 500_000.0],
            DatasetKind::Query => &[0.001, 0.005, 0.010, 0.050, 0.100],
            DatasetKind::Birch => &[30_000.0, 150_000.0, 220_000.0, 500_000.0, 800_000.0],
            DatasetKind::Range => &[300.0, 1_200.0, 2_200.0, 5_000.0, 10_000.0],
            DatasetKind::Brightkite => &[0.001, 0.005, 0.010, 0.050, 0.100],
            DatasetKind::Gowalla => &[0.005, 0.010, 0.030, 0.050, 1.000],
        }
    }

    /// A representative `dc` for the headline running-time comparison
    /// (Figure 5), chosen from the middle of the Figure 6 sweep.
    pub fn default_dc(&self) -> f64 {
        self.fig6_dc_values()[2]
    }

    /// Fixed `dc` used by the approximate-index experiments of §5.4
    /// (Figures 8 and 10).
    pub fn approx_dc(&self) -> Option<f64> {
        match self {
            DatasetKind::Birch => Some(100_000.0),
            DatasetKind::Range => Some(1_500.0),
            DatasetKind::Brightkite => Some(0.5),
            DatasetKind::Gowalla => Some(0.001),
            _ => None,
        }
    }

    /// Bin widths swept in Figure 7 (CH Index) for this dataset, if it is one
    /// of the four large datasets the paper uses there.
    pub fn fig7_w_values(&self) -> Option<&'static [f64]> {
        match self {
            DatasetKind::Birch => Some(&[3_000.0, 8_000.0, 30_000.0, 100_000.0]),
            DatasetKind::Range => Some(&[200.0, 600.0, 1_500.0, 2_500.0]),
            DatasetKind::Brightkite => Some(&[0.02, 0.06, 0.12, 0.18]),
            DatasetKind::Gowalla => Some(&[0.005, 0.015, 0.025, 0.040]),
            _ => None,
        }
    }

    /// The three `dc` values per dataset used in Figure 7.
    pub fn fig7_dc_values(&self) -> Option<&'static [f64]> {
        match self {
            DatasetKind::Birch => Some(&[10_000.0, 50_000.0, 220_000.0]),
            DatasetKind::Range => Some(&[150.0, 1_200.0, 2_200.0]),
            DatasetKind::Brightkite => Some(&[0.01, 0.05, 0.10]),
            DatasetKind::Gowalla => Some(&[0.005, 0.010, 0.030]),
            _ => None,
        }
    }

    /// Default histogram bin width `w` used when building the CH Index for
    /// this dataset (§5.2 lists the values the paper selected).
    pub fn default_bin_width(&self) -> f64 {
        match self {
            DatasetKind::S1 => 2_000.0,
            DatasetKind::Query => 0.0006,
            DatasetKind::Birch => 8_000.0,
            DatasetKind::Range => 600.0,
            DatasetKind::Brightkite => 0.02,
            DatasetKind::Gowalla => 0.015,
        }
    }

    /// Neighbour thresholds `τ` swept in Figure 8 (running time of the
    /// approximate indices).
    pub fn fig8_tau_values(&self) -> Option<&'static [f64]> {
        match self {
            DatasetKind::Birch => Some(&[100_000.0, 200_000.0, 250_000.0]),
            DatasetKind::Range => Some(&[500.0, 2_000.0, 2_500.0]),
            DatasetKind::Brightkite => Some(&[0.10, 0.50, 1.00]),
            DatasetKind::Gowalla => Some(&[0.01, 0.03, 0.05]),
            _ => None,
        }
    }

    /// Neighbour thresholds `τ` swept in Figure 10 (clustering quality of the
    /// approximate List Index).
    pub fn fig10_tau_values(&self) -> Option<&'static [f64]> {
        match self {
            DatasetKind::Birch => Some(&[10_000.0, 50_000.0, 80_000.0, 100_000.0, 250_000.0]),
            DatasetKind::Range => Some(&[200.0, 500.0, 800.0, 1_500.0, 2_500.0]),
            DatasetKind::Brightkite => Some(&[0.01, 0.05, 0.10, 0.50, 1.00]),
            DatasetKind::Gowalla => Some(&[0.001, 0.007, 0.010, 0.030, 0.050]),
            _ => None,
        }
    }

    /// The largest τ the paper could fit in memory for this dataset (§5.2,
    /// the values marked `*` in Tables 3–4).
    pub fn largest_tau(&self) -> Option<f64> {
        match self {
            DatasetKind::Birch => Some(250_000.0),
            DatasetKind::Range => Some(2_500.0),
            DatasetKind::Brightkite => Some(1.0),
            DatasetKind::Gowalla => Some(0.05),
            _ => None,
        }
    }

    /// Whether the paper could run the full (non-approximate) list-based
    /// indices and the naive DPC baseline on this dataset (only the two
    /// smallest datasets fit in 16 GB).
    pub fn full_list_feasible(&self) -> bool {
        matches!(self, DatasetKind::S1 | DatasetKind::Query)
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified dataset instance: which dataset, at what scale, with
/// which seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which of the paper's datasets.
    pub kind: DatasetKind,
    /// Size multiplier relative to the paper (1.0 = paper size).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates a spec.
    pub fn new(kind: DatasetKind, scale: f64, seed: u64) -> Self {
        DatasetSpec { kind, scale, seed }
    }

    /// Number of points this spec will generate.
    pub fn size(&self) -> usize {
        scale_size(self.kind.paper_size(), self.scale).max(16)
    }

    /// Generates the dataset.
    pub fn generate(&self) -> LabelledDataset {
        self.kind.generate(self.seed, self.scale)
    }

    /// A short identifier, e.g. `birch@0.10`.
    pub fn label(&self) -> String {
        format!("{}@{:.2}", self.kind.name().to_lowercase(), self.scale)
    }
}

fn scale_size(base: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "dataset scale must be positive");
    ((base as f64 * scale).round() as usize).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_table2() {
        assert_eq!(DatasetKind::S1.paper_size(), 5_000);
        assert_eq!(DatasetKind::Query.paper_size(), 50_000);
        assert_eq!(DatasetKind::Birch.paper_size(), 100_000);
        assert_eq!(DatasetKind::Range.paper_size(), 200_000);
        assert_eq!(DatasetKind::Brightkite.paper_size(), 399_100);
        assert_eq!(DatasetKind::Gowalla.paper_size(), 1_256_680);
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in PAPER_DATASETS {
            assert_eq!(DatasetKind::parse(kind.name()), Some(kind));
            assert_eq!(DatasetKind::parse(&kind.name().to_lowercase()), Some(kind));
        }
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn natural_clusters_match_generator_documentation() {
        assert_eq!(DatasetKind::S1.natural_clusters(), 15);
        assert_eq!(DatasetKind::Birch.natural_clusters(), 100);
        for kind in PAPER_DATASETS {
            assert!(kind.natural_clusters() >= 2);
        }
    }

    #[test]
    fn every_dataset_has_five_fig6_dc_values() {
        for kind in PAPER_DATASETS {
            assert_eq!(kind.fig6_dc_values().len(), 5, "{kind}");
            assert!(kind.default_dc() > 0.0);
        }
    }

    #[test]
    fn fig7_to_10_parameters_only_for_large_datasets() {
        for kind in [DatasetKind::S1, DatasetKind::Query] {
            assert!(kind.fig7_w_values().is_none());
            assert!(kind.fig8_tau_values().is_none());
            assert!(kind.fig10_tau_values().is_none());
            assert!(kind.approx_dc().is_none());
            assert!(kind.full_list_feasible());
        }
        for kind in [
            DatasetKind::Birch,
            DatasetKind::Range,
            DatasetKind::Brightkite,
            DatasetKind::Gowalla,
        ] {
            assert!(kind.fig7_w_values().is_some(), "{kind}");
            assert!(kind.fig8_tau_values().is_some(), "{kind}");
            assert!(kind.fig10_tau_values().is_some(), "{kind}");
            assert!(kind.approx_dc().is_some(), "{kind}");
            assert!(!kind.full_list_feasible());
        }
    }

    #[test]
    fn tau_values_bracket_the_fixed_dc() {
        // For the quality experiment to show the collapse below dc, the τ
        // sweep must contain values below and above the fixed dc.
        for kind in [
            DatasetKind::Birch,
            DatasetKind::Range,
            DatasetKind::Brightkite,
        ] {
            let dc = kind.approx_dc().unwrap();
            let taus = kind.fig10_tau_values().unwrap();
            assert!(taus.iter().any(|&t| t < dc), "{kind}");
            assert!(taus.iter().any(|&t| t >= dc), "{kind}");
        }
    }

    #[test]
    fn spec_generates_scaled_sizes() {
        let spec = DatasetSpec::new(DatasetKind::S1, 0.1, 7);
        assert_eq!(spec.size(), 500);
        let data = spec.generate();
        assert_eq!(data.len(), 500);
        assert_eq!(spec.label(), "s1@0.10");
    }

    #[test]
    fn generate_is_deterministic() {
        let a = DatasetKind::Query.generate(3, 0.01);
        let b = DatasetKind::Query.generate(3, 0.01);
        assert_eq!(a, b);
    }

    #[test]
    fn checkin_kinds_generate_within_us_domain() {
        let data = DatasetKind::Brightkite.generate(1, 0.001);
        let bb = data.dataset.bounding_box();
        assert!(bb.min_x() >= -125.0 && bb.max_x() <= -60.0);
        assert!(bb.min_y() >= 24.0 && bb.max_y() <= 50.0);
    }
}
