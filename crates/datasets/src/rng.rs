//! A tiny, fully deterministic pseudo-random number generator.
//!
//! The generators in this crate must produce exactly the same dataset for the
//! same seed on every platform and for every dependency version, because the
//! experiment harness quotes the generated dataset sizes and densities in
//! `EXPERIMENTS.md`. We therefore implement SplitMix64 (a well-known, tiny,
//! high-quality 64-bit mixer) plus the handful of distributions the
//! generators need (uniform, normal via Box–Muller, Zipf-like power-law),
//! rather than relying on an external RNG whose stream could change between
//! versions.

/// SplitMix64 pseudo-random number generator.
///
/// Passes BigCrush when used as a 64-bit generator; more than adequate for
/// driving synthetic benchmark data.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Two generators created with the same
    /// seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform: lo must not exceed hi");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize: empty range");
        // Multiplication-based bounded generation (Lemire); the tiny modulo
        // bias of the simpler approach would be irrelevant here, but this is
        // just as cheap.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal variate via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = loop {
            let u = self.next_f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Samples an index in `[0, n)` from a Zipf-like power-law distribution
    /// with exponent `s` (larger `s` = more skew). Index 0 is the most
    /// probable outcome.
    ///
    /// Uses inverse-CDF sampling on the pre-normalised weights, computed on
    /// the fly in `O(n)`; the dataset generators only call this once per
    /// point with small `n` (number of hotspots), so this is fast enough.
    pub fn zipf(&mut self, n: usize, s: f64, total_weight: f64) -> usize {
        assert!(n > 0, "zipf: empty range");
        let target = self.next_f64() * total_weight;
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            if acc >= target {
                return k;
            }
        }
        n - 1
    }

    /// Total weight of the Zipf distribution over `n` items with exponent
    /// `s`; pass the result to [`SplitMix64::zipf`] to avoid recomputing it
    /// for every sample.
    pub fn zipf_total_weight(n: usize, s: f64) -> f64 {
        (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).sum()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn uniform_usize_covers_range() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.uniform_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut r = SplitMix64::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut r = SplitMix64::new(17);
        let n = 20_000;
        let mean_target = 10.0;
        let sd_target = 3.0;
        let samples: Vec<f64> = (0..n)
            .map(|_| r.normal_with(mean_target, sd_target))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - mean_target).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_towards_small_indices() {
        let mut r = SplitMix64::new(19);
        let n = 10;
        let w = SplitMix64::zipf_total_weight(n, 1.2);
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            counts[r.zipf(n, 1.2, w)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > counts[n - 1] * 3);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(23);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_usize_rejects_zero() {
        SplitMix64::new(1).uniform_usize(0);
    }
}
