//! Deterministic point-set generators shared by the workspace's test suites.
//!
//! Before this module existed, every test file rolled its own point
//! distributions — the tree-index property tests drew uniform coordinates,
//! the streaming equivalence suite used a coarse integer lattice, and the
//! index unit tests sampled the paper-shaped generators — so "the k-d tree
//! is tested on skewed data" and "the streaming engine is tested on skewed
//! data" quietly meant different things. All suites now draw from the four
//! distributions here, each chosen to stress a different structural failure
//! mode:
//!
//! * [`TestDistribution::Uniform`] — no structure; the baseline case.
//! * [`TestDistribution::Clustered`] — Gaussian blobs; stresses density
//!   pruning and centre selection.
//! * [`TestDistribution::Skewed`] — power-law hotspots; stresses indexes
//!   whose partitioning assumes uniformity (the paper's core argument for
//!   hierarchical indexes over grids).
//! * [`TestDistribution::Collinear`] — lattice points on a line; produces
//!   zero-area bounding boxes, duplicate coordinates and mass ties, the
//!   degenerate geometry that breaks naive median splits and area-based
//!   R-tree heuristics.
//!
//! Everything is seeded [`SplitMix64`], so a failing case reproduces from
//! its seed alone. The [`lattice_point`] helper is the streaming suite's
//! coarse grid: coincident points and exact ρ/δ/γ ties — the cases where
//! only a consistent tie-break keeps incremental and batch in agreement —
//! occur constantly rather than never.

use dpc_core::{Dataset, Point};

use crate::rng::SplitMix64;

/// The point distributions shared by the test suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestDistribution {
    /// Uniform over `[-500, 500]²`.
    Uniform,
    /// `max(1, n/20)` Gaussian blobs with σ = 25 on uniform centres.
    Clustered,
    /// Eight power-law-weighted hotspots of sharply varying spread.
    Skewed,
    /// Lattice points on a noisy line (duplicates and zero-height boxes).
    Collinear,
}

/// All four distributions, for suites that sweep them.
pub const ALL_DISTRIBUTIONS: [TestDistribution; 4] = [
    TestDistribution::Uniform,
    TestDistribution::Clustered,
    TestDistribution::Skewed,
    TestDistribution::Collinear,
];

/// `n` points drawn from `dist`, fully determined by `seed`.
pub fn test_points(dist: TestDistribution, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SplitMix64::new(seed ^ 0xD157_0000);
    let mut out = Vec::with_capacity(n);
    match dist {
        TestDistribution::Uniform => {
            for _ in 0..n {
                out.push(Point::new(
                    rng.uniform(-500.0, 500.0),
                    rng.uniform(-500.0, 500.0),
                ));
            }
        }
        TestDistribution::Clustered => {
            let k = (n / 20).max(1);
            let centers: Vec<Point> = (0..k)
                .map(|_| Point::new(rng.uniform(-400.0, 400.0), rng.uniform(-400.0, 400.0)))
                .collect();
            for _ in 0..n {
                let c = centers[rng.uniform_usize(k)];
                out.push(Point::new(
                    rng.normal_with(c.x, 25.0),
                    rng.normal_with(c.y, 25.0),
                ));
            }
        }
        TestDistribution::Skewed => {
            let hotspots = 8;
            let w = SplitMix64::zipf_total_weight(hotspots, 1.2);
            let centers: Vec<Point> = (0..hotspots)
                .map(|_| Point::new(rng.uniform(-450.0, 450.0), rng.uniform(-450.0, 450.0)))
                .collect();
            for _ in 0..n {
                let h = rng.zipf(hotspots, 1.2, w);
                // The busiest hotspot is also the tightest: density varies by
                // orders of magnitude across the domain.
                let sigma = 2.0 * (1 << h.min(8)) as f64;
                let c = centers[h];
                out.push(Point::new(
                    rng.normal_with(c.x, sigma),
                    rng.normal_with(c.y, sigma),
                ));
            }
        }
        TestDistribution::Collinear => {
            for _ in 0..n {
                // Integer parameter on a line: duplicates are common, the
                // y-extent of any subset is 0 or near-0.
                let t = rng.uniform_usize(n.max(2)) as f64;
                out.push(Point::new(t * 3.0 - 500.0, t * 0.5));
            }
        }
    }
    out
}

/// [`test_points`] packed into a [`Dataset`].
pub fn test_dataset(dist: TestDistribution, n: usize, seed: u64) -> Dataset {
    Dataset::new(test_points(dist, n, seed))
}

/// The streaming suite's coarse lattice: half-unit spacing, so a `dc` under
/// 1.0 spans a couple of cells and coincident points are routine.
pub fn lattice_point(ix: u32, iy: u32) -> Point {
    Point::new(ix as f64 * 0.5, iy as f64 * 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_sized() {
        for dist in ALL_DISTRIBUTIONS {
            let a = test_points(dist, 100, 7);
            let b = test_points(dist, 100, 7);
            assert_eq!(a.len(), 100);
            assert_eq!(a, b, "{dist:?} not deterministic");
            let c = test_points(dist, 100, 8);
            assert_ne!(a, c, "{dist:?} ignores its seed");
            assert!(a.iter().all(|p| p.is_finite()), "{dist:?} non-finite point");
        }
    }

    #[test]
    fn collinear_points_have_duplicates_and_lie_on_a_line() {
        let pts = test_points(TestDistribution::Collinear, 200, 3);
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0;
        for p in &pts {
            if !seen.insert((p.x.to_bits(), p.y.to_bits())) {
                dups += 1;
            }
        }
        assert!(dups > 0, "no duplicates in the collinear distribution");
        for p in &pts {
            // y = (x + 500) / 6.
            assert!((p.y - (p.x + 500.0) / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_distribution_concentrates_mass() {
        let pts = test_points(TestDistribution::Skewed, 400, 11);
        let data = Dataset::new(pts);
        let bb = data.bounding_box();
        // A tight busiest hotspot means many points share a small region:
        // count neighbours of the densest point within 1% of the diameter.
        let r = bb.diagonal() * 0.01;
        let best = (0..data.len())
            .map(|p| (0..data.len()).filter(|&q| data.distance(p, q) < r).count())
            .max()
            .unwrap();
        assert!(best > 40, "no dense hotspot: best = {best}");
    }

    #[test]
    fn lattice_is_coarse() {
        assert_eq!(lattice_point(0, 0), Point::new(0.0, 0.0));
        assert_eq!(lattice_point(3, 1), Point::new(1.5, 0.5));
    }
}
