//! Property-based tests of the dataset generators: determinism, domain
//! containment, label validity and scale behaviour.

use dpc_core::BoundingBox;
use dpc_datasets::generators::{checkins, grid_clusters, two_moons, uniform, CheckinConfig};
use dpc_datasets::{DatasetKind, DatasetSpec, SplitMix64, PAPER_DATASETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_paper_generator_is_deterministic_and_in_domain(
        seed in 0u64..1_000,
        scale in 0.001f64..0.01
    ) {
        for kind in PAPER_DATASETS {
            let a = kind.generate(seed, scale);
            let b = kind.generate(seed, scale);
            prop_assert_eq!(&a, &b, "{} must be deterministic", kind);
            // Every label refers to a component that exists, or is noise.
            let components = a.num_components();
            for l in a.labels.iter().flatten() {
                prop_assert!(*l < components.max(*l + 1));
            }
            // All coordinates are finite (Dataset construction enforces it,
            // but assert the bounding box is sane too).
            let bb = a.dataset.bounding_box();
            prop_assert!(bb.diagonal().is_finite());
        }
    }

    #[test]
    fn different_seeds_give_different_data(seed in 0u64..1_000) {
        let a = DatasetKind::Query.generate(seed, 0.005);
        let b = DatasetKind::Query.generate(seed + 1, 0.005);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn scaled_sizes_are_proportional(scale in 0.002f64..0.05) {
        for kind in PAPER_DATASETS {
            let spec = DatasetSpec::new(kind, scale, 1);
            let expected = ((kind.paper_size() as f64 * scale).round() as usize).max(16);
            prop_assert_eq!(spec.size(), expected);
            prop_assert_eq!(spec.generate().len(), expected);
        }
    }

    #[test]
    fn uniform_points_stay_inside_their_domain(
        n in 1usize..500,
        seed in 0u64..100,
        x0 in -100.0f64..0.0,
        x1 in 1.0f64..100.0
    ) {
        let domain = BoundingBox::new(x0, x0, x1, x1);
        let data = uniform(n, domain, seed);
        prop_assert_eq!(data.len(), n);
        prop_assert_eq!(data.noise_count(), n);
        for (_, p) in data.dataset.iter() {
            prop_assert!(domain.contains(p));
        }
    }

    #[test]
    fn grid_clusters_use_every_cell(rows in 1usize..5, cols in 1usize..5, seed in 0u64..50) {
        let n = 200 * rows * cols;
        let domain = BoundingBox::new(0.0, 0.0, 1000.0, 1000.0);
        let data = grid_clusters(n, rows, cols, domain, 0.1, seed);
        prop_assert_eq!(data.num_components(), rows * cols);
        for (_, p) in data.dataset.iter() {
            prop_assert!(domain.contains(p));
        }
    }

    #[test]
    fn checkins_respect_their_domain_and_hotspot_count(
        n in 100usize..2_000,
        seed in 0u64..50,
        hotspots in 2usize..30
    ) {
        let config = CheckinConfig { hotspots, ..CheckinConfig::default() };
        let data = checkins(n, &config, seed);
        prop_assert_eq!(data.len(), n);
        prop_assert!(data.num_components() <= hotspots);
        for (id, p) in data.dataset.iter() {
            prop_assert!(config.domain.contains(p));
            if let Some(l) = data.label(id) {
                prop_assert!(l < hotspots);
            }
        }
    }

    #[test]
    fn two_moons_labels_are_binary_and_balanced(n in 50usize..1_000, seed in 0u64..50) {
        let data = two_moons(n, 0.05, seed);
        prop_assert_eq!(data.len(), n);
        let ones = data.labels.iter().filter(|l| **l == Some(1)).count();
        let zeros = data.labels.iter().filter(|l| **l == Some(0)).count();
        prop_assert_eq!(ones + zeros, n);
        prop_assert!((ones as i64 - zeros as i64).abs() <= 1);
    }

    #[test]
    fn splitmix_uniform_usize_is_unbiased_enough(seed in 0u64..1_000, n in 2usize..20) {
        let mut rng = SplitMix64::new(seed);
        let samples = 2_000;
        let mut counts = vec![0usize; n];
        for _ in 0..samples {
            counts[rng.uniform_usize(n)] += 1;
        }
        let expected = samples as f64 / n as f64;
        for &c in &counts {
            prop_assert!((c as f64) > expected * 0.4, "bucket badly under-filled: {counts:?}");
            prop_assert!((c as f64) < expected * 1.8, "bucket badly over-filled: {counts:?}");
        }
    }

    #[test]
    fn splitmix_normal_is_symmetric_around_the_mean(seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        let n = 4_000;
        let positive = (0..n).filter(|_| rng.normal() > 0.0).count();
        let fraction = positive as f64 / n as f64;
        prop_assert!((0.42..0.58).contains(&fraction), "fraction positive = {fraction}");
    }
}
