//! The Cumulative Histogram (CH) Index (§3.2 of the paper).
//!
//! On top of every object's N-List the CH Index stores a cumulative
//! histogram with bin width `w`: bin `k` records how many neighbours lie at
//! distance `< (k+1)·w` (Algorithm 3). The ρ-query (Algorithm 4) first jumps
//! to the bin containing `dc` in `O(1)` and then searches only the list
//! section covered by that single bin, so with a well chosen `w` the per-
//! object cost is constant and the whole ρ-query is `O(n)` (Theorem 2).
//!
//! The δ-query is unchanged from the List Index — the histogram only helps
//! ρ — and the approximate RN-List variant composes with the histogram in the
//! obvious way (`τ` truncates the lists, the histogram covers what remains).

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::stats::nested_vec_bytes;
use dpc_core::{
    exec, Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, PointId, Result,
    Rho, TieBreak, Timer,
};

use crate::nlist::NeighborLists;

/// Configuration of a [`ChIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChIndexConfig {
    /// Histogram bin width `w`. Smaller bins mean faster ρ-queries and more
    /// memory (Figure 7 / Figure 9a of the paper).
    pub bin_width: f64,
    /// Neighbour threshold `τ` (`None` = exact index).
    pub tau: Option<f64>,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Worker threads for construction (`None` = all available cores).
    pub threads: Option<usize>,
}

impl ChIndexConfig {
    /// Configuration with the given bin width and defaults otherwise.
    pub fn new(bin_width: f64) -> Self {
        ChIndexConfig {
            bin_width,
            tau: None,
            tie_break: TieBreak::default(),
            threads: None,
        }
    }

    /// Sets the neighbour threshold `τ`.
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = Some(tau);
        self
    }
}

/// The Cumulative Histogram Index.
#[derive(Debug, Clone)]
pub struct ChIndex {
    dataset: Dataset,
    lists: NeighborLists,
    /// `histograms[p][k]` = number of neighbours of `p` with
    /// `dist < (k+1) * bin_width`.
    histograms: Vec<Vec<u32>>,
    bin_width: f64,
    tie: TieBreak,
    construction_time: Duration,
}

impl ChIndex {
    /// Builds an exact CH Index with the given bin width.
    pub fn build(dataset: &Dataset, bin_width: f64) -> Self {
        Self::with_config(dataset, &ChIndexConfig::new(bin_width))
    }

    /// Builds the approximate variant: RN-Lists truncated at `tau`, histogram
    /// over the truncated lists.
    pub fn build_approx(dataset: &Dataset, bin_width: f64, tau: f64) -> Self {
        Self::with_config(dataset, &ChIndexConfig::new(bin_width).with_tau(tau))
    }

    /// Builds the index with an explicit configuration.
    ///
    /// # Panics
    /// Panics if the bin width is not a positive finite number.
    pub fn with_config(dataset: &Dataset, config: &ChIndexConfig) -> Self {
        assert!(
            config.bin_width.is_finite() && config.bin_width > 0.0,
            "ChIndex: bin width must be positive and finite, got {}",
            config.bin_width
        );
        let timer = Timer::start();
        let threads = config.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let lists = NeighborLists::build_with_threads(dataset, config.tau, threads);
        let histograms = build_histograms(&lists, config.bin_width);
        ChIndex {
            dataset: dataset.clone(),
            lists,
            histograms,
            bin_width: config.bin_width,
            tie: config.tie_break,
            construction_time: timer.elapsed(),
        }
    }

    /// Builds a CH Index reusing already-constructed neighbour lists. This is
    /// how the paper reports CH construction cost: only the extra histogram-
    /// building time on top of an existing List Index.
    pub fn from_lists(dataset: &Dataset, lists: NeighborLists, bin_width: f64) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "ChIndex: bin width must be positive and finite, got {bin_width}"
        );
        assert_eq!(lists.len(), dataset.len(), "lists must cover the dataset");
        let timer = Timer::start();
        let histograms = build_histograms(&lists, bin_width);
        ChIndex {
            dataset: dataset.clone(),
            lists,
            histograms,
            bin_width,
            tie: TieBreak::default(),
            construction_time: timer.elapsed(),
        }
    }

    /// The histogram bin width `w`.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// The neighbour threshold used at construction (`None` = exact).
    pub fn tau(&self) -> Option<f64> {
        self.lists.tau()
    }

    /// The underlying neighbour lists.
    pub fn lists(&self) -> &NeighborLists {
        &self.lists
    }

    /// Memory of the histograms alone (the "extra cost over the List Index"
    /// reported in Table 3 / Figure 9a).
    pub fn histogram_memory_bytes(&self) -> usize {
        nested_vec_bytes(&self.histograms)
    }

    /// Total number of histogram bins across all objects.
    pub fn total_bins(&self) -> usize {
        self.histograms.iter().map(Vec::len).sum()
    }

    /// ρ of a single object — Algorithm 4, one iteration.
    fn rho_one(&self, p: PointId, dc: f64) -> Rho {
        let list = self.lists.list(p);
        if list.is_empty() {
            return 0.0;
        }
        let hist = &self.histograms[p];
        let bin = (dc / self.bin_width).floor();
        if bin >= hist.len() as f64 {
            // dc reaches past the last bin: every stored neighbour counts.
            return list.len() as Rho;
        }
        let bin = bin as usize;
        let prev = if bin == 0 { 0 } else { hist[bin - 1] as usize };
        let last = hist[bin] as usize;
        // Only the section [prev, last) of the list can contain neighbours
        // with dist in [bin*w, dc); everything before `prev` is already
        // strictly below bin*w <= dc.
        let extra = list[prev..last].partition_point(|nb| nb.dist < dc);
        (prev + extra) as Rho
    }
}

/// Builds the per-object cumulative histograms (Algorithm 3).
fn build_histograms(lists: &NeighborLists, bin_width: f64) -> Vec<Vec<u32>> {
    let mut histograms = Vec::with_capacity(lists.len());
    for p in 0..lists.len() {
        let list = lists.list(p);
        let mut hist: Vec<u32> = Vec::new();
        let mut upper = bin_width;
        let mut i = 0usize;
        while i < list.len() {
            if list[i].dist < upper {
                i += 1;
            } else {
                hist.push(i as u32);
                upper += bin_width;
            }
        }
        // Last bin: total number of stored neighbours.
        hist.push(i as u32);
        hist.shrink_to_fit();
        histograms.push(hist);
    }
    histograms
}

impl DpcIndex for ChIndex {
    fn name(&self) -> &'static str {
        if self.lists.tau().is_some() {
            "ch-approx"
        } else {
            "ch"
        }
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_policy(dc, ExecPolicy::Sequential)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_policy(dc, rho, ExecPolicy::Sequential)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        validate_dc(dc)?;
        let mut rho = vec![0 as Rho; self.dataset.len()];
        exec::fill_slice(&mut rho, policy, || (), |p, ()| self.rho_one(p, dc));
        Ok(rho)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.tie);
        Ok(self.lists.delta_by_scan_policy(&order, policy))
    }

    fn memory_bytes(&self) -> usize {
        self.lists.memory_bytes() + nested_vec_bytes(&self.histograms) + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("total_entries", self.lists.total_entries() as u64)
            .with_counter("total_bins", self.total_bins() as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.tie
    }

    fn is_exact(&self) -> bool {
        self.lists.tau().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListIndex;
    use dpc_baseline::LeanDpc;
    use dpc_datasets::generators::{checkins, query, s1, CheckinConfig};

    fn assert_matches_baseline(data: &Dataset, index: &ChIndex, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = index.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(
            r1,
            r2,
            "rho mismatch at dc = {dc} (w = {})",
            index.bin_width()
        );
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!((d1.delta(p) - d2.delta(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_ch_matches_baseline_for_various_bin_widths() {
        let data = s1(61, 0.05).into_dataset(); // 250 points
        for w in [2_000.0, 17_000.0, 120_000.0, 2_000_000.0] {
            let index = ChIndex::build(&data, w);
            for dc in [5_000.0, 34_000.0, 200_000.0, 1_500_000.0] {
                assert_matches_baseline(&data, &index, dc);
            }
        }
    }

    #[test]
    fn dc_equal_to_bin_boundary_is_handled() {
        let data = query(67, 0.004).into_dataset(); // 200 points
        let w = 0.01;
        let index = ChIndex::build(&data, w);
        for k in 1..5 {
            assert_matches_baseline(&data, &index, k as f64 * w);
        }
    }

    #[test]
    fn dc_larger_than_any_distance_counts_everything() {
        let data = query(71, 0.002).into_dataset(); // 100 points
        let index = ChIndex::build(&data, 0.05);
        let rho = index.rho(10.0).unwrap();
        assert!(rho.iter().all(|&r| r as usize == data.len() - 1));
    }

    #[test]
    fn rho_agrees_with_list_index_on_skewed_checkin_data() {
        let data = checkins(300, &CheckinConfig::gowalla(), 5).into_dataset();
        let ch = ChIndex::build(&data, 0.015);
        let list = ListIndex::build(&data);
        for dc in [0.005, 0.03, 0.5, 10.0] {
            assert_eq!(ch.rho(dc).unwrap(), list.rho(dc).unwrap(), "dc = {dc}");
        }
    }

    #[test]
    fn smaller_bins_use_more_histogram_memory() {
        let data = s1(73, 0.06).into_dataset();
        let fine = ChIndex::build(&data, 5_000.0);
        let coarse = ChIndex::build(&data, 100_000.0);
        assert!(fine.histogram_memory_bytes() > coarse.histogram_memory_bytes());
        assert!(fine.total_bins() > coarse.total_bins());
    }

    #[test]
    fn ch_memory_exceeds_list_memory_by_the_histograms() {
        let data = s1(79, 0.05).into_dataset();
        let list = ListIndex::build(&data);
        let ch = ChIndex::build(&data, 20_000.0);
        assert!(ch.memory_bytes() > list.memory_bytes());
        assert!(ch.memory_bytes() - list.memory_bytes() <= ch.histogram_memory_bytes() + 64);
    }

    #[test]
    fn from_lists_reuses_existing_lists() {
        let data = s1(83, 0.04).into_dataset();
        let lists = NeighborLists::build(&data, None);
        let ch = ChIndex::from_lists(&data, lists, 10_000.0);
        assert_matches_baseline(&data, &ch, 30_000.0);
    }

    #[test]
    fn approximate_ch_undercounts_beyond_tau() {
        let data = s1(89, 0.05).into_dataset();
        let tau = 40_000.0;
        let approx = ChIndex::build_approx(&data, 10_000.0, tau);
        let exact = ChIndex::build(&data, 10_000.0);
        assert_eq!(approx.rho(20_000.0).unwrap(), exact.rho(20_000.0).unwrap());
        let ra = approx.rho(300_000.0).unwrap();
        let re = exact.rho(300_000.0).unwrap();
        assert!(ra.iter().zip(&re).all(|(a, e)| a <= e));
        assert!(ra.iter().zip(&re).any(|(a, e)| a < e));
        assert!(!approx.is_exact());
        assert_eq!(approx.name(), "ch-approx");
    }

    #[test]
    fn stats_report_bins_and_entries() {
        let data = s1(97, 0.02).into_dataset(); // 100 points
        let ch = ChIndex::build(&data, 50_000.0);
        let stats = ch.stats();
        assert_eq!(stats.counter("total_entries"), Some((100 * 99) as u64));
        assert!(stats.counter("total_bins").unwrap() >= 100);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let data = s1(3, 0.01).into_dataset();
        let ch = ChIndex::build(&data, 1_000.0);
        assert!(ch.rho(-5.0).is_err());
        assert!(ch.delta(1.0, &[1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_panics() {
        ChIndex::build(&Dataset::new(vec![]), 0.0);
    }
}
