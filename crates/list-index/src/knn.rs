//! A k-nearest-neighbour density variant of DPC (extension).
//!
//! The paper's related work (Wang & Song, *Automatic clustering via outward
//! statistical testing on density metrics*, TKDE 2016 — reference \[27\])
//! replaces the cut-off-distance density with a kNN-based density: dense
//! points have their k nearest neighbours very close. This removes the `dc`
//! parameter entirely (only `k` remains) and is a natural extension of the
//! List Index, whose sorted N-Lists give the k nearest neighbours of every
//! point for free.
//!
//! The density score used here is `k / Σ_{i≤k} dist(p, nn_i(p))` — the
//! inverse of the mean distance to the k nearest neighbours. Scores are
//! converted to dense ranks so that the integer-density machinery of
//! `dpc-core` (the [`DensityOrder`], the δ-scan, the decision graph and the
//! assignment step) is reused unchanged.

use std::time::Duration;

use dpc_core::{
    assign_clusters, exec, AssignmentOptions, CenterSelection, Clustering, Dataset, DecisionGraph,
    DeltaResult, DensityOrder, DpcError, ExecPolicy, PointId, Result, Rho, TieBreak, Timer,
};

use crate::nlist::NeighborLists;

/// kNN-density DPC on top of per-object neighbour lists.
#[derive(Debug, Clone)]
pub struct KnnDpc {
    dataset: Dataset,
    lists: NeighborLists,
    tie: TieBreak,
    construction_time: Duration,
}

impl KnnDpc {
    /// Builds the kNN-DPC structure (full N-Lists).
    pub fn build(dataset: &Dataset) -> Self {
        let timer = Timer::start();
        let lists = NeighborLists::build(dataset, None);
        KnnDpc {
            dataset: dataset.clone(),
            lists,
            tie: TieBreak::default(),
            construction_time: timer.elapsed(),
        }
    }

    /// Reuses already-built neighbour lists (they must be full N-Lists,
    /// i.e. built without a `τ` threshold, so that every k is answerable).
    ///
    /// # Panics
    /// Panics if the lists were built with a threshold or cover a different
    /// number of points than the dataset.
    pub fn from_lists(dataset: &Dataset, lists: NeighborLists) -> Self {
        assert!(
            lists.tau().is_none(),
            "KnnDpc requires full (untruncated) neighbour lists"
        );
        assert_eq!(lists.len(), dataset.len(), "lists must cover the dataset");
        KnnDpc {
            dataset: dataset.clone(),
            lists,
            tie: TieBreak::default(),
            construction_time: Duration::ZERO,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Construction time of the underlying lists.
    pub fn construction_time(&self) -> Duration {
        self.construction_time
    }

    /// Heap footprint (same as the List Index).
    pub fn memory_bytes(&self) -> usize {
        self.lists.memory_bytes() + self.dataset.memory_bytes()
    }

    fn validate_k(&self, k: usize) -> Result<()> {
        let n = self.dataset.len();
        if n < 2 {
            return Err(DpcError::EmptyDataset);
        }
        if k == 0 || k >= n {
            return Err(DpcError::invalid_parameter(
                "k",
                format!("k must satisfy 1 <= k < n (n = {n}), got {k}"),
            ));
        }
        Ok(())
    }

    /// Distance from `p` to its k-th nearest neighbour.
    pub fn knn_distance(&self, p: PointId, k: usize) -> f64 {
        self.lists.list(p)[k - 1].dist
    }

    /// The kNN density score of one point: `k / Σ_{i≤k} dist(p, nnᵢ)`.
    /// Larger is denser. Coincident points get `+∞`-like scores capped by the
    /// rank conversion, so they are simply the densest.
    pub fn density_score(&self, p: PointId, k: usize) -> f64 {
        let sum: f64 = self.lists.list(p)[..k].iter().map(|nb| nb.dist).sum();
        if sum <= 0.0 {
            f64::INFINITY
        } else {
            k as f64 / sum
        }
    }

    /// Dense ranks of the kNN density scores (0 = sparsest), suitable as the
    /// integer densities expected by the rest of the workspace. Points with
    /// equal scores share a rank.
    pub fn density_ranks(&self, k: usize) -> Result<Vec<Rho>> {
        self.density_ranks_with_policy(k, ExecPolicy::Sequential)
    }

    /// [`density_ranks`](Self::density_ranks) under an explicit execution
    /// policy: the per-point score computation is partitioned across worker
    /// threads (the rank conversion itself is a cheap sequential sort).
    /// Results are bit-identical at every thread count.
    pub fn density_ranks_with_policy(&self, k: usize, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.validate_k(k)?;
        let n = self.dataset.len();
        let mut scores = vec![0.0f64; n];
        exec::fill_slice(&mut scores, policy, || (), |p, ()| self.density_score(p, k));
        let mut by_score: Vec<PointId> = (0..n).collect();
        by_score.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
        let mut ranks = vec![0.0 as Rho; n];
        let mut rank = 0.0 as Rho;
        for (i, &p) in by_score.iter().enumerate() {
            if i > 0 && scores[p] > scores[by_score[i - 1]] {
                rank += 1.0;
            }
            ranks[p] = rank;
        }
        Ok(ranks)
    }

    /// Computes the kNN densities (as ranks) and the dependent distances in
    /// one call.
    pub fn rho_delta(&self, k: usize) -> Result<(Vec<Rho>, DeltaResult)> {
        self.rho_delta_with_policy(k, ExecPolicy::Sequential)
    }

    /// [`rho_delta`](Self::rho_delta) under an explicit execution policy:
    /// both the density scores and the δ list scans run on the chunked
    /// parallel engine. Results are bit-identical at every thread count.
    pub fn rho_delta_with_policy(
        &self,
        k: usize,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        let ranks = self.density_ranks_with_policy(k, policy)?;
        let order = DensityOrder::with_tie_break(&ranks, self.tie);
        let deltas = self.lists.delta_by_scan_policy(&order, policy);
        Ok((ranks, deltas))
    }

    /// Full kNN-DPC clustering: density ranks, δ, centre selection and
    /// assignment. No `dc` is needed anywhere.
    pub fn cluster(&self, k: usize, selection: &CenterSelection) -> Result<Clustering> {
        let (ranks, deltas) = self.rho_delta(k)?;
        let graph = DecisionGraph::new(ranks.clone(), &deltas)?;
        let centers = graph.select_centers(selection)?;
        let order = DensityOrder::with_tie_break(&ranks, self.tie);
        // The assignment step only uses a distance for the (disabled) halo
        // computation; the median k-distance is a sensible stand-in.
        let mut kdists: Vec<f64> = (0..self.dataset.len())
            .map(|p| self.knn_distance(p, k))
            .collect();
        kdists.sort_by(f64::total_cmp);
        let pseudo_dc = kdists[kdists.len() / 2].max(f64::MIN_POSITIVE);
        assign_clusters(
            &self.dataset,
            &order,
            &deltas,
            &centers,
            pseudo_dc,
            &AssignmentOptions::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::Point;
    use dpc_datasets::generators::s1;
    use dpc_metrics_free::assert_same_partition;

    /// Tiny local helper avoiding a dev-dependency cycle on dpc-metrics:
    /// checks that two labelings induce the same partition.
    mod dpc_metrics_free {
        use dpc_core::Clustering;
        use std::collections::HashMap;

        pub fn assert_same_partition(a: &Clustering, b: &Clustering) {
            assert_eq!(a.len(), b.len());
            let mut forward: HashMap<usize, usize> = HashMap::new();
            let mut backward: HashMap<usize, usize> = HashMap::new();
            for p in 0..a.len() {
                let (la, lb) = (a.label(p), b.label(p));
                assert_eq!(*forward.entry(la).or_insert(lb), lb, "point {p}");
                assert_eq!(*backward.entry(lb).or_insert(la), la, "point {p}");
            }
        }
    }

    fn blobs() -> Dataset {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 9.0)] {
            for i in 0..6 {
                for j in 0..6 {
                    pts.push(Point::new(cx + i as f64 * 0.1, cy + j as f64 * 0.1));
                }
            }
        }
        Dataset::new(pts)
    }

    #[test]
    fn density_ranks_are_a_permutation_compatible_ranking() {
        let data = blobs();
        let knn = KnnDpc::build(&data);
        let ranks = knn.density_ranks(5).unwrap();
        assert_eq!(ranks.len(), data.len());
        // Ranks are bounded by n-1 and the densest rank is achieved.
        let max = ranks.iter().copied().fold(0.0f64, f64::max) as usize;
        assert!(max < data.len());
        // Denser score => higher or equal rank.
        for p in 0..data.len() {
            for q in 0..data.len() {
                if knn.density_score(p, 5) > knn.density_score(q, 5) {
                    assert!(ranks[p] > ranks[q], "{p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn knn_distance_is_monotone_in_k() {
        let data = blobs();
        let knn = KnnDpc::build(&data);
        for p in 0..data.len() {
            for k in 1..10 {
                assert!(knn.knn_distance(p, k) <= knn.knn_distance(p, k + 1));
            }
        }
    }

    #[test]
    fn clusters_three_blobs_without_a_dc_parameter() {
        let data = blobs();
        let knn = KnnDpc::build(&data);
        let clustering = knn
            .cluster(6, &CenterSelection::TopKGamma { k: 3 })
            .unwrap();
        assert_eq!(clustering.num_clusters(), 3);
        assert_eq!(clustering.sizes(), vec![36, 36, 36]);
    }

    #[test]
    fn agrees_with_cutoff_dpc_on_well_separated_data() {
        // On cleanly separated blobs the kNN variant and the classic cut-off
        // variant must produce the same partition (up to label permutation).
        let data = s1(71, 0.06).into_dataset(); // 300 points
        let knn = KnnDpc::build(&data);
        let knn_clustering = knn
            .cluster(8, &CenterSelection::TopKGamma { k: 15 })
            .unwrap();

        let list = crate::list::ListIndex::build(&data);
        let params =
            dpc_core::DpcParams::new(30_000.0).with_centers(CenterSelection::TopKGamma { k: 15 });
        let cutoff_clustering = dpc_core::pipeline::cluster_with_index(&list, &params).unwrap();

        // Both produce 15 clusters with very similar size distributions
        // (label ids may differ, so compare the sorted size multisets).
        assert_eq!(knn_clustering.num_clusters(), 15);
        assert_eq!(cutoff_clustering.num_clusters(), 15);
        let mut a = knn_clustering.sizes();
        let mut b = cutoff_clustering.sizes();
        a.sort_unstable();
        b.sort_unstable();
        let total_diff: usize = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();
        assert!(
            total_diff <= data.len() / 10,
            "size distributions differ too much: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn identical_partitions_for_identical_parameters() {
        let data = blobs();
        let knn = KnnDpc::build(&data);
        let a = knn
            .cluster(5, &CenterSelection::TopKGamma { k: 3 })
            .unwrap();
        let b = knn
            .cluster(5, &CenterSelection::TopKGamma { k: 3 })
            .unwrap();
        assert_same_partition(&a, &b);
    }

    #[test]
    fn parallel_rho_delta_is_bit_identical_to_sequential() {
        let data = s1(73, 0.05).into_dataset(); // 250 points
        let knn = KnnDpc::build(&data);
        let (seq_ranks, seq_deltas) = knn.rho_delta(8).unwrap();
        for threads in [1usize, 2, 3, 7] {
            let (ranks, deltas) = knn
                .rho_delta_with_policy(8, ExecPolicy::Threads(threads))
                .unwrap();
            assert_eq!(ranks, seq_ranks, "threads = {threads}");
            assert_eq!(deltas.delta, seq_deltas.delta, "threads = {threads}");
            assert_eq!(deltas.mu, seq_deltas.mu, "threads = {threads}");
        }
    }

    #[test]
    fn invalid_k_is_rejected() {
        let data = blobs();
        let knn = KnnDpc::build(&data);
        assert!(knn.density_ranks(0).is_err());
        assert!(knn.density_ranks(data.len()).is_err());
        assert!(knn.rho_delta(data.len() + 5).is_err());
    }

    #[test]
    fn from_lists_requires_full_lists() {
        let data = blobs();
        let lists = NeighborLists::build(&data, None);
        let knn = KnnDpc::from_lists(&data, lists);
        assert!(knn.rho_delta(4).is_ok());
    }

    #[test]
    #[should_panic(expected = "untruncated")]
    fn truncated_lists_panic() {
        let data = blobs();
        let lists = NeighborLists::build(&data, Some(1.0));
        KnnDpc::from_lists(&data, lists);
    }

    #[test]
    fn coincident_points_are_the_densest() {
        let mut pts = vec![Point::new(0.0, 0.0); 5];
        pts.extend((1..20).map(|i| Point::new(i as f64, 0.0)));
        let data = Dataset::new(pts);
        let knn = KnnDpc::build(&data);
        let ranks = knn.density_ranks(3).unwrap();
        let max_rank = ranks.iter().copied().fold(0.0f64, f64::max);
        for (p, &rank) in ranks.iter().take(5).enumerate() {
            assert_eq!(
                rank, max_rank,
                "coincident point {p} must have the top rank"
            );
        }
    }
}
