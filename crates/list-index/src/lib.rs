//! # dpc-list-index
//!
//! The paper's list-based index structures for Density Peak Clustering:
//!
//! * [`ListIndex`] (§3.1) — for every object a **Neighbor List (N-List)**
//!   holding all other objects sorted by distance. The ρ-query becomes a
//!   binary search per object (`O(n log n)` total) and the δ-query a short
//!   sequential scan from the head of the list (`O(n)` expected total,
//!   Theorem 1).
//! * [`ChIndex`] (§3.2) — a **Cumulative Histogram** per object on top of the
//!   N-List, with bin width `w`. The ρ-query first jumps to the bin
//!   containing `dc` and then searches only that small section, making it
//!   effectively `O(1)` per object (Theorem 2).
//! * The **approximate solution** (§3.3) — both indices can be built with a
//!   neighbour threshold `τ`, storing only the *Reduced Neighbor List
//!   (RN-List)* of objects within distance `τ`. This trades accuracy
//!   (whenever `dc > τ`, or a point's dependent neighbour lies beyond `τ`)
//!   for a large reduction in memory.
//!
//! Both indices keep the full dataset and answer queries for **any** `dc`
//! without rebuilding, which is the point of the paper: the expensive
//! construction is amortised over the many `dc` values a user tries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ch;
pub mod knn;
pub mod list;
pub mod nlist;

pub use ch::{ChIndex, ChIndexConfig};
pub use knn::KnnDpc;
pub use list::{ListIndex, ListIndexConfig};
pub use nlist::{Neighbor, NeighborLists};
