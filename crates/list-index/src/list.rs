//! The List Index (§3.1 of the paper).
//!
//! Construction (Algorithm 1) sorts, for every object, all other objects by
//! distance. Queries (Algorithm 2) then answer ρ with a binary search per
//! object and δ with a short scan from the head of each list. Building with
//! a neighbour threshold `τ` yields the approximate RN-List variant of §3.3.

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    exec, Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, Result, Rho,
    TieBreak, Timer,
};

use crate::nlist::NeighborLists;

/// Configuration of a [`ListIndex`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ListIndexConfig {
    /// Neighbour threshold `τ`; `None` builds full N-Lists, `Some(t)` builds
    /// the approximate RN-Lists of §3.3.
    pub tau: Option<f64>,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Worker threads for construction (`None` = all available cores).
    pub threads: Option<usize>,
}

/// The List Index.
#[derive(Debug, Clone)]
pub struct ListIndex {
    dataset: Dataset,
    lists: NeighborLists,
    tie: TieBreak,
    construction_time: Duration,
}

impl ListIndex {
    /// Builds a full (exact) List Index.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &ListIndexConfig::default())
    }

    /// Builds the approximate variant with RN-Lists truncated at `tau`.
    pub fn build_approx(dataset: &Dataset, tau: f64) -> Self {
        Self::with_config(
            dataset,
            &ListIndexConfig {
                tau: Some(tau),
                ..Default::default()
            },
        )
    }

    /// Builds the index with an explicit configuration.
    pub fn with_config(dataset: &Dataset, config: &ListIndexConfig) -> Self {
        let timer = Timer::start();
        let threads = config.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let lists = NeighborLists::build_with_threads(dataset, config.tau, threads);
        ListIndex {
            dataset: dataset.clone(),
            lists,
            tie: config.tie_break,
            construction_time: timer.elapsed(),
        }
    }

    /// The underlying neighbour lists.
    pub fn lists(&self) -> &NeighborLists {
        &self.lists
    }

    /// The neighbour threshold used at construction (`None` = exact).
    pub fn tau(&self) -> Option<f64> {
        self.lists.tau()
    }

    /// δ-query that additionally reports how many list entries were probed,
    /// used by the experiment harness to reproduce the probe-fraction numbers
    /// quoted in §5.4.
    pub fn delta_with_probes(&self, dc: f64, rho: &[Rho]) -> Result<(DeltaResult, u64)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.tie);
        Ok(self.lists.delta_by_scan_with_probes(&order))
    }
}

impl DpcIndex for ListIndex {
    fn name(&self) -> &'static str {
        if self.lists.tau().is_some() {
            "list-approx"
        } else {
            "list"
        }
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_policy(dc, ExecPolicy::Sequential)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_probes(dc, rho).map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        validate_dc(dc)?;
        let mut rho = vec![0 as Rho; self.dataset.len()];
        exec::fill_slice(
            &mut rho,
            policy,
            || (),
            |p, ()| self.lists.count_within(p, dc) as Rho,
        );
        Ok(rho)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.tie);
        Ok(self.lists.delta_by_scan_policy(&order, policy))
    }

    fn memory_bytes(&self) -> usize {
        self.lists.memory_bytes() + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("total_entries", self.lists.total_entries() as u64)
            .with_counter("max_list_len", self.lists.max_list_len() as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.tie
    }

    fn is_exact(&self) -> bool {
        self.lists.tau().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_baseline::LeanDpc;
    use dpc_core::{CenterSelection, DpcParams};
    use dpc_datasets::generators::{query, s1};

    fn assert_same_results(data: &Dataset, index: &ListIndex, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = index.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!(
                (d1.delta(p) - d2.delta(p)).abs() < 1e-9,
                "delta mismatch at dc = {dc}, p = {p}"
            );
        }
    }

    #[test]
    fn exact_index_matches_baseline_on_s1() {
        let data = s1(23, 0.06).into_dataset(); // 300 points
        let index = ListIndex::build(&data);
        for dc in [5_000.0, 30_000.0, 200_000.0, 2_000_000.0] {
            assert_same_results(&data, &index, dc);
        }
    }

    #[test]
    fn exact_index_matches_baseline_on_query_workload() {
        let data = query(29, 0.005).into_dataset(); // 250 points
        let index = ListIndex::build(&data);
        for dc in [0.001, 0.01, 0.1, 2.0] {
            assert_same_results(&data, &index, dc);
        }
    }

    #[test]
    fn approx_index_is_exact_while_dc_below_tau() {
        let data = s1(31, 0.05).into_dataset(); // 250 points
        let tau = 100_000.0;
        let approx = ListIndex::build_approx(&data, tau);
        let exact = ListIndex::build(&data);
        let dc = 30_000.0; // well below tau
        let rho_a = approx.rho(dc).unwrap();
        let rho_e = exact.rho(dc).unwrap();
        assert_eq!(rho_a, rho_e);
        // Deltas agree except possibly for points whose mu is beyond tau
        // (peaks); every non-sentinel delta must match.
        let d_a = approx.delta(dc, &rho_a).unwrap();
        let d_e = exact.delta(dc, &rho_e).unwrap();
        for p in 0..data.len() {
            if d_a.mu(p).is_some() {
                assert_eq!(d_a.mu(p), d_e.mu(p), "p = {p}");
                assert!((d_a.delta(p) - d_e.delta(p)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn approx_rho_undercounts_when_dc_exceeds_tau() {
        let data = s1(37, 0.04).into_dataset();
        let tau = 20_000.0;
        let approx = ListIndex::build_approx(&data, tau);
        let exact = ListIndex::build(&data);
        let dc = 200_000.0; // far above tau
        let rho_a = approx.rho(dc).unwrap();
        let rho_e = exact.rho(dc).unwrap();
        assert!(rho_a.iter().zip(&rho_e).all(|(a, e)| a <= e));
        assert!(rho_a.iter().zip(&rho_e).any(|(a, e)| a < e));
    }

    #[test]
    fn approx_index_uses_much_less_memory() {
        let data = s1(41, 0.2).into_dataset(); // 1000 points
        let exact = ListIndex::build(&data);
        let approx = ListIndex::build_approx(&data, 50_000.0);
        assert!(approx.memory_bytes() < exact.memory_bytes() / 2);
        assert!(!approx.is_exact());
        assert!(exact.is_exact());
        assert_eq!(approx.name(), "list-approx");
        assert_eq!(exact.name(), "list");
    }

    #[test]
    fn probe_count_is_small_for_clustered_data() {
        // Theorem 1: the expected number of probes per non-peak object is a
        // constant, so the total is far below n per object.
        let data = s1(43, 0.2).into_dataset(); // 1000 points
        let index = ListIndex::build(&data);
        let dc = 30_000.0;
        let rho = index.rho(dc).unwrap();
        let (_, probes) = index.delta_with_probes(dc, &rho).unwrap();
        let n = data.len() as u64;
        // Worst case would be ~n per object (n^2 total); expect well below
        // 5% of that for clustered data.
        assert!(probes < n * n / 20, "probes = {probes}, n = {n}");
    }

    #[test]
    fn clustering_through_pipeline_matches_baseline_clustering() {
        let data = s1(47, 0.1).into_dataset(); // 500 points
        let params = DpcParams::new(50_000.0).with_centers(CenterSelection::TopKGamma { k: 15 });
        let from_list =
            dpc_core::pipeline::cluster_with_index(&ListIndex::build(&data), &params).unwrap();
        let from_baseline =
            dpc_core::pipeline::cluster_with_index(&LeanDpc::build(&data), &params).unwrap();
        assert_eq!(from_list.labels(), from_baseline.labels());
        assert_eq!(from_list.centers(), from_baseline.centers());
    }

    #[test]
    fn stats_expose_entry_counts() {
        let data = s1(53, 0.02).into_dataset(); // 100 points
        let index = ListIndex::build(&data);
        let stats = index.stats();
        assert_eq!(stats.counter("total_entries"), Some((100 * 99) as u64));
        assert_eq!(stats.counter("max_list_len"), Some(99));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let data = s1(3, 0.01).into_dataset();
        let index = ListIndex::build(&data);
        assert!(index.rho(0.0).is_err());
        assert!(index.delta(1.0, &[]).is_err());
    }

    #[test]
    fn single_point_dataset() {
        let data = Dataset::new(vec![dpc_core::Point::new(1.0, 2.0)]);
        let index = ListIndex::build(&data);
        let (rho, deltas) = index.rho_delta(1.0).unwrap();
        assert_eq!(rho, vec![0.0]);
        assert_eq!(deltas.delta(0), 0.0);
        assert_eq!(deltas.mu(0), None);
    }
}
