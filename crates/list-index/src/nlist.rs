//! Neighbor Lists (N-List) and Reduced Neighbor Lists (RN-List).
//!
//! An N-List stores, for each object `p`, every other object together with
//! its distance to `p`, sorted by non-decreasing distance (Algorithm 1 of the
//! paper). The RN-List of §3.3 is the same structure truncated at a neighbour
//! threshold `τ`: only objects with `dist < τ` are kept, which reduces the
//! quadratic memory cost to whatever the local neighbourhoods contain.

use dpc_core::stats::vec_bytes;
use dpc_core::{exec, Dataset, DeltaResult, DensityOrder, ExecPolicy, PointId};

/// One entry of a neighbour list: a neighbour id and its distance to the
/// list's owner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Distance from the list owner to this neighbour.
    pub dist: f64,
    /// Id of the neighbour (u32 keeps the entry at 16 bytes; datasets above
    /// 4 G points are far outside the scope of this index).
    pub id: u32,
}

impl Neighbor {
    /// Creates an entry.
    pub fn new(dist: f64, id: PointId) -> Self {
        Neighbor {
            dist,
            id: id as u32,
        }
    }

    /// Neighbour id as a [`PointId`].
    pub fn point_id(&self) -> PointId {
        self.id as usize
    }
}

/// The per-object neighbour lists of a dataset (N-List, or RN-List when a
/// threshold `τ` was applied at construction time).
#[derive(Debug, Clone)]
pub struct NeighborLists {
    lists: Vec<Vec<Neighbor>>,
    tau: Option<f64>,
}

impl NeighborLists {
    /// Builds the lists, using all available CPU parallelism for the
    /// per-object sort (the result is identical to the serial build).
    ///
    /// `tau = None` builds full N-Lists (every other object appears in every
    /// list); `tau = Some(t)` builds RN-Lists containing only neighbours with
    /// `dist < t`.
    pub fn build(dataset: &Dataset, tau: Option<f64>) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_with_threads(dataset, tau, threads)
    }

    /// Builds the lists single-threaded. Mostly useful for tests comparing
    /// against the parallel build.
    pub fn build_serial(dataset: &Dataset, tau: Option<f64>) -> Self {
        Self::build_with_threads(dataset, tau, 1)
    }

    /// Builds the lists with an explicit number of worker threads, on top of
    /// the chunked engine of [`dpc_core::exec`].
    ///
    /// # Panics
    /// Panics if `threads == 0` or if `tau` is not a positive finite number.
    pub fn build_with_threads(dataset: &Dataset, tau: Option<f64>, threads: usize) -> Self {
        assert!(threads > 0, "NeighborLists: need at least one thread");
        if let Some(t) = tau {
            assert!(
                t.is_finite() && t > 0.0,
                "NeighborLists: tau must be positive and finite, got {t}"
            );
        }
        let n = dataset.len();
        let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        if n == 0 {
            return NeighborLists { lists, tau };
        }
        let (xs, ys) = dataset.coord_slices();
        exec::fill_slice(
            &mut lists,
            ExecPolicy::Threads(threads),
            || (),
            |p, ()| {
                let mut entries: Vec<Neighbor> =
                    Vec::with_capacity(if tau.is_some() { 16 } else { n - 1 });
                let (xp, yp) = (xs[p], ys[p]);
                for (q, (&xq, &yq)) in xs.iter().zip(ys.iter()).enumerate() {
                    if q == p {
                        continue;
                    }
                    let (dx, dy) = (xq - xp, yq - yp);
                    let d = (dx * dx + dy * dy).sqrt();
                    if tau.is_none_or(|t| d < t) {
                        entries.push(Neighbor::new(d, q));
                    }
                }
                entries.sort_by(|a, b| {
                    a.dist
                        .partial_cmp(&b.dist)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.id.cmp(&b.id))
                });
                entries.shrink_to_fit();
                entries
            },
        );
        NeighborLists { lists, tau }
    }

    /// Number of objects (owners of a list).
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The neighbour threshold the lists were truncated at (`None` = full
    /// N-Lists).
    pub fn tau(&self) -> Option<f64> {
        self.tau
    }

    /// The (R)N-List of one object, sorted by non-decreasing distance.
    pub fn list(&self, p: PointId) -> &[Neighbor] {
        &self.lists[p]
    }

    /// Number of neighbours of `p` with distance strictly below `dc`
    /// (a binary search over the sorted list).
    ///
    /// For RN-Lists this is exact whenever `dc <= τ` and a lower bound
    /// otherwise (everything stored is counted, anything beyond `τ` is
    /// missed) — exactly the approximation the paper describes.
    pub fn count_within(&self, p: PointId, dc: f64) -> usize {
        self.lists[p].partition_point(|nb| nb.dist < dc)
    }

    /// Total number of stored entries across all lists.
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Length of the longest stored list.
    pub fn max_list_len(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Analytic heap footprint in bytes (spine + entries).
    pub fn memory_bytes(&self) -> usize {
        vec_bytes(&self.lists) + self.lists.iter().map(vec_bytes).sum::<usize>()
    }

    /// The δ-query of Algorithm 2 (lines 7–13): for every object, scan its
    /// list from nearest to farthest and stop at the first neighbour that is
    /// denser under `order`.
    ///
    /// * With full N-Lists the only object for which the scan can fail is the
    ///   global peak; its `δ` is set to its maximum stored distance (the
    ///   distance to the farthest object), as the paper prescribes.
    /// * With RN-Lists the scan can also fail for a point whose dependent
    ///   neighbour lies beyond `τ`; such points get the sentinel
    ///   `δ = +∞`, `µ = None` ("set to a large value" in §3.3).
    pub fn delta_by_scan(&self, order: &DensityOrder<'_>) -> DeltaResult {
        self.delta_by_scan_with_probes(order).0
    }

    /// Like [`delta_by_scan`](Self::delta_by_scan) but also returns the total
    /// number of list entries probed, the quantity behind the paper's remark
    /// that *"less than 1% of the total number of objects were probed"*.
    pub fn delta_by_scan_with_probes(&self, order: &DensityOrder<'_>) -> (DeltaResult, u64) {
        self.delta_by_scan_with_probes_policy(order, ExecPolicy::Sequential)
    }

    /// [`delta_by_scan`](Self::delta_by_scan) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn delta_by_scan_policy(
        &self,
        order: &DensityOrder<'_>,
        policy: ExecPolicy,
    ) -> DeltaResult {
        self.delta_by_scan_with_probes_policy(order, policy).0
    }

    /// [`delta_by_scan_with_probes`](Self::delta_by_scan_with_probes) under
    /// an explicit execution policy. The per-point scans are partitioned
    /// across worker threads; each worker counts its own probes and the
    /// counters are summed after the join.
    pub fn delta_by_scan_with_probes_policy(
        &self,
        order: &DensityOrder<'_>,
        policy: ExecPolicy,
    ) -> (DeltaResult, u64) {
        let n = self.lists.len();
        debug_assert_eq!(order.len(), n, "density order must cover every object");
        let mut result = DeltaResult::unset(n);
        let probes_per_worker = exec::fill_slice_pair(
            &mut result.delta,
            &mut result.mu,
            policy,
            || 0u64,
            |p, delta_slot, mu_slot, probes| {
                let list = &self.lists[p];
                let mut found = false;
                for nb in list {
                    *probes += 1;
                    if order.is_denser(nb.point_id(), p) {
                        *delta_slot = nb.dist;
                        *mu_slot = Some(nb.point_id());
                        found = true;
                        break;
                    }
                }
                if !found {
                    if self.tau.is_none() {
                        // Global peak: δ = maximum distance to any other
                        // object, which is the last entry of its full N-List.
                        *delta_slot = list.last().map_or(0.0, |nb| nb.dist);
                    } else {
                        // Truncated list: neighbour (if any) lies beyond τ.
                        *delta_slot = f64::INFINITY;
                    }
                    *mu_slot = None;
                }
            },
        );
        (result, probes_per_worker.into_iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::Point;
    use dpc_datasets::generators::s1;

    fn small() -> Dataset {
        Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 2.0),
        ])
    }

    #[test]
    fn full_lists_contain_all_other_objects_sorted() {
        let lists = NeighborLists::build_serial(&small(), None);
        assert_eq!(lists.len(), 4);
        for p in 0..4 {
            let l = lists.list(p);
            assert_eq!(l.len(), 3, "point {p}");
            for w in l.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
            assert!(l.iter().all(|nb| nb.point_id() != p));
        }
        // Point 0's nearest neighbour is point 1 at distance 1.
        assert_eq!(lists.list(0)[0].point_id(), 1);
        assert_eq!(lists.list(0)[0].dist, 1.0);
    }

    #[test]
    fn count_within_is_strict() {
        let lists = NeighborLists::build_serial(&small(), None);
        // Distances from point 0: 1.0, 2.0, 3.0.
        assert_eq!(lists.count_within(0, 1.0), 0);
        assert_eq!(lists.count_within(0, 1.5), 1);
        assert_eq!(lists.count_within(0, 2.5), 2);
        assert_eq!(lists.count_within(0, 100.0), 3);
    }

    #[test]
    fn rn_list_truncates_at_tau() {
        let lists = NeighborLists::build_serial(&small(), Some(2.5));
        assert_eq!(lists.tau(), Some(2.5));
        // Point 0 keeps neighbours at distance 1.0 and 2.0 only.
        assert_eq!(lists.list(0).len(), 2);
        // Point 2 (at x=3) keeps only point 1 (distance 2) .
        assert_eq!(lists.list(2).len(), 1);
        assert_eq!(lists.list(2)[0].point_id(), 1);
        assert!(lists.memory_bytes() < NeighborLists::build_serial(&small(), None).memory_bytes());
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let data = s1(17, 0.05).into_dataset(); // 250 points
        let serial = NeighborLists::build_serial(&data, None);
        let parallel = NeighborLists::build_with_threads(&data, None, 4);
        for p in 0..data.len() {
            assert_eq!(serial.list(p), parallel.list(p), "point {p}");
        }
        let serial_t = NeighborLists::build_serial(&data, Some(50_000.0));
        let parallel_t = NeighborLists::build_with_threads(&data, Some(50_000.0), 3);
        for p in 0..data.len() {
            assert_eq!(serial_t.list(p), parallel_t.list(p), "point {p}");
        }
    }

    #[test]
    fn parallel_delta_scan_is_bit_identical_to_sequential() {
        let data = s1(19, 0.05).into_dataset(); // 250 points
        for tau in [None, Some(40_000.0)] {
            let lists = NeighborLists::build_serial(&data, tau);
            let rho: Vec<f64> = (0..data.len() as u32).map(|i| f64::from(i % 7)).collect();
            let order = DensityOrder::new(&rho);
            let (seq, seq_probes) = lists.delta_by_scan_with_probes(&order);
            for threads in [1usize, 2, 3, 7] {
                let (par, par_probes) =
                    lists.delta_by_scan_with_probes_policy(&order, ExecPolicy::Threads(threads));
                assert_eq!(par.delta, seq.delta, "threads = {threads}, tau = {tau:?}");
                assert_eq!(par.mu, seq.mu, "threads = {threads}, tau = {tau:?}");
                assert_eq!(par_probes, seq_probes, "threads = {threads}, tau = {tau:?}");
            }
        }
    }

    #[test]
    fn total_entries_and_max_len() {
        let lists = NeighborLists::build_serial(&small(), None);
        assert_eq!(lists.total_entries(), 12);
        assert_eq!(lists.max_list_len(), 3);
    }

    #[test]
    fn empty_dataset() {
        let lists = NeighborLists::build(&Dataset::new(vec![]), None);
        assert!(lists.is_empty());
        assert_eq!(lists.total_entries(), 0);
        assert_eq!(lists.max_list_len(), 0);
    }

    #[test]
    fn memory_grows_quadratically_for_full_lists() {
        let d1 = s1(5, 0.02).into_dataset(); // 100 points
        let d2 = s1(5, 0.08).into_dataset(); // 400 points
        let m1 = NeighborLists::build(&d1, None).memory_bytes();
        let m2 = NeighborLists::build(&d2, None).memory_bytes();
        assert!(m2 > 10 * m1, "m1 = {m1}, m2 = {m2}");
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn invalid_tau_panics() {
        NeighborLists::build_serial(&small(), Some(0.0));
    }
}
