//! Property-based tests of the list-based index structures.

use dpc_baseline::LeanDpc;
use dpc_core::{Dataset, DensityOrder, DpcIndex};
use dpc_list_index::{ChIndex, ListIndex, NeighborLists};
use proptest::prelude::*;

fn coords_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-200.0f64..200.0, -200.0f64..200.0), 2..50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nlists_are_sorted_complete_and_self_free(coords in coords_strategy()) {
        let data = Dataset::from_coords(coords);
        let lists = NeighborLists::build(&data, None);
        for p in 0..data.len() {
            let list = lists.list(p);
            // Complete: every other point appears exactly once.
            prop_assert_eq!(list.len(), data.len() - 1);
            let mut ids: Vec<usize> = list.iter().map(|nb| nb.point_id()).collect();
            ids.sort_unstable();
            let expected: Vec<usize> = (0..data.len()).filter(|&q| q != p).collect();
            prop_assert_eq!(ids, expected);
            // Sorted by distance and distances are correct.
            for w in list.windows(2) {
                prop_assert!(w[0].dist <= w[1].dist);
            }
            for nb in list {
                prop_assert!((nb.dist - data.distance(p, nb.point_id())).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn count_within_matches_a_naive_count(coords in coords_strategy(), dc in 0.1f64..500.0) {
        let data = Dataset::from_coords(coords);
        let lists = NeighborLists::build(&data, None);
        for p in 0..data.len() {
            let naive = (0..data.len())
                .filter(|&q| q != p && data.distance(p, q) < dc)
                .count();
            prop_assert_eq!(lists.count_within(p, dc), naive);
        }
    }

    #[test]
    fn rn_lists_store_exactly_the_neighbours_within_tau(
        coords in coords_strategy(),
        tau in 1.0f64..300.0
    ) {
        let data = Dataset::from_coords(coords);
        let lists = NeighborLists::build(&data, Some(tau));
        for p in 0..data.len() {
            let expected: usize = (0..data.len())
                .filter(|&q| q != p && data.distance(p, q) < tau)
                .count();
            prop_assert_eq!(lists.list(p).len(), expected);
            prop_assert!(lists.list(p).iter().all(|nb| nb.dist < tau));
        }
    }

    #[test]
    fn list_index_matches_baseline_for_arbitrary_dc(
        coords in coords_strategy(),
        dc in 0.1f64..600.0
    ) {
        let data = Dataset::from_coords(coords);
        let index = ListIndex::build(&data);
        let baseline = LeanDpc::build(&data);
        let (rho_i, delta_i) = index.rho_delta(dc).unwrap();
        let (rho_b, delta_b) = baseline.rho_delta(dc).unwrap();
        prop_assert_eq!(rho_i, rho_b);
        prop_assert_eq!(delta_i.mu, delta_b.mu);
    }

    #[test]
    fn ch_index_rho_is_invariant_to_bin_width(
        coords in coords_strategy(),
        dc in 0.1f64..600.0,
        w1 in 0.5f64..50.0,
        w2 in 50.0f64..800.0
    ) {
        let data = Dataset::from_coords(coords);
        let list = ListIndex::build(&data);
        let fine = ChIndex::build(&data, w1);
        let coarse = ChIndex::build(&data, w2);
        let expected = list.rho(dc).unwrap();
        prop_assert_eq!(fine.rho(dc).unwrap(), expected.clone());
        prop_assert_eq!(coarse.rho(dc).unwrap(), expected);
    }

    #[test]
    fn ch_histograms_are_monotone_and_end_at_the_list_length(
        coords in coords_strategy(),
        w in 0.5f64..200.0
    ) {
        let data = Dataset::from_coords(coords);
        let ch = ChIndex::build(&data, w);
        // The cumulative property is observable through rho at bin
        // boundaries: rho(k*w) never decreases with k and reaches n-1 once
        // k*w exceeds the diameter.
        let diameter = data.bbox_diameter();
        let mut prev = vec![0.0f64; data.len()];
        let mut k = 1usize;
        loop {
            let dc = k as f64 * w;
            let rho = ch.rho(dc).unwrap();
            for p in 0..data.len() {
                prop_assert!(rho[p] >= prev[p], "rho must be monotone in dc");
            }
            prev = rho;
            if dc > diameter {
                prop_assert!(prev.iter().all(|&r| r as usize == data.len() - 1));
                break;
            }
            k += 1;
            if k > 10_000 {
                break; // safety for pathological (tiny w, huge diameter) combinations
            }
        }
    }

    #[test]
    fn delta_probe_count_is_bounded_by_total_entries(
        coords in coords_strategy(),
        dc in 0.5f64..400.0
    ) {
        let data = Dataset::from_coords(coords);
        let index = ListIndex::build(&data);
        let rho = index.rho(dc).unwrap();
        let (_, probes) = index.delta_with_probes(dc, &rho).unwrap();
        prop_assert!(probes <= index.lists().total_entries() as u64);
        prop_assert!(probes >= (data.len() as u64).saturating_sub(1));
    }

    #[test]
    fn approximate_and_exact_memory_ordering(coords in coords_strategy(), tau in 1.0f64..100.0) {
        let data = Dataset::from_coords(coords);
        let exact = ListIndex::build(&data);
        let approx = ListIndex::build_approx(&data, tau);
        prop_assert!(approx.lists().total_entries() <= exact.lists().total_entries());
        prop_assert!(approx.memory_bytes() <= exact.memory_bytes() + 64);
    }
}

#[test]
fn ch_bin_boundary_regression_cases() {
    // Regression guard for the exact-boundary arithmetic of Algorithm 4:
    // distances that are exact multiples of the bin width.
    let data = Dataset::from_coords(vec![
        (0.0, 0.0),
        (1.0, 0.0),
        (2.0, 0.0),
        (3.0, 0.0),
        (4.0, 0.0),
    ]);
    let ch = ChIndex::build(&data, 1.0);
    let baseline = LeanDpc::build(&data);
    for dc in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0] {
        assert_eq!(ch.rho(dc).unwrap(), baseline.rho(dc).unwrap(), "dc = {dc}");
    }
    // Delta is consistent with the density order for every dc as well.
    for dc in [1.0, 2.0, 4.0] {
        let rho = ch.rho(dc).unwrap();
        let deltas = ch.delta(dc, &rho).unwrap();
        deltas.validate(&DensityOrder::new(&rho)).unwrap();
    }
}
