//! Contingency table between two labelings of the same points.
//!
//! All pair-counting and information-theoretic metrics in this crate are
//! derived from the contingency table, so the `O(n²)` pair enumeration never
//! happens explicitly.

use std::collections::HashMap;

use dpc_core::ClusterId;

/// Cross-tabulation of two labelings.
///
/// Noise points (label `None`) are treated as singleton clusters: a noise
/// point is "together" with no other point, which is the standard convention
/// and matches how the paper's halo/outlier points behave.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    /// `counts[i][j]` = number of points with row-label `i` and column-label `j`.
    counts: Vec<Vec<usize>>,
    row_sums: Vec<usize>,
    col_sums: Vec<usize>,
    total: usize,
}

impl ContingencyTable {
    /// Builds the table from two labelings of the same length.
    ///
    /// # Panics
    /// Panics if the labelings have different lengths.
    pub fn new(rows: &[Option<ClusterId>], cols: &[Option<ClusterId>]) -> Self {
        assert_eq!(
            rows.len(),
            cols.len(),
            "contingency table requires labelings of equal length"
        );
        let row_ids = normalize(rows);
        let col_ids = normalize(cols);
        let n_rows = row_ids.iter().copied().max().map_or(0, |m| m + 1);
        let n_cols = col_ids.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![vec![0usize; n_cols]; n_rows];
        for (&r, &c) in row_ids.iter().zip(&col_ids) {
            counts[r][c] += 1;
        }
        let row_sums: Vec<usize> = counts.iter().map(|row| row.iter().sum()).collect();
        let mut col_sums = vec![0usize; n_cols];
        for row in &counts {
            for (j, &v) in row.iter().enumerate() {
                col_sums[j] += v;
            }
        }
        ContingencyTable {
            counts,
            row_sums,
            col_sums,
            total: rows.len(),
        }
    }

    /// Builds the table from plain (noise-free) label vectors.
    pub fn from_labels(rows: &[ClusterId], cols: &[ClusterId]) -> Self {
        let rows: Vec<Option<ClusterId>> = rows.iter().map(|&l| Some(l)).collect();
        let cols: Vec<Option<ClusterId>> = cols.iter().map(|&l| Some(l)).collect();
        Self::new(&rows, &cols)
    }

    /// Total number of points.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct row clusters (noise singletons included).
    pub fn num_row_clusters(&self) -> usize {
        self.row_sums.len()
    }

    /// Number of distinct column clusters (noise singletons included).
    pub fn num_col_clusters(&self) -> usize {
        self.col_sums.len()
    }

    /// Row marginal sizes.
    pub fn row_sums(&self) -> &[usize] {
        &self.row_sums
    }

    /// Column marginal sizes.
    pub fn col_sums(&self) -> &[usize] {
        &self.col_sums
    }

    /// The raw cell counts.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Number of co-clustered pairs in the row labeling
    /// (`Σᵢ C(rowᵢ, 2)`).
    pub fn row_pairs(&self) -> u64 {
        self.row_sums.iter().map(|&s| choose2(s)).sum()
    }

    /// Number of co-clustered pairs in the column labeling
    /// (`Σⱼ C(colⱼ, 2)`).
    pub fn col_pairs(&self) -> u64 {
        self.col_sums.iter().map(|&s| choose2(s)).sum()
    }

    /// Number of pairs co-clustered in *both* labelings
    /// (`Σᵢⱼ C(nᵢⱼ, 2)`).
    pub fn joint_pairs(&self) -> u64 {
        self.counts
            .iter()
            .flat_map(|row| row.iter())
            .map(|&v| choose2(v))
            .sum()
    }

    /// Total number of point pairs, `C(n, 2)`.
    pub fn total_pairs(&self) -> u64 {
        choose2(self.total)
    }
}

/// `C(n, 2)` as a u64.
pub(crate) fn choose2(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

/// Maps labels to dense ids, giving every noise point its own fresh id.
fn normalize(labels: &[Option<ClusterId>]) -> Vec<usize> {
    let mut map: HashMap<ClusterId, usize> = HashMap::new();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(labels.len());
    // First pass: real clusters get the low ids.
    for l in labels.iter().flatten() {
        if !map.contains_key(l) {
            map.insert(*l, next);
            next += 1;
        }
    }
    for l in labels {
        match l {
            Some(l) => out.push(map[l]),
            None => {
                out.push(next);
                next += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_put_everything_on_the_diagonal() {
        let labels = vec![0, 0, 1, 1, 2];
        let t = ContingencyTable::from_labels(&labels, &labels);
        assert_eq!(t.total(), 5);
        assert_eq!(t.joint_pairs(), t.row_pairs());
        assert_eq!(t.row_pairs(), t.col_pairs());
        assert_eq!(t.row_pairs(), 1 + 1); // two pairs of size-2 clusters
    }

    #[test]
    fn marginals_sum_to_total() {
        let a = vec![0, 0, 1, 2, 2, 2];
        let b = vec![1, 1, 0, 0, 0, 2];
        let t = ContingencyTable::from_labels(&a, &b);
        assert_eq!(t.row_sums().iter().sum::<usize>(), 6);
        assert_eq!(t.col_sums().iter().sum::<usize>(), 6);
        assert_eq!(t.num_row_clusters(), 3);
        assert_eq!(t.num_col_clusters(), 3);
    }

    #[test]
    fn noise_points_are_singletons() {
        let a = vec![Some(0), Some(0), None, None];
        let b = vec![Some(0), Some(0), Some(0), Some(0)];
        let t = ContingencyTable::new(&a, &b);
        // Noise singletons contribute no co-clustered pairs on the row side.
        assert_eq!(t.row_pairs(), 1);
        assert_eq!(t.col_pairs(), choose2(4));
        assert_eq!(t.joint_pairs(), 1);
    }

    #[test]
    fn joint_pairs_never_exceed_either_marginal() {
        let a = vec![0, 1, 0, 1, 2, 2, 0];
        let b = vec![0, 0, 1, 1, 1, 2, 2];
        let t = ContingencyTable::from_labels(&a, &b);
        assert!(t.joint_pairs() <= t.row_pairs());
        assert!(t.joint_pairs() <= t.col_pairs());
        assert!(t.row_pairs() <= t.total_pairs());
    }

    #[test]
    fn empty_labelings() {
        let t = ContingencyTable::from_labels(&[], &[]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.total_pairs(), 0);
        assert_eq!(t.joint_pairs(), 0);
    }

    #[test]
    fn choose2_small_values() {
        assert_eq!(choose2(0), 0);
        assert_eq!(choose2(1), 0);
        assert_eq!(choose2(2), 1);
        assert_eq!(choose2(5), 10);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        ContingencyTable::from_labels(&[0], &[0, 1]);
    }
}
