//! # dpc-metrics
//!
//! Clustering-quality metrics and reporting helpers for the DPC experiments.
//!
//! The paper's quality experiment (Figure 10, §5.4) measures the clustering
//! produced by an approximate index against the clustering produced by the
//! exact DPC algorithm using **pair-counting Precision, Recall and F1**
//! (Equations 3–5). Those metrics, plus the Adjusted Rand Index and
//! Normalised Mutual Information as extensions, are implemented here on top
//! of a shared [`ContingencyTable`] so they run in `O(n + k₁·k₂)` rather than
//! enumerating all `O(n²)` pairs.
//!
//! The [`report`] module contains the small text/CSV table writer used by the
//! bench harness to print paper-style tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contingency;
pub mod nmi;
pub mod pair_counting;
pub mod rand_index;
pub mod report;
pub mod timing;

pub use contingency::ContingencyTable;
pub use nmi::normalized_mutual_information;
pub use pair_counting::{pair_counting_scores, pair_counting_scores_for, PairCounts, PairScores};
pub use rand_index::adjusted_rand_index;
pub use report::ResultTable;
pub use timing::{measure_median, measure_once};
