//! Normalised Mutual Information (extension beyond the paper's metrics).

use dpc_core::ClusterId;

use crate::contingency::ContingencyTable;

/// Computes the Normalised Mutual Information between two labelings,
/// normalised by the arithmetic mean of the two entropies (`2·I / (H_a + H_b)`).
///
/// Returns 1.0 for identical partitions and for the degenerate case where
/// both partitions carry no information (both single-cluster or both empty);
/// otherwise values lie in `[0, 1]`. Noise points (`None`) are singletons.
pub fn normalized_mutual_information(a: &[Option<ClusterId>], b: &[Option<ClusterId>]) -> f64 {
    let table = ContingencyTable::new(a, b);
    let n = table.total() as f64;
    if table.total() == 0 {
        return 1.0;
    }
    let h_a = entropy(table.row_sums(), n);
    let h_b = entropy(table.col_sums(), n);
    if h_a == 0.0 && h_b == 0.0 {
        // Both partitions are a single cluster: identical by definition.
        return 1.0;
    }
    let mut mi = 0.0;
    for (i, row) in table.counts().iter().enumerate() {
        let row_sum = table.row_sums()[i] as f64;
        for (j, &nij) in row.iter().enumerate() {
            if nij == 0 {
                continue;
            }
            let nij = nij as f64;
            let col_sum = table.col_sums()[j] as f64;
            mi += (nij / n) * ((n * nij) / (row_sum * col_sum)).ln();
        }
    }
    (2.0 * mi / (h_a + h_b)).clamp(0.0, 1.0)
}

/// Convenience overload for plain label vectors.
pub fn normalized_mutual_information_labels(a: &[ClusterId], b: &[ClusterId]) -> f64 {
    let a: Vec<Option<ClusterId>> = a.iter().map(|&l| Some(l)).collect();
    let b: Vec<Option<ClusterId>> = b.iter().map(|&l| Some(l)).collect();
    normalized_mutual_information(&a, &b)
}

fn entropy(sums: &[usize], n: f64) -> f64 {
    sums.iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let nmi = normalized_mutual_information_labels(&[0, 0, 1, 1, 2, 2], &[0, 0, 1, 1, 2, 2]);
        assert!((nmi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabelling_does_not_matter() {
        let nmi = normalized_mutual_information_labels(&[0, 0, 1, 1], &[3, 3, 8, 8]);
        assert!((nmi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_low() {
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let nmi = normalized_mutual_information_labels(&a, &b);
        assert!(nmi < 0.2, "nmi = {nmi}");
    }

    #[test]
    fn partial_agreement_in_unit_interval() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let nmi = normalized_mutual_information_labels(&a, &b);
        assert!(nmi > 0.0 && nmi < 1.0, "nmi = {nmi}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
        assert_eq!(
            normalized_mutual_information_labels(&[0, 0, 0], &[5, 5, 5]),
            1.0
        );
    }

    #[test]
    fn single_cluster_vs_split_scores_zero() {
        // One side carries no information: MI is 0, entropy of the other is
        // positive, so NMI must be 0.
        let nmi = normalized_mutual_information_labels(&[0, 0, 0, 0], &[0, 0, 1, 1]);
        assert_eq!(nmi, 0.0);
    }
}
