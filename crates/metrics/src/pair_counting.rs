//! Pair-counting Precision, Recall and F1 (Equations 3–5 of the paper).
//!
//! A *pair* is any unordered pair of distinct points. A pair is a true
//! positive when both clusterings put its two points in the same cluster,
//! a false positive when only the *obtained* clustering does, and a false
//! negative when only the *reference* clustering does.

use dpc_core::{ClusterId, Clustering};

use crate::contingency::ContingencyTable;

/// Raw pair counts underlying the scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCounts {
    /// Pairs co-clustered in both the obtained and the reference clustering.
    pub true_positives: u64,
    /// Pairs co-clustered only in the obtained clustering.
    pub false_positives: u64,
    /// Pairs co-clustered only in the reference clustering.
    pub false_negatives: u64,
    /// Pairs co-clustered in neither.
    pub true_negatives: u64,
}

/// Precision / Recall / F1 derived from [`PairCounts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairScores {
    /// TP / (TP + FP); 1.0 when the obtained clustering creates no pairs.
    pub precision: f64,
    /// TP / (TP + FN); 1.0 when the reference clustering contains no pairs.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// The underlying counts.
    pub counts: PairCounts,
}

/// Computes the pair-counting scores of an `obtained` labeling against a
/// `reference` labeling. Noise points (`None`) are singletons.
pub fn pair_counting_scores(
    obtained: &[Option<ClusterId>],
    reference: &[Option<ClusterId>],
) -> PairScores {
    let table = ContingencyTable::new(obtained, reference);
    scores_from_table(&table)
}

/// Convenience overload for two [`Clustering`]s (halo points count as
/// ordinary members, matching the paper which does not remove halos before
/// comparing).
pub fn pair_counting_scores_for(obtained: &Clustering, reference: &Clustering) -> PairScores {
    let o: Vec<Option<ClusterId>> = obtained.labels().iter().map(|&l| Some(l)).collect();
    let r: Vec<Option<ClusterId>> = reference.labels().iter().map(|&l| Some(l)).collect();
    pair_counting_scores(&o, &r)
}

fn scores_from_table(table: &ContingencyTable) -> PairScores {
    let tp = table.joint_pairs();
    let obtained_pairs = table.row_pairs();
    let reference_pairs = table.col_pairs();
    let fp = obtained_pairs - tp;
    let fn_ = reference_pairs - tp;
    let tn = table.total_pairs() - tp - fp - fn_;

    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PairScores {
        precision,
        recall,
        f1,
        counts: PairCounts {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            true_negatives: tn,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(labels: &[usize]) -> Vec<Option<ClusterId>> {
        labels.iter().map(|&l| Some(l)).collect()
    }

    #[test]
    fn identical_clusterings_score_one() {
        let labels = wrap(&[0, 0, 1, 1, 2, 2, 2]);
        let s = pair_counting_scores(&labels, &labels);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.counts.false_positives, 0);
        assert_eq!(s.counts.false_negatives, 0);
    }

    #[test]
    fn relabelled_clusterings_score_one() {
        // Same partition, different label ids.
        let a = wrap(&[0, 0, 1, 1]);
        let b = wrap(&[7, 7, 3, 3]);
        let s = pair_counting_scores(&a, &b);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn merging_two_reference_clusters_hurts_precision_not_recall() {
        // Obtained puts everything together; reference has two clusters.
        let obtained = wrap(&[0, 0, 0, 0]);
        let reference = wrap(&[0, 0, 1, 1]);
        let s = pair_counting_scores(&obtained, &reference);
        assert_eq!(s.recall, 1.0);
        assert!(s.precision < 1.0);
        // 6 obtained pairs, 2 of them correct.
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn splitting_a_reference_cluster_hurts_recall_not_precision() {
        let obtained = wrap(&[0, 0, 1, 1]);
        let reference = wrap(&[0, 0, 0, 0]);
        let s = pair_counting_scores(&obtained, &reference);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 2.0 / 6.0).abs() < 1e-12);
        assert!(s.f1 > 0.0 && s.f1 < 1.0);
    }

    #[test]
    fn all_singletons_against_clusters() {
        let obtained: Vec<Option<ClusterId>> = vec![None; 6];
        let reference = wrap(&[0, 0, 0, 1, 1, 1]);
        let s = pair_counting_scores(&obtained, &reference);
        // No obtained pairs at all: precision defaults to 1, recall is 0.
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn counts_partition_all_pairs() {
        let a = wrap(&[0, 1, 0, 1, 2, 2, 0, 1]);
        let b = wrap(&[0, 0, 1, 1, 1, 2, 2, 0]);
        let s = pair_counting_scores(&a, &b);
        let c = s.counts;
        let total = c.true_positives + c.false_positives + c.false_negatives + c.true_negatives;
        assert_eq!(total, (8 * 7 / 2) as u64);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let a = wrap(&[0, 0, 0, 1, 1, 1]);
        let b = wrap(&[0, 0, 1, 1, 2, 2]);
        let s = pair_counting_scores(&a, &b);
        let expected = 2.0 * s.precision * s.recall / (s.precision + s.recall);
        assert!((s.f1 - expected).abs() < 1e-12);
    }

    #[test]
    fn clustering_overload_works() {
        let c1 = Clustering::new(vec![0, 0, 1, 1], vec![0, 2], vec![false; 4]);
        let c2 = Clustering::new(vec![1, 1, 0, 0], vec![2, 0], vec![false; 4]);
        let s = pair_counting_scores_for(&c1, &c2);
        assert_eq!(s.f1, 1.0);
    }
}
