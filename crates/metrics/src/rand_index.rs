//! Adjusted Rand Index (extension beyond the paper's metrics).

use dpc_core::ClusterId;

use crate::contingency::ContingencyTable;

/// Computes the Adjusted Rand Index between two labelings.
///
/// 1.0 means identical partitions, 0.0 is the chance level, negative values
/// mean worse-than-chance agreement. Noise points (`None`) are singletons.
pub fn adjusted_rand_index(a: &[Option<ClusterId>], b: &[Option<ClusterId>]) -> f64 {
    let table = ContingencyTable::new(a, b);
    let total_pairs = table.total_pairs();
    if total_pairs == 0 {
        return 1.0;
    }
    let index = table.joint_pairs() as f64;
    let row = table.row_pairs() as f64;
    let col = table.col_pairs() as f64;
    let expected = row * col / total_pairs as f64;
    let max_index = 0.5 * (row + col);
    if (max_index - expected).abs() < f64::EPSILON {
        // Degenerate case: both partitions are all-singletons or a single
        // cluster; they are identical iff the index equals the expectation.
        return 1.0;
    }
    (index - expected) / (max_index - expected)
}

/// Convenience overload for plain label vectors.
pub fn adjusted_rand_index_labels(a: &[ClusterId], b: &[ClusterId]) -> f64 {
    let a: Vec<Option<ClusterId>> = a.iter().map(|&l| Some(l)).collect();
    let b: Vec<Option<ClusterId>> = b.iter().map(|&l| Some(l)).collect();
    adjusted_rand_index(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        assert!(
            (adjusted_rand_index_labels(&[0, 0, 1, 1, 2], &[0, 0, 1, 1, 2]) - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn relabelling_does_not_matter() {
        assert!((adjusted_rand_index_labels(&[0, 0, 1, 1], &[5, 5, 9, 9]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // A checkerboard assignment of 2 clusters vs 2 clusters that share
        // exactly half their members pairwise.
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let ari = adjusted_rand_index_labels(&a, &b);
        assert!(ari.abs() < 0.2, "ari = {ari}");
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let ari = adjusted_rand_index_labels(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "ari = {ari}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        // Single cluster vs single cluster.
        assert_eq!(adjusted_rand_index_labels(&[0, 0, 0], &[1, 1, 1]), 1.0);
        // All singletons vs all singletons.
        let noise: Vec<Option<ClusterId>> = vec![None, None, None];
        assert_eq!(adjusted_rand_index(&noise, &noise), 1.0);
    }

    #[test]
    fn worse_than_chance_can_go_negative() {
        // Systematically opposed partitions of 4 points.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        let ari = adjusted_rand_index_labels(&a, &b);
        assert!(ari <= 0.0, "ari = {ari}");
    }
}
