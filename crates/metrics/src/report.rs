//! Small text/CSV result tables, used by the experiment harness to print
//! paper-style tables and to persist every series under `results/`.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use dpc_core::{DpcError, Result};

/// A simple column-oriented results table.
///
/// ```
/// use dpc_metrics::ResultTable;
/// let mut t = ResultTable::new("Table 3: memory (MiB)", &["dataset", "list", "rtree"]);
/// t.add_row(&["S1", "98.7", "5.2"]);
/// let text = t.render();
/// assert!(text.contains("dataset"));
/// assert!(text.contains("98.7"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds a row of cells (stringly typed on purpose: the harness formats
    /// numbers with experiment-specific precision).
    ///
    /// # Panics
    /// Panics if the row has a different number of cells than there are
    /// columns.
    pub fn add_row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} does not match column count {}",
            cells.len(),
            self.columns.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Convenience for rows of mixed display values.
    pub fn add_display_row(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
        self
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories as needed.
    pub fn write_csv(&self, path: &Path) -> Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(DpcError::from)?;
        }
        let mut file = File::create(path)?;
        file.write_all(self.to_csv().as_bytes())
            .map_err(DpcError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("Running time (s)", &["dataset", "list", "ch"]);
        t.add_row(&["S1", "0.0025", "0.002"]);
        t.add_row(&["Query", "0.11", "0.062"]);
        t
    }

    #[test]
    fn render_contains_title_headers_and_rows() {
        let text = sample().render();
        assert!(text.contains("Running time"));
        assert!(text.contains("dataset"));
        assert!(text.contains("Query"));
        assert!(text.contains("0.062"));
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        // "list" column starts at the same offset in header and data rows.
        let header_pos = lines[1].find("list").unwrap();
        let row_pos = lines[3].find("0.0025").unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "dataset,list,ch");
        assert!(lines[2].starts_with("Query,"));
    }

    #[test]
    fn write_csv_creates_parent_dirs() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("dpc-metrics-report-{}", std::process::id()));
        let path = dir.join("nested/table.csv");
        sample().write_csv(&path).unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains("dataset"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_row_width_panics() {
        sample().add_row(&["only-one-cell"]);
    }

    #[test]
    fn display_row_accepts_mixed_types() {
        let mut t = ResultTable::new("t", &["a", "b"]);
        t.add_display_row(&[&1.5f64, &"x"]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_csv().contains("1.5,x"));
    }
}
