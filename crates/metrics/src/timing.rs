//! Tiny measurement helpers for the experiment harness.
//!
//! Criterion handles the statistically careful micro-benchmarks; the harness
//! binaries that regenerate the paper's tables only need a robust point
//! estimate per configuration, which is what [`measure_median`] provides.
//!
//! The implementations moved to `dpc-obs` (the shared observability crate)
//! and are re-exported here so existing `dpc_metrics::timing` call sites keep
//! working.

pub use dpc_obs::{measure_median, measure_once};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn measure_once_returns_value_and_time() {
        let (t, v) = measure_once(|| (0..1000u64).sum::<u64>());
        assert_eq!(v, 499500);
        assert!(t < Duration::from_secs(5));
    }

    #[test]
    fn measure_median_runs_the_requested_number_of_times() {
        let mut counter = 0usize;
        let (_, last) = measure_median(5, || {
            counter += 1;
            counter
        });
        assert_eq!(counter, 5);
        assert_eq!(last, 5);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_panics() {
        measure_median(0, || ());
    }
}
