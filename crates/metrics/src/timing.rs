//! Tiny measurement helpers for the experiment harness.
//!
//! Criterion handles the statistically careful micro-benchmarks; the harness
//! binaries that regenerate the paper's tables only need a robust point
//! estimate per configuration, which is what [`measure_median`] provides.

use std::time::Duration;

use dpc_core::Timer;

/// Runs `f` once and returns its wall-clock time together with its result.
pub fn measure_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let timer = Timer::start();
    let value = f();
    (timer.elapsed(), value)
}

/// Runs `f` `repetitions` times and returns the median wall-clock time and
/// the result of the last run.
///
/// # Panics
/// Panics if `repetitions` is 0.
pub fn measure_median<T>(repetitions: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(
        repetitions > 0,
        "measure_median: need at least one repetition"
    );
    let mut times = Vec::with_capacity(repetitions);
    let mut last = None;
    for _ in 0..repetitions {
        let (t, value) = measure_once(&mut f);
        times.push(t);
        last = Some(value);
    }
    times.sort_unstable();
    (
        times[times.len() / 2],
        last.expect("at least one repetition ran"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_once_returns_value_and_time() {
        let (t, v) = measure_once(|| (0..1000u64).sum::<u64>());
        assert_eq!(v, 499500);
        assert!(t < Duration::from_secs(5));
    }

    #[test]
    fn measure_median_runs_the_requested_number_of_times() {
        let mut counter = 0usize;
        let (_, last) = measure_median(5, || {
            counter += 1;
            counter
        });
        assert_eq!(counter, 5);
        assert_eq!(last, 5);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_panics() {
        measure_median(0, || ());
    }
}
