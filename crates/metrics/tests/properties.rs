//! Property-based tests of the clustering-quality metrics.

use dpc_core::ClusterId;
use dpc_metrics::{
    adjusted_rand_index, normalized_mutual_information, pair_counting_scores, ContingencyTable,
};
use proptest::prelude::*;

/// Strategy: a labeling of up to 60 points over up to 6 clusters, with some
/// points marked as noise.
fn labeling_strategy() -> impl Strategy<Value = Vec<Option<ClusterId>>> {
    prop::collection::vec(
        prop_oneof![3 => (0usize..6).prop_map(Some), 1 => Just(None)],
        1..60,
    )
}

/// A random permutation of cluster ids applied to a labeling (noise stays
/// noise).
fn permute(labels: &[Option<ClusterId>], offset: usize) -> Vec<Option<ClusterId>> {
    labels
        .iter()
        .map(|l| l.map(|c| (c * 7 + offset) % 31 + 100))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scores_lie_in_the_unit_interval(a in labeling_strategy(), b in labeling_strategy()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let s = pair_counting_scores(a, b);
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1));
        let nmi = normalized_mutual_information(a, b);
        prop_assert!((0.0..=1.0).contains(&nmi));
        let ari = adjusted_rand_index(a, b);
        prop_assert!(ari <= 1.0 + 1e-12);
    }

    #[test]
    fn comparing_a_labeling_with_itself_is_perfect(a in labeling_strategy()) {
        let s = pair_counting_scores(&a, &a);
        prop_assert_eq!(s.precision, 1.0);
        prop_assert_eq!(s.recall, 1.0);
        prop_assert_eq!(s.f1, 1.0);
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_invariant_to_relabelling(a in labeling_strategy(), b in labeling_strategy(), off in 0usize..13) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let b_permuted = permute(b, off);
        let s1 = pair_counting_scores(a, b);
        let s2 = pair_counting_scores(a, &b_permuted);
        prop_assert!((s1.f1 - s2.f1).abs() < 1e-12);
        prop_assert!((adjusted_rand_index(a, b) - adjusted_rand_index(a, &b_permuted)).abs() < 1e-9);
        prop_assert!(
            (normalized_mutual_information(a, b) - normalized_mutual_information(a, &b_permuted)).abs() < 1e-9
        );
    }

    #[test]
    fn precision_and_recall_swap_when_the_arguments_swap(
        a in labeling_strategy(),
        b in labeling_strategy()
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let forward = pair_counting_scores(a, b);
        let backward = pair_counting_scores(b, a);
        prop_assert!((forward.precision - backward.recall).abs() < 1e-12);
        prop_assert!((forward.recall - backward.precision).abs() < 1e-12);
        prop_assert!((forward.f1 - backward.f1).abs() < 1e-12);
        // ARI and NMI are symmetric.
        prop_assert!((adjusted_rand_index(a, b) - adjusted_rand_index(b, a)).abs() < 1e-9);
        prop_assert!(
            (normalized_mutual_information(a, b) - normalized_mutual_information(b, a)).abs() < 1e-9
        );
    }

    #[test]
    fn pair_counts_partition_the_pair_universe(a in labeling_strategy(), b in labeling_strategy()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let s = pair_counting_scores(a, b);
        let c = s.counts;
        let total = n as u64 * (n as u64 - 1) / 2;
        prop_assert_eq!(
            c.true_positives + c.false_positives + c.false_negatives + c.true_negatives,
            total
        );
    }

    #[test]
    fn contingency_marginals_are_consistent(a in labeling_strategy(), b in labeling_strategy()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let t = ContingencyTable::new(a, b);
        prop_assert_eq!(t.total(), n);
        prop_assert_eq!(t.row_sums().iter().sum::<usize>(), n);
        prop_assert_eq!(t.col_sums().iter().sum::<usize>(), n);
        prop_assert!(t.joint_pairs() <= t.row_pairs());
        prop_assert!(t.joint_pairs() <= t.col_pairs());
        prop_assert!(t.row_pairs() <= t.total_pairs());
        prop_assert!(t.col_pairs() <= t.total_pairs());
    }

    #[test]
    fn coarsening_a_partition_keeps_recall_at_one(a in labeling_strategy()) {
        // Merging all clusters into one can only create pairs, so every
        // reference pair is preserved: recall(merged vs original) = 1.
        let merged: Vec<Option<ClusterId>> = a.iter().map(|_| Some(0)).collect();
        let s = pair_counting_scores(&merged, &a);
        prop_assert_eq!(s.recall, 1.0);
        // And the opposite direction keeps precision at one.
        let s = pair_counting_scores(&a, &merged);
        prop_assert_eq!(s.precision, 1.0);
    }
}
