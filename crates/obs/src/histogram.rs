//! A mergeable log-bucketed histogram for `u64` samples.

/// Number of buckets: one for the value `0`, plus one per bit length
/// (1 through 64).
pub(crate) const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds only the value `0`; bucket `k` (for `k >= 1`) holds
/// values whose bit length is `k`, i.e. the range `[2^(k-1), 2^k - 1]`.
/// `u64::MAX` lands in bucket 64. Alongside the buckets the histogram tracks
/// exact `count`, `sum` (saturating), `min` and `max`, so means stay precise
/// even though per-bucket resolution is a power of two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive `[lo, hi]` range of values covered by bucket `index`.
    ///
    /// # Panics
    /// Panics if `index >= 65`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index {index} out of range");
        if index == 0 {
            (0, 0)
        } else if index == 64 {
            (1 << 63, u64::MAX)
        } else {
            (1 << (index - 1), (1 << index) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// An upper bound on the value at quantile `q` (`0.0..=1.0`), or `None`
    /// if the histogram is empty.
    ///
    /// Walks the log2 buckets until the cumulative count reaches
    /// `ceil(q * count)` and reports that bucket's upper edge, clamped to the
    /// exact recorded `min`/`max`. Resolution is therefore one power of two,
    /// but the answer never under-reports: the true quantile value is `<=`
    /// the returned bound. `q` outside `[0, 1]` is clamped.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                let (_, hi) = Histogram::bucket_range(index);
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lo, hi, count)` ranges, lowest first.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Histogram::bucket_range(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn zero_lands_in_its_own_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(h.nonzero_buckets(), vec![(0, 0, 1)]);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.mean(), Some(0.0));
    }

    #[test]
    fn u64_max_lands_in_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(h.nonzero_buckets(), vec![(1 << 63, u64::MAX, 1)]);
        assert_eq!(h.max(), Some(u64::MAX));
        // A second MAX sample saturates the sum instead of wrapping.
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn bucket_boundaries_split_at_powers_of_two() {
        // Each power of two opens a new bucket; the value just below it
        // closes the previous one.
        for k in 1..64 {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(Histogram::bucket_index(lo), k, "lo of bucket {k}");
            assert_eq!(Histogram::bucket_index(hi), k, "hi of bucket {k}");
            if k >= 2 {
                assert_eq!(Histogram::bucket_index(lo - 1), k - 1);
            }
            assert_eq!(Histogram::bucket_range(k), (lo, hi));
        }
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_range(64), (1 << 63, u64::MAX));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket_range_rejects_out_of_range_index() {
        let _ = Histogram::bucket_range(65);
    }

    #[test]
    fn merge_combines_buckets_and_extrema() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(0);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 1 + 100 + 1_000_000);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(1_000_000));
        let total: u64 = a.nonzero_buckets().iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantiles_are_clamped_upper_bounds() {
        assert_eq!(Histogram::new().value_at_quantile(0.5), None);
        let mut h = Histogram::new();
        h.record(10);
        // Single sample: every quantile is that sample.
        assert_eq!(h.value_at_quantile(0.0), Some(10));
        assert_eq!(h.value_at_quantile(0.5), Some(10));
        assert_eq!(h.value_at_quantile(1.0), Some(10));
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.value_at_quantile(0.5).unwrap();
        let p99 = h.value_at_quantile(0.99).unwrap();
        // Upper bounds: at least the true quantile, at most the next
        // power-of-two edge (and never beyond the recorded max).
        assert!((50..=63).contains(&p50), "p50 bound was {p50}");
        assert!((99..=100).contains(&p99), "p99 bound was {p99}");
        assert_eq!(h.value_at_quantile(1.0), Some(100));
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(h.value_at_quantile(-1.0), Some(1));
        assert_eq!(h.value_at_quantile(2.0), Some(100));
    }

    #[test]
    fn mean_is_exact_despite_bucketing() {
        let mut h = Histogram::new();
        for v in [3u64, 5, 7] {
            h.record(v);
        }
        assert_eq!(h.mean(), Some(5.0));
    }
}
