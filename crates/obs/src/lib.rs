//! Observability substrate for the density-peaks workspace.
//!
//! This crate is deliberately **zero-dependency**: it provides the one
//! [`Recorder`] trait every other crate emits into, plus two concrete sinks
//! and the shared wall-clock timing helpers that used to be duplicated in
//! `dpc_core::stats` and `dpc_metrics::timing`.
//!
//! # Design
//!
//! * [`Recorder`] — the emission interface: atomic counters, gauges,
//!   log-bucketed histogram samples, nestable spans, and structured events.
//! * [`NoopRecorder`] / [`noop()`] — the default sink. Its
//!   [`Recorder::enabled`] returns `false`, every method is an empty inline
//!   body, and [`span`] guards skip even the `Instant::now()` call, so code
//!   instrumented against the no-op recorder runs the same instructions as
//!   uninstrumented code up to a predictable branch.
//! * [`MetricsRecorder`] — a pull-style registry of atomic counters, gauges
//!   and [`Histogram`]s, snapshotted with
//!   [`MetricsRecorder::snapshot`] and rendered as a text table.
//! * [`TraceSink`] — an append-only event log exportable as JSON lines
//!   ([`TraceSink::to_jsonl`]) or as Chrome trace-event format
//!   ([`TraceSink::to_chrome_json`]) loadable in Perfetto or
//!   `chrome://tracing`.
//! * [`Fanout`] — combines several sinks behind one `Arc`.
//!
//! # Example
//!
//! ```
//! use dpc_obs::{span, MetricsRecorder, Recorder, SharedRecorder};
//! use std::sync::Arc;
//!
//! let metrics = Arc::new(MetricsRecorder::new());
//! let rec: SharedRecorder = metrics.clone();
//! {
//!     let _guard = span(&rec, "work");
//!     rec.counter("items", 3);
//! }
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("items"), Some(3));
//! assert_eq!(snap.histogram("work_us").map(|h| h.count()), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod metrics;
mod recorder;
mod timing;
mod trace;

pub use histogram::Histogram;
pub use metrics::{MetricsRecorder, MetricsSnapshot};
pub use recorder::{noop, span, AttrValue, Fanout, NoopRecorder, Recorder, SharedRecorder, Span};
pub use timing::{format_duration, measure_median, measure_once, Timer};
pub use trace::{TraceEvent, TraceSink};
