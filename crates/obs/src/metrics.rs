//! A pull-style metrics registry: atomic counters and gauges, mutex-guarded
//! log-bucketed histograms, snapshot + text-table rendering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::recorder::{AttrValue, Recorder};

/// A [`Recorder`] that aggregates everything into named metrics.
///
/// Counters and gauges are lock-free atomics once registered (registration
/// takes a short write lock). Histogram samples take a per-metric mutex.
/// Spans are folded into a histogram named `<span>_us` (duration in
/// microseconds); events increment a counter named `<event>.events` and set
/// one gauge per numeric attribute (`<event>.<attr>`), so the latest policy
/// decision is always visible in a snapshot.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

impl MetricsRecorder {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().expect("counter lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("counter lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    fn gauge_cell(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.gauges.read().expect("gauge lock").get(name) {
            return Arc::clone(c);
        }
        let mut map = self.gauges.write().expect("gauge lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    fn histogram_cell(&self, name: &str) -> Arc<Mutex<Histogram>> {
        if let Some(h) = self.histograms.read().expect("histogram lock").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("histogram lock");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("counter lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("gauge lock")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("histogram lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.lock().expect("histogram cell").clone()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Recorder for MetricsRecorder {
    fn counter(&self, name: &str, delta: u64) {
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.gauge_cell(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }

    fn record(&self, name: &str, value: u64) {
        self.histogram_cell(name)
            .lock()
            .expect("histogram cell")
            .record(value);
    }

    fn span(&self, name: &str, _start: Instant, dur: Duration) {
        let micros = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        self.record(&format!("{name}_us"), micros);
    }

    fn event(&self, name: &str, attrs: &[(&str, AttrValue<'_>)]) {
        self.counter(&format!("{name}.events"), 1);
        for (key, value) in attrs {
            match value {
                AttrValue::U64(v) => self.gauge(&format!("{name}.{key}"), *v as f64),
                AttrValue::F64(v) => self.gauge(&format!("{name}.{key}"), *v),
                AttrValue::Str(_) => {}
            }
        }
    }
}

/// A point-in-time copy of a [`MetricsRecorder`]'s contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The named counter's value, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as an aligned text table, one metric per line.
    pub fn render(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {value:.3}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, hist) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  count={} sum={} min={} max={} mean={:.1}\n",
                    hist.count(),
                    hist.sum(),
                    hist.min().unwrap_or(0),
                    hist.max().unwrap_or(0),
                    hist.mean().unwrap_or(0.0),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let m = MetricsRecorder::new();
        m.counter("epochs", 1);
        m.counter("epochs", 2);
        m.gauge("dead_fraction", 0.25);
        m.gauge("dead_fraction", 0.5);
        let snap = m.snapshot();
        assert_eq!(snap.counter("epochs"), Some(3));
        assert_eq!(snap.gauge("dead_fraction"), Some(0.5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn spans_become_microsecond_histograms() {
        let m = MetricsRecorder::new();
        m.span("phase", Instant::now(), Duration::from_micros(250));
        m.span("phase", Instant::now(), Duration::from_micros(750));
        let snap = m.snapshot();
        let h = snap.histogram("phase_us").expect("span histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1000);
    }

    #[test]
    fn events_count_and_expose_numeric_attrs_as_gauges() {
        let m = MetricsRecorder::new();
        m.event(
            "decision",
            &[
                ("predicted_us", AttrValue::F64(120.5)),
                ("invalidated", AttrValue::U64(7)),
                ("mode", AttrValue::Str("rebuild")),
            ],
        );
        let snap = m.snapshot();
        assert_eq!(snap.counter("decision.events"), Some(1));
        assert_eq!(snap.gauge("decision.predicted_us"), Some(120.5));
        assert_eq!(snap.gauge("decision.invalidated"), Some(7.0));
        assert_eq!(snap.gauge("decision.mode"), None);
    }

    #[test]
    fn render_lists_every_section() {
        let m = MetricsRecorder::new();
        m.counter("c", 1);
        m.gauge("g", 2.0);
        m.record("h", 3);
        let text = m.snapshot().render();
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("count=1"));
        assert!(MetricsSnapshot::default().render().contains("no metrics"));
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let m = Arc::new(MetricsRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.counter("hits", 1);
                        m.record("vals", 2);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counter("hits"), Some(4000));
        assert_eq!(snap.histogram("vals").map(|h| h.count()), Some(4000));
    }
}
