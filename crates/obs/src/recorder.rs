//! The [`Recorder`] trait, the no-op default, RAII [`Span`] guards, and the
//! [`Fanout`] combinator.

use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A value attached to a structured [`Recorder::event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue<'a> {
    /// An unsigned integer attribute.
    U64(u64),
    /// A floating-point attribute.
    F64(f64),
    /// A string attribute.
    Str(&'a str),
}

impl fmt::Display for AttrValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// The emission interface instrumented code writes into.
///
/// Implementations must be cheap and thread-safe: methods are called from
/// worker threads inside the parallel executor. Instrumented call sites that
/// need to allocate (e.g. to format a metric name) should check
/// [`Recorder::enabled`] first so the no-op path stays allocation-free.
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Whether this recorder keeps anything. `false` lets call sites skip
    /// name formatting and clock reads entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the named gauge to an absolute value.
    fn gauge(&self, name: &str, value: f64);

    /// Records one sample into the named log-bucketed histogram.
    fn record(&self, name: &str, value: u64);

    /// Reports a completed span: `name` ran from `start` for `dur`.
    fn span(&self, name: &str, start: Instant, dur: Duration);

    /// Reports a structured point-in-time event with attributes.
    fn event(&self, name: &str, attrs: &[(&str, AttrValue<'_>)]);
}

/// A shareable, dynamically-dispatched recorder handle.
pub type SharedRecorder = Arc<dyn Recorder>;

/// The default recorder: drops everything.
///
/// All methods are empty and [`Recorder::enabled`] returns `false`, so
/// instrumentation against the no-op recorder reduces to a branch — no clock
/// reads, no allocation, no locking.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn counter(&self, _name: &str, _delta: u64) {}

    fn gauge(&self, _name: &str, _value: f64) {}

    fn record(&self, _name: &str, _value: u64) {}

    fn span(&self, _name: &str, _start: Instant, _dur: Duration) {}

    fn event(&self, _name: &str, _attrs: &[(&str, AttrValue<'_>)]) {}
}

/// The process-wide shared [`NoopRecorder`] handle. Cloning it is a cheap
/// reference-count bump; engines default to it.
pub fn noop() -> SharedRecorder {
    static NOOP: OnceLock<SharedRecorder> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Arc::new(NoopRecorder)))
}

/// An RAII guard that reports a [`Recorder::span`] when dropped.
///
/// Created by [`span`]. When the recorder is disabled the guard is inert and
/// never reads the clock. Nesting falls out of construction order: create the
/// outer guard first and drop it last.
#[must_use = "a span guard reports its duration on drop"]
pub struct Span<'r> {
    active: Option<(&'r dyn Recorder, &'r str, Instant)>,
}

impl fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.active {
            Some((_, name, _)) => write!(f, "Span({name})"),
            None => write!(f, "Span(disabled)"),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((rec, name, start)) = self.active.take() {
            rec.span(name, start, start.elapsed());
        }
    }
}

/// Starts a timed span against `rec`, reported when the guard drops.
pub fn span<'r>(rec: &'r SharedRecorder, name: &'r str) -> Span<'r> {
    let active = if rec.enabled() {
        Some((&**rec as &dyn Recorder, name, Instant::now()))
    } else {
        None
    };
    Span { active }
}

/// Broadcasts every emission to each inner sink in order.
///
/// Used by the CLI to feed a [`crate::MetricsRecorder`] and a
/// [`crate::TraceSink`] from the same instrumented engine.
#[derive(Debug, Default)]
pub struct Fanout {
    sinks: Vec<SharedRecorder>,
}

impl Fanout {
    /// An empty fanout (behaves like the no-op recorder).
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a sink; builder-style.
    pub fn with(mut self, sink: SharedRecorder) -> Self {
        self.sinks.push(sink);
        self
    }

    /// The number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Recorder for Fanout {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn counter(&self, name: &str, delta: u64) {
        for s in &self.sinks {
            s.counter(name, delta);
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        for s in &self.sinks {
            s.gauge(name, value);
        }
    }

    fn record(&self, name: &str, value: u64) {
        for s in &self.sinks {
            s.record(name, value);
        }
    }

    fn span(&self, name: &str, start: Instant, dur: Duration) {
        for s in &self.sinks {
            s.span(name, start, dur);
        }
    }

    fn event(&self, name: &str, attrs: &[(&str, AttrValue<'_>)]) {
        for s in &self.sinks {
            s.event(name, attrs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRecorder;

    #[test]
    fn noop_is_disabled_and_shared() {
        let a = noop();
        let b = noop();
        assert!(!a.enabled());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn span_against_noop_is_inert() {
        let rec = noop();
        let guard = span(&rec, "never-recorded");
        assert!(format!("{guard:?}").contains("disabled"));
    }

    #[test]
    fn span_reports_on_drop() {
        let metrics = Arc::new(MetricsRecorder::new());
        let rec: SharedRecorder = metrics.clone();
        {
            let _g = span(&rec, "outer");
            let _h = span(&rec, "inner");
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.histogram("outer_us").map(|h| h.count()), Some(1));
        assert_eq!(snap.histogram("inner_us").map(|h| h.count()), Some(1));
    }

    #[test]
    fn fanout_broadcasts_to_all_sinks() {
        let a = Arc::new(MetricsRecorder::new());
        let b = Arc::new(MetricsRecorder::new());
        let fan = Fanout::new()
            .with(a.clone() as SharedRecorder)
            .with(b.clone() as SharedRecorder);
        assert_eq!(fan.len(), 2);
        assert!(fan.enabled());
        fan.counter("x", 5);
        fan.gauge("g", 1.5);
        fan.record("h", 7);
        assert_eq!(a.snapshot().counter("x"), Some(5));
        assert_eq!(b.snapshot().counter("x"), Some(5));
        assert_eq!(b.snapshot().gauge("g"), Some(1.5));
        assert_eq!(b.snapshot().histogram("h").map(|h| h.sum()), Some(7));
    }

    #[test]
    fn empty_fanout_reports_disabled() {
        assert!(!Fanout::new().enabled());
        assert!(Fanout::new().is_empty());
    }

    #[test]
    fn attr_value_displays_plainly() {
        assert_eq!(AttrValue::U64(3).to_string(), "3");
        assert_eq!(AttrValue::F64(2.5).to_string(), "2.5");
        assert_eq!(AttrValue::Str("rebuild").to_string(), "rebuild");
    }
}
