//! Shared wall-clock timing helpers.
//!
//! These used to exist twice — a `Timer` in `dpc_core::stats` and the
//! `measure_*` helpers in `dpc_metrics::timing` — and now live here once,
//! re-exported from both old paths.

use std::time::{Duration, Instant};

/// A simple wall-clock timer.
///
/// ```
/// use dpc_obs::Timer;
/// let t = Timer::start();
/// let _work: u64 = (0..1000u64).sum();
/// assert!(t.elapsed() >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts the timer now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Time elapsed since the timer was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Formats a duration with a resolution adapted to its magnitude.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.1} µs", secs * 1e6)
    }
}

/// Runs `f` once and returns its wall-clock time together with its result.
pub fn measure_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let timer = Timer::start();
    let value = f();
    (timer.elapsed(), value)
}

/// Runs `f` `repetitions` times and returns the median wall-clock time and
/// the result of the last run.
///
/// # Panics
/// Panics if `repetitions` is 0.
pub fn measure_median<T>(repetitions: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(
        repetitions > 0,
        "measure_median: need at least one repetition"
    );
    let mut times = Vec::with_capacity(repetitions);
    let mut last = None;
    for _ in 0..repetitions {
        let (t, value) = measure_once(&mut f);
        times.push(t);
        last = Some(value);
    }
    times.sort_unstable();
    (
        times[times.len() / 2],
        last.expect("at least one repetition ran"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_nonnegative_time() {
        let t = Timer::start();
        assert!(t.elapsed_secs() >= 0.0);
        assert!(t.elapsed() <= Duration::from_secs(60));
    }

    #[test]
    fn format_duration_scales_units() {
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(format_duration(Duration::from_millis(5)).ends_with(" ms"));
        assert!(format_duration(Duration::from_micros(7)).ends_with(" µs"));
    }

    #[test]
    fn measure_once_returns_value_and_time() {
        let (t, v) = measure_once(|| (0..1000u64).sum::<u64>());
        assert_eq!(v, 499500);
        assert!(t < Duration::from_secs(5));
    }

    #[test]
    fn measure_median_runs_the_requested_number_of_times() {
        let mut counter = 0usize;
        let (_, last) = measure_median(5, || {
            counter += 1;
            counter
        });
        assert_eq!(counter, 5);
        assert_eq!(last, 5);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_panics() {
        measure_median(0, || ());
    }
}
