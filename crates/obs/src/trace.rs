//! An append-only trace sink exportable as JSON lines or Chrome trace-event
//! format (loadable in Perfetto / `chrome://tracing`).

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use crate::recorder::{AttrValue, Recorder};

/// One captured trace event.
///
/// `ph` follows the Chrome trace-event phase codes: `X` for complete spans
/// (with `dur_us`), `i` for instants, `C` for counter samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span/phase name or event name).
    pub name: String,
    /// Chrome phase code: `'X'`, `'i'`, or `'C'`.
    pub ph: char,
    /// Start time in microseconds since the sink was created.
    pub ts_us: u64,
    /// Span duration in microseconds (`X` events only).
    pub dur_us: Option<u64>,
    /// Small integer id of the emitting thread.
    pub tid: u64,
    /// Structured arguments rendered into the `args` object.
    pub args: Vec<(String, ArgValue)>,
}

/// An argument value carried by a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl ArgValue {
    fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_owned()
                }
            }
            ArgValue::Str(s) => json_string(s),
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A [`Recorder`] that buffers every span and event as a [`TraceEvent`].
///
/// Timestamps are microseconds relative to the sink's creation. Spans become
/// Chrome `X` (complete) events, so nesting falls out of timestamp
/// containment per thread lane; structured events become `i` instants with
/// their attributes in `args`; gauges become `C` counter samples so index
/// maintenance pressure is plottable as a counter track. Counters and
/// histogram samples are aggregates, not timeline points, and are left to
/// [`crate::MetricsRecorder`].
#[derive(Debug)]
pub struct TraceSink {
    origin: Instant,
    events: Mutex<Vec<TraceEvent>>,
    tids: Mutex<HashMap<ThreadId, u64>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A new sink; timestamps are measured from this call.
    pub fn new() -> Self {
        TraceSink {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
            tids: Mutex::new(HashMap::new()),
        }
    }

    fn tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut map = self.tids.lock().expect("tid lock");
        let next = map.len() as u64;
        *map.entry(id).or_insert(next)
    }

    fn ts_us(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.origin).as_micros()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: TraceEvent) {
        self.events.lock().expect("event lock").push(event);
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event lock").len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the captured events in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("event lock").clone()
    }

    fn event_json(e: &TraceEvent) -> String {
        let mut obj = format!(
            "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            json_string(&e.name),
            e.ph,
            e.ts_us,
            e.tid
        );
        if let Some(dur) = e.dur_us {
            obj.push_str(&format!(",\"dur\":{dur}"));
        }
        if e.ph == 'i' {
            // Thread-scoped instant marker.
            obj.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            obj.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    obj.push(',');
                }
                obj.push_str(&format!("{}:{}", json_string(k), v.to_json()));
            }
            obj.push('}');
        }
        obj.push('}');
        obj
    }

    /// The captured events as JSON lines: one Chrome trace-event object per
    /// line, suitable for streaming appends and `jq`.
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().expect("event lock");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&TraceSink::event_json(e));
            out.push('\n');
        }
        out
    }

    /// The captured events as a complete Chrome trace-event JSON document
    /// (`{"traceEvents": [...], ...}`), loadable in Perfetto or
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock().expect("event lock");
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&TraceSink::event_json(e));
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

impl Recorder for TraceSink {
    fn counter(&self, _name: &str, _delta: u64) {}

    fn gauge(&self, name: &str, value: f64) {
        let ts_us = self.ts_us(Instant::now());
        self.push(TraceEvent {
            name: name.to_owned(),
            ph: 'C',
            ts_us,
            dur_us: None,
            tid: self.tid(),
            args: vec![("value".to_owned(), ArgValue::F64(value))],
        });
    }

    fn record(&self, _name: &str, _value: u64) {}

    fn span(&self, name: &str, start: Instant, dur: Duration) {
        // The duration is derived from the two *floored* endpoints rather
        // than floored independently: flooring is monotone, so a span that
        // really ends no later than its parent also gets `ts_us + dur_us`
        // no later than its parent's — truncating start and duration
        // separately can push a child's computed end 1 µs past the
        // enclosing span's, breaking time-containment nesting in the
        // exported trace.
        let ts_us = self.ts_us(start);
        let end_us = self.ts_us(start + dur);
        let dur_us = end_us.saturating_sub(ts_us);
        self.push(TraceEvent {
            name: name.to_owned(),
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us),
            tid: self.tid(),
            args: Vec::new(),
        });
    }

    fn event(&self, name: &str, attrs: &[(&str, AttrValue<'_>)]) {
        let ts_us = self.ts_us(Instant::now());
        let args = attrs
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    AttrValue::U64(n) => ArgValue::U64(*n),
                    AttrValue::F64(n) => ArgValue::F64(*n),
                    AttrValue::Str(s) => ArgValue::Str((*s).to_owned()),
                };
                ((*k).to_owned(), value)
            })
            .collect();
        self.push(TraceEvent {
            name: name.to_owned(),
            ph: 'i',
            ts_us,
            dur_us: None,
            tid: self.tid(),
            args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{span, SharedRecorder};
    use std::sync::Arc;

    #[test]
    fn spans_become_complete_events_with_containment() {
        let sink = Arc::new(TraceSink::new());
        let rec: SharedRecorder = sink.clone();
        {
            let _outer = span(&rec, "outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span(&rec, "inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        // Inner drops first, so it is recorded first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.ph, 'X');
        // Containment: outer starts no later and ends no earlier.
        assert!(outer.ts_us <= inner.ts_us);
        assert!(
            outer.ts_us + outer.dur_us.unwrap() >= inner.ts_us + inner.dur_us.unwrap(),
            "outer span must contain inner span"
        );
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn instants_carry_args() {
        let sink = TraceSink::new();
        sink.event(
            "decision",
            &[
                ("predicted_us", AttrValue::F64(10.5)),
                ("mode", AttrValue::Str("incremental")),
            ],
        );
        let json = sink.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"predicted_us\":10.5"));
        assert!(json.contains("\"mode\":\"incremental\""));
        assert!(json.contains("\"s\":\"t\""));
    }

    #[test]
    fn gauges_become_counter_tracks() {
        let sink = TraceSink::new();
        sink.gauge("index.rebuilds", 3.0);
        let events = sink.events();
        assert_eq!(events[0].ph, 'C');
        assert_eq!(events[0].args[0].1, ArgValue::F64(3.0));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let sink = TraceSink::new();
        sink.event("a", &[]);
        sink.event("b", &[]);
        let jsonl = sink.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_json_has_required_keys_and_balanced_structure() {
        let sink = Arc::new(TraceSink::new());
        let rec: SharedRecorder = sink.clone();
        {
            let _s = span(&rec, "phase \"quoted\"\n");
        }
        let json = sink.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\\\"quoted\\\"\\n"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces must balance"
        );
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn threads_get_stable_small_tids() {
        let sink = Arc::new(TraceSink::new());
        sink.event("main", &[]);
        sink.event("main-again", &[]);
        let sink2 = Arc::clone(&sink);
        std::thread::spawn(move || sink2.event("worker", &[]))
            .join()
            .expect("worker thread");
        let events = sink.events();
        assert_eq!(events[0].tid, events[1].tid);
        assert_ne!(events[0].tid, events[2].tid);
    }
}
