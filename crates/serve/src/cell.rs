//! The publication cell: an append-only snapshot chain readers walk without
//! locks, plus a bounded ring of [`ClusterDelta`]s for subscription replay.
//!
//! # Lock analysis
//!
//! The hot read path — [`SnapshotReader::current`](crate::SnapshotReader) —
//! takes **no lock**: the reader holds an `Arc` to its current `ChainNode`
//! and advances by loading the node's `next` cell ([`OnceLock::get`], one
//! atomic load per hop, usually zero hops). It can neither block the writer
//! nor be blocked by it, and it can never observe a torn snapshot because a
//! node's payload is an immutable [`EpochSnapshot`] frozen before the node
//! is linked in.
//!
//! Two mutexes exist *off* the hot path, documented honestly:
//!
//! * `tail` — touched by the single writer on publish and by
//!   `SnapshotCell::tail_node` when a *new reader is created*. Reader
//!   creation is rare; steady-state queries never touch it.
//! * `ring` — touched by the writer on publish and by subscription replay
//!   ([`SnapshotReader::deltas_since`](crate::SnapshotReader)). Replay is a
//!   catch-up operation, not a per-query step.
//!
//! # Publish ordering
//!
//! [`SnapshotCell::publish`] pushes the epoch's delta into the ring *before*
//! linking the snapshot into the chain, and bumps the published counter
//! last. A reader that observes a snapshot at epoch `E` is therefore
//! guaranteed the ring already processed every delta up to `E` — the chain
//! is never ahead of the ring.
//!
//! # Memory
//!
//! Old chain nodes are freed as soon as every reader has advanced past them
//! (each hop drops the previous node's `Arc`). An abandoned reader that is
//! never polled pins history from its cursor onward; drop readers you no
//! longer poll.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use dpc_obs::SharedRecorder;
use dpc_stream::{ClusterDelta, EpochSnapshot, SnapshotSink};

/// One link of the append-only snapshot chain.
///
/// The payload is immutable once the node is constructed; `next` is written
/// exactly once, by the single writer, when the following epoch publishes.
pub(crate) struct ChainNode {
    pub(crate) snap: Arc<EpochSnapshot>,
    pub(crate) next: OnceLock<Arc<ChainNode>>,
}

impl ChainNode {
    fn new(snap: Arc<EpochSnapshot>) -> Arc<Self> {
        Arc::new(ChainNode {
            snap,
            next: OnceLock::new(),
        })
    }
}

/// Bounded FIFO of per-epoch deltas. When full, the oldest delta is evicted
/// — subscribers that fall further behind than the capacity must resync.
#[derive(Debug)]
struct DeltaRing {
    capacity: usize,
    deltas: VecDeque<ClusterDelta>,
    /// Total deltas evicted since construction (diagnostics).
    evicted: u64,
}

impl DeltaRing {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "delta ring capacity must be positive");
        DeltaRing {
            capacity,
            deltas: VecDeque::with_capacity(capacity),
            evicted: 0,
        }
    }

    fn push(&mut self, delta: ClusterDelta) {
        if self.deltas.len() == self.capacity {
            self.deltas.pop_front();
            self.evicted += 1;
        }
        self.deltas.push_back(delta);
    }
}

/// The answer to a [`deltas_since`](crate::SnapshotReader::deltas_since)
/// subscription poll.
#[derive(Debug, Clone)]
pub enum Replay {
    /// The contiguous deltas from `since + 1` through the latest published
    /// epoch, oldest first. Empty means the subscriber is already up to
    /// date.
    Deltas(Vec<ClusterDelta>),
    /// The ring no longer holds every delta the subscriber missed (it fell
    /// more than the ring capacity behind). Rebase on this full snapshot
    /// and resume polling from its epoch.
    Resync(Arc<EpochSnapshot>),
}

impl Replay {
    /// Whether this replay demands a full resync.
    pub fn is_resync(&self) -> bool {
        matches!(self, Replay::Resync(_))
    }

    /// The replayed deltas, or `None` for a resync.
    pub fn deltas(&self) -> Option<&[ClusterDelta]> {
        match self {
            Replay::Deltas(d) => Some(d),
            Replay::Resync(_) => None,
        }
    }
}

/// The single-writer / many-reader publication point.
///
/// Attach a cell to a [`StreamingDpc`](dpc_stream::StreamingDpc) via
/// [`set_snapshot_sink`](dpc_stream::StreamingDpc::set_snapshot_sink) (the
/// [`Server`](crate::Server) wrapper does this for you) and hand
/// [`SnapshotReader`](crate::SnapshotReader)s to query threads. See the
/// [module docs](self) for the lock analysis and ordering contract.
pub struct SnapshotCell {
    /// Newest chain node. Locked only on publish and reader creation.
    tail: Mutex<Arc<ChainNode>>,
    /// Count of epochs published through this cell (excludes the seed
    /// snapshot the cell was constructed with).
    published: AtomicU64,
    ring: Mutex<DeltaRing>,
    recorder: SharedRecorder,
}

impl fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("published", &self.published.load(Ordering::Acquire))
            .field("latest_epoch", &self.latest_epoch())
            .finish_non_exhaustive()
    }
}

impl SnapshotCell {
    /// Creates a cell seeded with `initial` (published immediately as the
    /// chain head, *without* a ring entry — there is no delta to replay for
    /// a snapshot consumers start from).
    ///
    /// # Panics
    /// Panics if `ring_capacity` is zero.
    pub fn new(initial: Arc<EpochSnapshot>, ring_capacity: usize) -> Self {
        SnapshotCell {
            tail: Mutex::new(ChainNode::new(initial)),
            published: AtomicU64::new(0),
            ring: Mutex::new(DeltaRing::new(ring_capacity)),
            recorder: dpc_obs::noop(),
        }
    }

    /// Publishes reader/writer metrics through `recorder`; builder-style.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The recorder this cell emits into.
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    /// Number of epochs published since construction (the seed snapshot is
    /// not counted).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Epoch of the newest published snapshot. Locks `tail` briefly; meant
    /// for monitoring, not the query path — readers track their own epoch.
    pub fn latest_epoch(&self) -> u64 {
        self.tail.lock().unwrap().snap.epoch()
    }

    /// The newest chain node, for seeding a reader cursor. Locks `tail`
    /// briefly (reader creation only — never on the query path).
    pub(crate) fn tail_node(&self) -> Arc<ChainNode> {
        Arc::clone(&self.tail.lock().unwrap())
    }

    /// Deltas evicted from the ring since construction.
    pub fn ring_evictions(&self) -> u64 {
        self.ring.lock().unwrap().evicted
    }

    /// Computes the replay for a subscriber that last saw epoch `since`,
    /// given the `latest` snapshot its reader just refreshed to.
    ///
    /// Published epochs are contiguous (the engine increments its epoch
    /// exactly when a non-empty commit succeeds, and publishes exactly
    /// then), so the ring's entries with `epoch > since` are a complete
    /// replay if and only if they start at `since + 1`.
    pub(crate) fn replay_since(&self, since: u64, latest: Arc<EpochSnapshot>) -> Replay {
        let newer: Vec<ClusterDelta> = {
            let ring = self.ring.lock().unwrap();
            ring.deltas
                .iter()
                .filter(|d| d.epoch > since)
                .cloned()
                .collect()
        };
        match newer.first() {
            None if latest.epoch() > since => Replay::Resync(latest),
            None => Replay::Deltas(Vec::new()),
            Some(first) if first.epoch == since + 1 => Replay::Deltas(newer),
            Some(_) => Replay::Resync(latest),
        }
    }
}

impl SnapshotSink for SnapshotCell {
    /// Publishes one committed epoch: ring first, then the chain, then the
    /// published counter (see the [module docs](self) for why this order).
    ///
    /// # Panics
    /// Panics if two writers race a publish — the serving layer is
    /// single-writer by contract, and a violated contract must not be
    /// silently absorbed.
    fn publish(&self, snapshot: Arc<EpochSnapshot>) {
        self.ring.lock().unwrap().push(snapshot.delta().clone());
        let node = ChainNode::new(Arc::clone(&snapshot));
        {
            let mut tail = self.tail.lock().unwrap();
            tail.next
                .set(Arc::clone(&node))
                .unwrap_or_else(|_| panic!("single-writer publication contract violated"));
            *tail = node;
        }
        self.published.fetch_add(1, Ordering::Release);
        if self.recorder.enabled() {
            self.recorder.counter("serve.published", 1);
            self.recorder.gauge("serve.epoch", snapshot.epoch() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::StateSnapshot;

    fn snap(epoch: u64) -> Arc<EpochSnapshot> {
        let state = StateSnapshot::capture(
            &dpc_core::Dataset::new(Vec::new()),
            &[],
            &dpc_core::DeltaResult::new(Vec::new(), Vec::new()),
            &dpc_core::Clustering::new(Vec::new(), Vec::new(), Vec::new()),
        );
        let delta = ClusterDelta {
            epoch,
            num_clusters: 0,
            births: Vec::new(),
            deaths: Vec::new(),
            recentred: Vec::new(),
            changed: Vec::new(),
        };
        Arc::new(EpochSnapshot::new(epoch, state, Vec::new(), delta))
    }

    #[test]
    fn publish_links_chain_and_counts() {
        let cell = SnapshotCell::new(snap(0), 4);
        assert_eq!(cell.published(), 0);
        assert_eq!(cell.latest_epoch(), 0);
        cell.publish(snap(1));
        cell.publish(snap(2));
        assert_eq!(cell.published(), 2);
        assert_eq!(cell.latest_epoch(), 2);
        // The tail node is the newest snapshot, with no successor yet.
        let node = cell.tail_node();
        assert_eq!(node.snap.epoch(), 2);
        assert!(node.next.get().is_none());
        assert!(format!("{cell:?}").contains("published: 2"));
    }

    #[test]
    fn replay_is_contiguous_or_resync() {
        let cell = SnapshotCell::new(snap(0), 2);
        for e in 1..=2 {
            cell.publish(snap(e));
        }
        let latest = cell.tail_node().snap.clone();
        // Up to date.
        assert!(matches!(
            cell.replay_since(2, latest.clone()),
            Replay::Deltas(ref d) if d.is_empty()
        ));
        // Contiguous catch-up.
        match cell.replay_since(0, latest.clone()) {
            Replay::Deltas(d) => {
                assert_eq!(d.iter().map(|d| d.epoch).collect::<Vec<_>>(), vec![1, 2]);
            }
            Replay::Resync(_) => panic!("expected contiguous replay"),
        }
        // Wrap the ring: epochs 1..=2 evicted in favour of 3..=4.
        cell.publish(snap(3));
        cell.publish(snap(4));
        assert_eq!(cell.ring_evictions(), 2);
        let latest = cell.tail_node().snap.clone();
        let replay = cell.replay_since(1, latest);
        assert!(replay.is_resync());
        assert!(replay.deltas().is_none());
    }

    #[test]
    #[should_panic(expected = "ring capacity must be positive")]
    fn zero_ring_capacity_panics() {
        let _ = SnapshotCell::new(snap(0), 0);
    }
}
