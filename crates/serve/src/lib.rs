//! # dpc-serve
//!
//! **Concurrent epoch-snapshot serving** for streaming Density Peak
//! Clustering: one writer thread drives a
//! [`StreamingDpc`](dpc_stream::StreamingDpc) engine through commit epochs
//! while any number of reader threads answer queries from the newest
//! *published* epoch — wait-free, without ever blocking the writer or
//! observing a torn state.
//!
//! The engine freezes each committed epoch as an immutable
//! [`EpochSnapshot`](dpc_stream::EpochSnapshot) (ρ, δ, µ, labels, centres,
//! plus a compact grid copy for ε-queries) and hands it to a
//! [`SnapshotCell`] — an append-only snapshot chain readers walk with one
//! atomic load per published epoch. Three query families:
//!
//! * **point lookup** — [`SnapshotReader::cluster_of`]: which cluster is
//!   point *h* in, answered as the cluster's stable centre handle;
//! * **ε-neighbourhood** — [`SnapshotReader::eps_neighbors`]: all points
//!   within `eps` of a coordinate, bit-identical to querying the engine's
//!   index at the published epoch;
//! * **subscription** — [`SnapshotReader::deltas_since`]: the per-epoch
//!   [`ClusterDelta`](dpc_stream::ClusterDelta)s since a given epoch,
//!   replayed from a bounded ring, with a documented
//!   [`Replay::Resync`] contract when the subscriber falls behind.
//!
//! ```
//! use dpc_core::naive_reference::NaiveReferenceIndex;
//! use dpc_core::{Dataset, Point};
//! use dpc_serve::Server;
//! use dpc_stream::{StreamParams, StreamingDpc};
//!
//! let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.1), (4.0, 4.0), (4.1, 4.1)]);
//! let engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
//! let mut server = Server::new(engine, 64);
//!
//! let mut reader = server.reader(); // move to a query thread in real use
//! let h = reader.current().handle_at(0);
//!
//! // The writer commits an epoch; the reader sees it on its next query.
//! server.engine_mut().insert(Point::new(0.05, 0.05)).unwrap();
//! assert_eq!(reader.current().epoch(), server.engine().epoch());
//! assert!(reader.cluster_of(h).is_some());
//! ```
//!
//! Reader latencies and writer epoch phases publish through the same
//! [`dpc_obs`] recorder, so one Chrome trace shows both sides (see
//! `docs/SERVING.md` and `docs/OBSERVABILITY.md` at the repository root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod reader;
pub mod server;

pub use cell::{Replay, SnapshotCell};
pub use reader::SnapshotReader;
pub use server::Server;
