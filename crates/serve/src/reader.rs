//! Per-thread snapshot readers: wait-free access to the latest published
//! epoch, point lookups, ε-neighbourhood queries, and delta subscriptions.

use std::fmt;
use std::sync::Arc;

use dpc_core::{Point, Result};
use dpc_obs::{span, SharedRecorder};
use dpc_stream::{EpochSnapshot, Handle};

use crate::cell::{ChainNode, Replay, SnapshotCell};

/// A reader handle over one [`SnapshotCell`].
///
/// Each reader owns a cursor into the snapshot chain; queries refresh the
/// cursor to the newest published epoch first (wait-free — see the
/// [`cell`](crate::cell) module docs), then answer from that immutable
/// snapshot. Create one reader per thread ([`SnapshotReader`] is `Send` but
/// queries take `&mut self` to advance the cursor); clone-by-[`Self::fork`]
/// or ask the [`Server`](crate::Server) for more.
///
/// Every query publishes a latency span through the cell's recorder:
/// `serve.query.lookup`, `serve.query.eps`, `serve.query.sub`.
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    cursor: Arc<ChainNode>,
    recorder: SharedRecorder,
}

impl fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("epoch", &self.cursor.snap.epoch())
            .finish_non_exhaustive()
    }
}

impl SnapshotReader {
    pub(crate) fn new(cell: Arc<SnapshotCell>, recorder: SharedRecorder) -> Self {
        let cursor = cell.tail_node();
        SnapshotReader {
            cell,
            cursor,
            recorder,
        }
    }

    /// A second, independent reader over the same cell, starting at the
    /// newest published epoch. Briefly locks the cell's tail (creation is
    /// the one reader operation that does).
    pub fn fork(&self) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(&self.cell), self.recorder.clone())
    }

    /// The epoch of the snapshot the cursor currently sits on, *without*
    /// refreshing. [`Self::current`] may return a newer epoch.
    pub fn epoch(&self) -> u64 {
        self.cursor.snap.epoch()
    }

    /// Advances the cursor to the newest published snapshot and returns it.
    ///
    /// Wait-free: each hop is one atomic load of the current node's `next`
    /// cell; in steady state (no publish since the last call) it is a single
    /// load that misses. Never blocks the writer, never observes a torn
    /// snapshot — nodes carry immutable, fully-constructed snapshots.
    pub fn current(&mut self) -> Arc<EpochSnapshot> {
        while let Some(next) = self.cursor.next.get() {
            self.cursor = Arc::clone(next);
        }
        Arc::clone(&self.cursor.snap)
    }

    /// Point lookup: the centre handle of the cluster `handle` belongs to at
    /// the newest published epoch, or `None` if the point is not in the
    /// window. Span: `serve.query.lookup`.
    pub fn cluster_of(&mut self, handle: Handle) -> Option<Handle> {
        let rec = self.recorder.clone();
        let _guard = span(&rec, "serve.query.lookup");
        self.current().cluster_of(handle)
    }

    /// Handles of all points strictly within `eps` of `center` at the newest
    /// published epoch, bit-identical to querying the engine's index at that
    /// epoch. Span: `serve.query.eps`.
    ///
    /// # Errors
    /// Rejects a non-finite or non-positive `eps`.
    pub fn eps_neighbors(&mut self, center: Point, eps: f64) -> Result<Vec<Handle>> {
        let rec = self.recorder.clone();
        let _guard = span(&rec, "serve.query.eps");
        self.current().eps_neighbor_handles(center, eps)
    }

    /// Subscription poll: everything that changed since epoch `since`.
    ///
    /// Returns [`Replay::Deltas`] with the contiguous per-epoch deltas
    /// `since + 1 ..= current` (empty when up to date), or
    /// [`Replay::Resync`] with the full current snapshot when the bounded
    /// delta ring has already evicted part of that range — the subscriber
    /// fell more than the ring capacity behind and must rebase. Span:
    /// `serve.query.sub`; each resync also bumps the
    /// `serve.reader.resyncs` counter.
    pub fn deltas_since(&mut self, since: u64) -> Replay {
        let rec = self.recorder.clone();
        let _guard = span(&rec, "serve.query.sub");
        let latest = self.current();
        let replay = self.cell.replay_since(since, latest);
        if replay.is_resync() && rec.enabled() {
            rec.counter("serve.reader.resyncs", 1);
        }
        replay
    }
}
