//! The [`Server`]: owns the single streaming writer and hands out readers.

use std::sync::Arc;

use dpc_core::UpdatableIndex;
use dpc_stream::StreamingDpc;

use crate::cell::SnapshotCell;
use crate::reader::SnapshotReader;

/// A single-writer serving wrapper around a [`StreamingDpc`] engine.
///
/// Construction freezes the engine's current state as the seed snapshot and
/// attaches a [`SnapshotCell`] as the engine's snapshot sink: from then on
/// every successfully committed non-empty epoch publishes automatically, and
/// any number of [`SnapshotReader`]s (one per query thread) serve from the
/// newest published snapshot without ever blocking the writer.
///
/// The cell reuses the engine's recorder, so writer epoch phases and reader
/// query latencies land in the same metrics/trace stream.
#[derive(Debug)]
pub struct Server<I: UpdatableIndex> {
    engine: StreamingDpc<I>,
    cell: Arc<SnapshotCell>,
}

impl<I: UpdatableIndex> Server<I> {
    /// Wraps `engine`, publishing its current state as the seed snapshot.
    /// `ring_capacity` bounds the delta ring for subscription replay —
    /// subscribers that fall further behind get a
    /// [`Replay::Resync`](crate::Replay::Resync).
    ///
    /// # Panics
    /// Panics if `ring_capacity` is zero.
    pub fn new(mut engine: StreamingDpc<I>, ring_capacity: usize) -> Self {
        let seed = Arc::new(engine.snapshot());
        let cell = Arc::new(
            SnapshotCell::new(seed, ring_capacity).with_recorder(engine.recorder().clone()),
        );
        engine.set_snapshot_sink(cell.clone());
        Server { engine, cell }
    }

    /// A new reader positioned at the newest published epoch. Hand one to
    /// each query thread; readers are `Send` and independent.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(&self.cell), self.cell.recorder().clone())
    }

    /// The wrapped engine — all writes go through here.
    pub fn engine(&self) -> &StreamingDpc<I> {
        &self.engine
    }

    /// Mutable access to the engine for the writer thread.
    pub fn engine_mut(&mut self) -> &mut StreamingDpc<I> {
        &mut self.engine
    }

    /// The publication cell (monitoring: published count, latest epoch,
    /// ring evictions).
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// Detaches the serving layer and returns the engine. The cell stays
    /// alive for existing readers but receives no further epochs.
    pub fn into_engine(mut self) -> StreamingDpc<I> {
        self.engine.clear_snapshot_sink();
        self.engine
    }
}
