//! Concurrency stress for the serving layer.
//!
//! One writer thread drives commit epochs while reader threads hammer the
//! snapshot chain. The assertions are the serving contract:
//!
//! * no reader ever observes a torn snapshot (every observed snapshot
//!   passes `check_consistency`, epochs advance monotonically per reader);
//! * subscription replay reproduces *exactly* the writer's sequence of
//!   [`ClusterDelta`]s when the ring is large enough, and degrades to a
//!   documented resync when it is not;
//! * attaching recorders changes observability output only — engine state
//!   stays bit-identical to a recorder-free run;
//! * single-threaded reads are bit-identical to the engine at the published
//!   epoch.
//!
//! The suite is written to pass under `--release` (CI runs it there);
//! counts are sized so it also finishes quickly in debug.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dpc_core::{CenterSelection, Dataset, DpcParams, Point, UpdatableIndex};
use dpc_datasets::testsupport::{test_points, TestDistribution};
use dpc_obs::{Fanout, MetricsRecorder, SharedRecorder, TraceSink};
use dpc_serve::{Replay, Server};
use dpc_stream::{ClusterDelta, StreamParams, StreamingDpc};
use dpc_tree_index::GridIndex;

const DC: f64 = 60.0;

fn params() -> StreamParams {
    StreamParams::new(DC)
        .with_dpc(DpcParams::new(DC).with_centers(CenterSelection::TopKGamma { k: 3 }))
}

fn seeded_engine(seed: u64) -> StreamingDpc<GridIndex> {
    let dataset = Dataset::new(test_points(TestDistribution::Clustered, 120, seed));
    StreamingDpc::new(GridIndex::build(&dataset), params()).unwrap()
}

/// The stream of arriving batches the writer replays, fully deterministic.
fn arrivals(seed: u64, epochs: usize, batch: usize) -> Vec<Vec<Point>> {
    let points = test_points(TestDistribution::Clustered, epochs * batch, seed ^ 0xA11);
    points.chunks(batch).map(<[Point]>::to_vec).collect()
}

#[test]
fn readers_never_observe_torn_snapshots() {
    let epochs = 60;
    let mut server = Server::new(seeded_engine(7), 64);
    let readers: Vec<_> = (0..4).map(|_| server.reader()).collect();
    let stop = AtomicBool::new(false);

    let (final_epoch, reader_epochs) = thread::scope(|s| {
        let stop = &stop;
        let writer = s.spawn(move || {
            for batch in arrivals(7, epochs, 3) {
                // Slide the window: 3 in, 2 out per epoch.
                server.engine_mut().advance(&batch, 2).unwrap();
            }
            let final_epoch = server.engine().epoch();
            stop.store(true, Ordering::Release);
            final_epoch
        });
        let readers: Vec<_> = readers
            .into_iter()
            .map(|mut reader| {
                s.spawn(move || {
                    let mut last = reader.epoch();
                    let mut observed = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let snap = reader.current();
                        snap.check_consistency();
                        assert!(
                            snap.epoch() >= last,
                            "reader regressed from epoch {last} to {}",
                            snap.epoch()
                        );
                        last = snap.epoch();
                        observed += 1;
                        // Mixed queries racing the writer. Answers may come
                        // from a newer epoch than `snap` (the query refreshes
                        // first), so assert self-consistency of each answer,
                        // not equality with the pinned snapshot.
                        if let Some(&h) = snap.handles().first() {
                            if let Some(centre) = reader.cluster_of(h) {
                                let now = reader.current();
                                // Centre handles always resolve in the epoch
                                // that produced them or a newer one where the
                                // cluster survives; at minimum the answer is a
                                // real handle, not garbage from a torn read.
                                assert!(
                                    now.dense_of(centre).is_some() || now.epoch() > snap.epoch()
                                );
                            }
                        }
                        let hits = reader.eps_neighbors(Point::new(0.0, 0.0), DC).unwrap();
                        let mut sorted = hits.clone();
                        sorted.dedup();
                        assert_eq!(hits.len(), sorted.len(), "eps answer contains duplicates");
                    }
                    // Catch up to the writer's final state.
                    let snap = reader.current();
                    snap.check_consistency();
                    assert!(observed > 0);
                    snap.epoch()
                })
            })
            .collect();
        let final_epoch = writer.join().unwrap();
        let reader_epochs: Vec<u64> = readers.into_iter().map(|h| h.join().unwrap()).collect();
        (final_epoch, reader_epochs)
    });

    assert_eq!(final_epoch, epochs as u64);
    for epoch in reader_epochs {
        assert_eq!(epoch, final_epoch, "a reader failed to catch up");
    }
}

#[test]
fn subscription_replays_the_exact_writer_delta_sequence() {
    let epochs = 40;
    // Ring comfortably larger than the epoch count: no resync possible.
    let mut server = Server::new(seeded_engine(11), 128);
    let mut subscriber = server.reader();
    let stop = AtomicBool::new(false);

    let (written, replayed) = thread::scope(|s| {
        let stop = &stop;
        let writer = s.spawn(move || {
            let mut written: Vec<ClusterDelta> = Vec::new();
            for batch in arrivals(11, epochs, 2) {
                let (_, delta) = server.engine_mut().advance(&batch, 1).unwrap();
                written.push(delta);
            }
            let final_epoch = server.engine().epoch();
            stop.store(true, Ordering::Release);
            (written, final_epoch)
        });
        let sub = s.spawn(move || {
            let mut seen = subscriber.epoch();
            let mut replayed: Vec<ClusterDelta> = Vec::new();
            loop {
                match subscriber.deltas_since(seen) {
                    Replay::Deltas(deltas) => {
                        for delta in deltas {
                            assert_eq!(delta.epoch, seen + 1, "replayed deltas must be contiguous");
                            seen = delta.epoch;
                            replayed.push(delta);
                        }
                    }
                    Replay::Resync(_) => {
                        panic!("an oversized ring must never force a resync")
                    }
                }
                if stop.load(Ordering::Acquire) && subscriber.current().epoch() == seen {
                    return replayed;
                }
            }
        });
        let (written, final_epoch) = writer.join().unwrap();
        let replayed = sub.join().unwrap();
        assert_eq!(final_epoch, epochs as u64);
        (written, replayed)
    });

    // Byte-for-byte the writer's own delta sequence, in order.
    assert_eq!(replayed, written);
}

#[test]
fn lagging_subscriber_gets_a_resync_when_the_ring_wraps() {
    // Tiny ring: only the last 2 deltas survive.
    let mut server = Server::new(seeded_engine(13), 2);
    let mut reader = server.reader();
    let mut written = Vec::new();
    for batch in arrivals(13, 6, 2) {
        let (_, delta) = server.engine_mut().advance(&batch, 1).unwrap();
        written.push(delta);
    }

    // From epoch 0 the range 1..=6 is no longer in the ring: resync.
    let replay = reader.deltas_since(0);
    let snapshot = match replay {
        Replay::Resync(snapshot) => snapshot,
        Replay::Deltas(_) => panic!("a wrapped ring must force a resync"),
    };
    assert_eq!(snapshot.epoch(), 6);
    snapshot.check_consistency();
    assert_eq!(server.cell().ring_evictions(), 4);

    // From the resync point the subscriber is up to date...
    assert!(matches!(
        reader.deltas_since(snapshot.epoch()),
        Replay::Deltas(ref d) if d.is_empty()
    ));
    // ...and a subscriber only just behind still replays incrementally.
    match reader.deltas_since(4) {
        Replay::Deltas(deltas) => assert_eq!(deltas, written[4..]),
        Replay::Resync(_) => panic!("the last two epochs are still in the ring"),
    }
}

#[test]
fn recorders_change_observability_not_state() {
    let run = |recorder: Option<SharedRecorder>| {
        let mut engine = seeded_engine(17);
        if let Some(rec) = recorder {
            engine.set_recorder(rec);
        }
        let mut server = Server::new(engine, 32);
        let mut reader = server.reader();
        let mut lookups = Vec::new();
        for batch in arrivals(17, 20, 2) {
            server.engine_mut().advance(&batch, 1).unwrap();
            let epoch = reader.current().epoch();
            let h = reader.current().handle_at(0);
            lookups.push((epoch, reader.cluster_of(h)));
        }
        let engine = server.into_engine();
        (
            engine.epoch(),
            engine.rho().to_vec(),
            engine.deltas().clone(),
            engine.clustering().clone(),
            lookups,
        )
    };

    let metrics = Arc::new(MetricsRecorder::new());
    let trace = Arc::new(TraceSink::new());
    let fanout: SharedRecorder = Arc::new(
        Fanout::new()
            .with(metrics.clone() as SharedRecorder)
            .with(trace.clone() as SharedRecorder),
    );
    let silent = run(None);
    let observed = run(Some(fanout));
    assert_eq!(silent, observed, "recorders must not perturb engine state");

    // And the recorder actually saw the serving layer work.
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("serve.published"), Some(20));
    assert!(snap.histogram("serve.query.lookup_us").is_some());
}

#[test]
fn single_threaded_reads_are_bit_identical_to_the_engine() {
    let mut server = Server::new(seeded_engine(23), 32);
    let mut reader = server.reader();
    for batch in arrivals(23, 10, 3) {
        server.engine_mut().advance(&batch, 2).unwrap();

        let snap = reader.current();
        assert_eq!(snap.epoch(), server.engine().epoch());
        assert_eq!(snap.version(), server.engine().version());
        let engine = server.engine();
        assert_eq!(snap.state().rho(), engine.rho());
        assert_eq!(snap.state().deltas(), engine.deltas());
        assert_eq!(snap.state().clustering(), engine.clustering());

        // Point lookups resolve through the engine's own labels.
        for p in 0..engine.len() {
            let h = engine.handle_at(p);
            let label = engine.clustering().label(p);
            let centre = engine.clustering().centers()[label];
            assert_eq!(reader.cluster_of(h), Some(engine.handle_at(centre)));
        }

        // ε-queries match the live index at the published epoch.
        for (center, eps) in [(Point::new(0.0, 0.0), DC), (Point::new(100.0, -50.0), 25.0)] {
            let expected: Vec<_> = engine
                .index()
                .eps_neighbors(center, eps)
                .unwrap()
                .into_iter()
                .map(|id| engine.handle_at(id))
                .collect();
            assert_eq!(reader.eps_neighbors(center, eps).unwrap(), expected);
        }
    }
}
