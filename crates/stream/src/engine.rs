//! The streaming DPC engine: [`StreamingDpc`].
//!
//! ## The epoch-batched maintenance pipeline
//!
//! Every mutation of the window — a single [`insert`](StreamingDpc::insert),
//! a single [`remove`](StreamingDpc::remove), a sliding-window
//! [`advance`](StreamingDpc::advance), or an arbitrary
//! [`EpochPlan`] — runs through one pipeline,
//! [`commit`](StreamingDpc::commit), which pays the expensive maintenance
//! **once per epoch** rather than once per update:
//!
//! 1. **Validate** the whole batch up front (finite coordinates, live
//!    handles, no duplicates) so a rejected plan leaves the engine untouched.
//! 2. **Mutate the index** in one [`UpdatableIndex::apply_batch`] call —
//!    ops execute in submission order with the exact per-update id semantics
//!    (inserts append, removals swap-remove), but the index may defer its
//!    internal amortised triggers (k-d scapegoat rebuilds, R-tree forced
//!    reinsertion) to the end of the batch. The engine mirrors every op in
//!    its handle map and per-point arrays, tracking the provenance of each
//!    final slot (survivor of old id `o` / inserted this epoch).
//! 3. **Repair ρ** with one ε-query per *net* mutation, all against the
//!    final index: each expired pre-epoch location subtracts its (aged)
//!    pair weight `λᵃᵍᵉ·w(d)` from the surviving neighbours it used to
//!    count, each surviving insert gets a fresh weighted sum and adds
//!    `w(d)` to its surviving neighbours — under the default
//!    [`Kernel::Cutoff`](dpc_core::Kernel) without decay every weight is
//!    exactly 1.0 and this is the classic integer ±1 repair, bit for bit. A
//!    visited bitmap deduplicates the touched survivors into the epoch's
//!    **affected union** `U`. Points both inserted and expired within the
//!    batch are *ephemeral* and contribute nothing.
//! 4. **Repair δ/µ once**: the invalidation set `F` — the union `U`, the
//!    inserted points, survivors renamed to a smaller id by a swap-remove,
//!    points whose µ expired, was renamed, or sits in `U` (found by a single
//!    µ scan that also renames surviving µ ids), and the old and new global
//!    peaks — is
//!    recomputed from scratch; everyone else min-folds the candidate
//!    entrants (`U` ∪ inserted ∪ renamed). When `|F|` exceeds
//!    [`StreamParams::max_affected_fraction`] of the window the engine falls
//!    back to one full δ/µ recomputation for the epoch.
//! 5. **Re-cluster once** (centre selection + assignment on the maintained
//!    `(ρ, δ, µ)`) and emit one [`ClusterDelta`] for the whole batch.
//!
//! Why each piece of `F` is sufficient, and why everyone else only needs the
//! candidate fold, is derived step by step in `docs/STREAMING.md`.
//!
//! Steps 2–4 are the **incremental** path. A [`CommitPolicy`] on
//! [`StreamParams`] can route an epoch through the **rebuild** path instead
//! — one bulk [`UpdatableIndex::rebuild_from`] of the epoch's final window
//! feeding the batch ρ/δ pipeline — either always, or per epoch via the
//! calibrated cost model of [`CommitPolicy::Adaptive`] (see the
//! [`policy`](crate::policy) module). Both paths commit bit-identical
//! state; the policy only decides which one pays less wall-clock.
//!
//! The correctness anchor (enforced by the equivalence property suite at
//! batch sizes 1, 7 and 64) is: after **every** epoch, the engine's `(ρ, δ,
//! µ, labels, centres)` are bit-identical both to a per-update replay of the
//! same ops and to a cold batch run over the surviving points, for every
//! [`UpdatableIndex`] implementation, at every thread count.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use dpc_core::{
    assign_clusters, BatchOp, Clustering, DecisionGraph, DeltaResult, DensityOrder, DpcError,
    DpcParams, Kernel, Point, PointId, Result, Rho, StateSnapshot, UpdatableIndex,
};
use dpc_obs::{span, AttrValue, SharedRecorder};

use crate::epoch::{EpochPlan, PlanOp};
use crate::handle::{Handle, HandleMap};
use crate::maintenance::{candidate_pass, delta_point, recompute_all, recompute_targets};
use crate::policy::{CommitPolicy, CostModel, EpochMode, Prediction};
use crate::report::{ClusterDelta, LabelChange};
use crate::snapshot::{EpochSnapshot, SnapshotSink};

/// Parameters of a streaming run: the batch DPC parameters plus the
/// incremental-maintenance knobs.
///
/// ```
/// use dpc_stream::StreamParams;
///
/// let params = StreamParams::new(0.5).with_max_affected_fraction(0.4);
/// assert_eq!(params.dpc.dc, 0.5);
/// assert!(params.validate().is_ok());
/// assert!(StreamParams::new(0.5)
///     .with_max_affected_fraction(f64::NAN)
///     .validate()
///     .is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamParams {
    /// The clustering parameters (`dc`, centre selection, tie-break,
    /// assignment options, execution policy). The execution policy is used
    /// for the parallel maintenance passes as well as the seeding batch
    /// queries.
    pub dpc: DpcParams,
    /// When an epoch's invalidation set exceeds this fraction of the window,
    /// fall back to recomputing δ/µ for every point instead of repairing
    /// incrementally. 1.0 (or anything ≥ 1.0) effectively disables the
    /// fallback; 0.0 forces it on every epoch (useful for testing).
    pub max_affected_fraction: f64,
    /// How [`commit`](StreamingDpc::commit) maintains the clustering each
    /// epoch: always incrementally (the default), always by bulk rebuild, or
    /// adaptively via the calibrated [`CostModel`].
    pub policy: CommitPolicy,
    /// EWMA smoothing factor α ∈ (0, 1] for the adaptive cost model's
    /// online rate updates (`new = α·sample + (1-α)·old`). 1.0 keeps only
    /// the latest epoch; small values average over many. Default 0.3.
    pub ewma_alpha: f64,
    /// Multiplier applied to the *predicted* rebuild cost before comparing
    /// paths. Values above 1.0 make the adaptive policy reluctant to
    /// rebuild, below 1.0 eager. Default 1.0 (unbiased). Must be positive
    /// and finite.
    pub rebuild_bias: f64,
    /// Per-epoch time-decay factor λ ∈ (0, 1] of the weighted densities:
    /// every committed epoch (and every [`StreamingDpc::tick`]) multiplies
    /// each pair's density contribution by λ, so a contribution aged `k`
    /// epochs weighs `λᵏ·w(d)`. The default 1.0 disables decay — densities
    /// then depend only on the current window, never on its history.
    ///
    /// Decay never changes *which* points interact (the kernel support stays
    /// strictly within `dc`), so the affected-set machinery is untouched; it
    /// only rescales the weights. A decayed epoch always re-ranks δ/µ in
    /// full, and the rebuild commit path is unavailable (decayed ρ is
    /// history-dependent and cannot be recomputed from a batch query);
    /// rebuild-flavoured policies silently take the incremental path.
    pub decay: f64,
}

impl StreamParams {
    /// Streaming parameters with the given cut-off and defaults for
    /// everything else (fallback threshold 0.25, incremental policy,
    /// EWMA α 0.3, unbiased rebuild cost).
    pub fn new(dc: f64) -> Self {
        StreamParams {
            dpc: DpcParams::new(dc),
            max_affected_fraction: 0.25,
            policy: CommitPolicy::default(),
            ewma_alpha: 0.3,
            rebuild_bias: 1.0,
            decay: 1.0,
        }
    }

    /// Replaces the embedded batch parameters.
    pub fn with_dpc(mut self, dpc: DpcParams) -> Self {
        self.dpc = dpc;
        self
    }

    /// Sets the fallback threshold.
    pub fn with_max_affected_fraction(mut self, fraction: f64) -> Self {
        self.max_affected_fraction = fraction;
        self
    }

    /// Sets the commit policy.
    pub fn with_policy(mut self, policy: CommitPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the EWMA smoothing factor of the adaptive cost model.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Self {
        self.ewma_alpha = alpha;
        self
    }

    /// Sets the rebuild cost bias of the adaptive policy.
    pub fn with_rebuild_bias(mut self, bias: f64) -> Self {
        self.rebuild_bias = bias;
        self
    }

    /// Sets the per-epoch time-decay factor λ (1.0 disables decay).
    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay;
        self
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        self.dpc.validate()?;
        if !(self.max_affected_fraction.is_finite() && self.max_affected_fraction >= 0.0) {
            return Err(DpcError::invalid_parameter(
                "max_affected_fraction",
                format!(
                    "must be a finite non-negative fraction, got {}",
                    self.max_affected_fraction
                ),
            ));
        }
        if !(self.ewma_alpha.is_finite() && self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(DpcError::invalid_parameter(
                "ewma_alpha",
                format!(
                    "EWMA smoothing factor must be a positive finite number \
                     (valid range: 0 < alpha <= 1), got {}",
                    self.ewma_alpha
                ),
            ));
        }
        if !(self.rebuild_bias.is_finite() && self.rebuild_bias > 0.0) {
            return Err(DpcError::invalid_parameter(
                "rebuild_bias",
                format!(
                    "rebuild cost bias must be a positive finite number \
                     (valid range: bias > 0), got {}",
                    self.rebuild_bias
                ),
            ));
        }
        if !(self.decay.is_finite() && self.decay > 0.0 && self.decay <= 1.0) {
            return Err(DpcError::invalid_parameter(
                "decay",
                format!(
                    "per-epoch decay factor must be a positive finite number \
                     (valid range: 0 < decay <= 1), got {}",
                    self.decay
                ),
            ));
        }
        Ok(())
    }
}

/// Cumulative counters describing how much incremental work the engine did.
///
/// An *epoch* is one clustering step (one `insert`, `remove`, `advance` or
/// committed [`EpochPlan`]); an *update* is one point mutation inside it.
///
/// ```
/// use dpc_core::naive_reference::NaiveReferenceIndex;
/// use dpc_core::{Dataset, Point};
/// use dpc_stream::{StreamParams, StreamingDpc};
///
/// let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (4.0, 4.0), (4.1, 4.0)]);
/// let mut engine =
///     StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
/// // One advance = one epoch, however many points it slides.
/// engine.advance(&[Point::new(0.05, 0.0), Point::new(4.05, 4.0)], 2).unwrap();
/// let stats = engine.stats();
/// assert_eq!(stats.epochs, 1);
/// assert_eq!(stats.updates, 4); // 2 evictions + 2 insertions
/// assert_eq!(stats.incremental_epochs + stats.fallback_epochs, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Clustering epochs emitted (committed plans; an empty plan is not an
    /// epoch). The seeding pass is epoch 0 and is not counted.
    pub epochs: u64,
    /// Individual point updates applied (an `advance` counts each insertion
    /// and eviction separately; an ephemeral point counts both its insert
    /// and its expiry).
    pub updates: u64,
    /// Epochs repaired incrementally (candidate fold + bounded recompute).
    pub incremental_epochs: u64,
    /// Epochs that fell back to a full δ/µ recomputation.
    pub fallback_epochs: u64,
    /// Epochs committed by bulk index rebuild + batch ρ/δ queries (the
    /// `AlwaysRebuild` policy, or the adaptive policy predicting a rebuild
    /// win; unavailable with a non-cutoff kernel or decay enabled). Every
    /// plan-committing epoch lands in exactly one of the three mode
    /// counters; pure decay ticks land in
    /// [`decay_epochs`](Self::decay_epochs) instead.
    pub rebuild_epochs: u64,
    /// Pure decay epochs ([`StreamingDpc::tick`]): scalar ρ aging plus a
    /// full δ/µ re-rank, no window mutation. Effective ticks only — with
    /// decay disabled a tick is a no-op and is not counted.
    pub decay_epochs: u64,
    /// ε-range queries issued by the incremental ρ repair (one per expired
    /// survivor location and one per surviving insert). Decay ticks issue
    /// none — the regression suite pins that down.
    pub eps_queries: u64,
    /// Sum over epochs of the affected-union size |U| (distinct surviving
    /// points whose ρ was touched by the epoch's ε-neighbourhoods).
    pub affected_points: u64,
    /// Sum over epochs of the invalidation-set size |F| (points fully
    /// recomputed when on the incremental path).
    pub invalidated_points: u64,
    /// Wall-clock µs the *last* epoch spent in density maintenance (plan
    /// application through δ/µ repair or rebuild; excludes re-clustering).
    pub last_epoch_micros: u64,
    /// What the last committed epoch did (`None` before the first epoch).
    pub last_epoch_mode: Option<EpochMode>,
    /// Sum over *adaptive* epochs of the cost model's predicted cost of the
    /// chosen path, in µs. Compare with
    /// [`observed_cost_micros`](Self::observed_cost_micros) to judge the
    /// model's calibration; both stay 0 under the fixed policies.
    pub predicted_cost_micros: u64,
    /// Sum over *adaptive* epochs of the observed maintenance cost, in µs.
    pub observed_cost_micros: u64,
}

/// Provenance of a dense slot while an epoch is being applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Survivor: held pre-epoch dense id `o`.
    Old(PointId),
    /// Inserted by this epoch (payload: the plan's insert ordinal).
    New(usize),
}

/// Reusable per-epoch working memory of [`StreamingDpc::commit`]. Every
/// buffer is cleared (not shrunk) at the start of the phase that fills it,
/// so a steady-state stream commits epochs without allocating.
#[derive(Debug, Clone, Default)]
struct CommitScratch {
    /// Provenance of each dense slot while the plan is applied.
    owner: Vec<Origin>,
    /// The plan translated to resolved-id index ops.
    batch_ops: Vec<BatchOp>,
    /// Pre-epoch coordinates of every expired survivor.
    removed_old_locs: Vec<Point>,
    /// Birth epoch of every expired survivor, parallel to
    /// `removed_old_locs` — the ρ repair needs it to subtract each expiring
    /// pair at its current decayed weight.
    removed_old_births: Vec<u64>,
    /// Final dense ids of the points inserted this epoch.
    inserted_final: Vec<PointId>,
    /// Pre-epoch id → final id (`None` = expired).
    final_of_old: Vec<Option<PointId>>,
    /// Dedup bitmap behind the affected union U.
    visited: Vec<bool>,
    /// The affected union U (distinct survivors whose ρ changed).
    union: Vec<PointId>,
    /// The invalidation set F (recompute targets).
    invalidated: Vec<PointId>,
    /// Survivors renamed to a smaller id by a swap-remove.
    renamed: Vec<PointId>,
    /// Membership bitmap of F for the candidate fold.
    skip: Vec<bool>,
    /// Candidate entrants (U ∪ inserted ∪ renamed) for the min-fold.
    candidates: Vec<PointId>,
}

/// How many brute-force δ probes the seeding calibration times to estimate
/// the incremental path's per-point cost.
const CALIBRATION_PROBES: usize = 32;

/// What one committed (non-empty, non-emptying) epoch's maintenance did,
/// handed from the chosen branch back to [`StreamingDpc::commit`] for
/// timing, stats and model updates.
struct EpochOutcome {
    /// One handle per planned insert, in plan order.
    planned_handles: Vec<Handle>,
    /// Which path the epoch actually took.
    mode: EpochMode,
    /// |F| on the incremental/fallback path (0 for a rebuild, which never
    /// materialises an invalidation set).
    invalidated: usize,
}

/// An online Density Peak Clustering engine over a mutable window of points.
///
/// See the [module docs](self) for the maintenance pipeline and
/// `docs/STREAMING.md` for the full internals contract. Typical use:
///
/// ```
/// use dpc_core::naive_reference::NaiveReferenceIndex;
/// use dpc_core::{CenterSelection, Dataset, Point};
/// use dpc_stream::{StreamParams, StreamingDpc};
///
/// let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (5.1, 5.0)]);
/// let index = NaiveReferenceIndex::build(&seed);
/// let params = StreamParams::new(0.5)
///     .with_dpc(dpc_core::DpcParams::new(0.5)
///         .with_centers(CenterSelection::TopKGamma { k: 2 }));
/// let mut engine = StreamingDpc::new(index, params).unwrap();
/// assert_eq!(engine.clustering().num_clusters(), 2);
///
/// // Points arrive and expire without ever rebuilding the index.
/// let (handle, delta) = engine.insert(Point::new(0.05, 0.05)).unwrap();
/// assert_eq!(delta.insertions(), 1);
/// let delta = engine.remove(handle).unwrap();
/// assert_eq!(delta.evictions(), 1);
/// ```
///
/// The sliding-window loop most stream consumers want — batches arrive, the
/// same number of oldest points expire, one clustering epoch per batch:
///
/// ```
/// use dpc_core::naive_reference::NaiveReferenceIndex;
/// use dpc_core::{Dataset, Point};
/// use dpc_stream::{StreamParams, StreamingDpc};
///
/// let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.1), (4.0, 4.0), (4.1, 4.1)]);
/// let mut engine =
///     StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
/// let arrivals = vec![
///     vec![Point::new(4.05, 4.0), Point::new(0.05, 0.0)],
///     vec![Point::new(0.0, 0.05), Point::new(4.0, 4.05)],
/// ];
/// for batch in &arrivals {
///     let (handles, delta) = engine.advance(batch, batch.len()).unwrap();
///     assert_eq!(handles.len(), 2);
///     assert_eq!(delta.insertions(), 2);
///     assert_eq!(delta.evictions(), 2);
/// }
/// assert_eq!(engine.len(), 4); // the window size never drifted
/// assert_eq!(engine.epoch(), 2); // one epoch per batch, not per point
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDpc<I: UpdatableIndex> {
    index: I,
    params: StreamParams,
    rho: Vec<Rho>,
    deltas: DeltaResult,
    /// Birth epoch of each dense slot, on the [`age_epoch`](Self::age_epoch)
    /// clock: a pair's decay exponent is `age_epoch − max(birth_p, birth_q)`.
    /// Maintained through the same push/swap-remove choreography as `rho`;
    /// inert (but still tracked) when decay is disabled.
    births: Vec<u64>,
    handles: HandleMap,
    /// Dense id of the global peak (`None` for an empty window).
    peak: Option<PointId>,
    clustering: Clustering,
    /// Stable view of the previous epoch: point handle → centre handle.
    assignment: BTreeMap<Handle, Handle>,
    epoch: u64,
    /// The decay clock: how many aging passes (committed epochs + effective
    /// ticks) have run. Decoupled from [`epoch`](Self::epoch) so a
    /// clustering-stage error — which leaves the density state exact but the
    /// epoch counter unbumped — cannot skew the decay exponents.
    age_epoch: u64,
    stats: StreamStats,
    /// Calibrated cost model behind [`CommitPolicy::Adaptive`] — seeded in
    /// [`new`](Self::new), updated online from every epoch's timing
    /// regardless of policy (so flipping to `Adaptive` mid-stream starts
    /// from live estimates).
    model: CostModel,
    /// Reusable per-epoch working memory (taken out for the duration of a
    /// commit, put back afterwards).
    scratch: CommitScratch,
    /// Observability sink for phase spans, policy decisions and maintenance
    /// gauges. Defaults to the shared no-op recorder, which keeps every
    /// instrumented site down to a predictable branch; see
    /// [`set_recorder`](Self::set_recorder).
    recorder: SharedRecorder,
    /// Publication sink for epoch snapshots (`None` by default). When set,
    /// every successfully committed non-empty epoch freezes an
    /// [`EpochSnapshot`] after re-clustering and hands it to the sink; see
    /// [`set_snapshot_sink`](Self::set_snapshot_sink).
    sink: Option<Arc<dyn SnapshotSink>>,
}

impl<I: UpdatableIndex> StreamingDpc<I> {
    /// Seeds the engine with an index (and the dataset it owns), running one
    /// batch ρ/δ query plus an initial clustering epoch.
    ///
    /// Errors when the parameters are invalid, when the index's tie-break
    /// rule disagrees with the parameters, when the index is approximate
    /// (incremental maintenance needs exact δ/µ), or when the initial centre
    /// selection fails.
    pub fn new(index: I, params: StreamParams) -> Result<Self> {
        params.validate()?;
        if index.tie_break() != params.dpc.tie_break {
            return Err(DpcError::invalid_parameter(
                "tie_break",
                "the index and the stream parameters must agree on the density tie-break rule",
            ));
        }
        if !index.is_exact() {
            return Err(DpcError::invalid_parameter(
                "index",
                "streaming maintenance requires an exact index (approximate \
                 δ clipping cannot be repaired incrementally)",
            ));
        }
        let n = index.len();
        // One-shot calibration: the seeding batch query is exactly what a
        // rebuild epoch pays per window point, and a handful of brute-force
        // δ probes (the incremental repair kernel) measure the incremental
        // path's per-point cost. Both are timed here regardless of policy —
        // the probes cost O(CALIBRATION_PROBES · n), less than the seeding
        // query itself — so [`set_policy`](Self::set_policy) can flip to
        // `Adaptive` mid-stream and find a live model.
        let seeding = Instant::now();
        let (rho, deltas) = if n == 0 {
            (Vec::new(), DeltaResult::unset(0))
        } else {
            index.rho_delta_kernel_with_policy(params.dpc.dc, params.dpc.kernel, params.dpc.exec)?
        };
        let rebuild_us = seeding.elapsed().as_micros() as f64 / n.max(1) as f64;
        let order = DensityOrder::with_tie_break(&rho, params.dpc.tie_break);
        let peak = order.global_peak();
        let inc_us = if n == 0 {
            0.0
        } else {
            // Stride-spread sample so the probe sees the whole window, not
            // one dense corner of it.
            let probes = CALIBRATION_PROBES.min(n);
            let stride = n / probes;
            let probing = Instant::now();
            for k in 0..probes {
                std::hint::black_box(delta_point(index.dataset(), &order, k * stride));
            }
            probing.elapsed().as_micros() as f64 / probes as f64
        };
        // An update invalidates its ε-neighbourhood plus itself: mean ρ + 1.
        // (Under a non-cutoff kernel the weighted mean *under*-estimates the
        // neighbour count, which only makes the prior conservative.)
        let union_prior = rho.iter().sum::<f64>() / n.max(1) as f64 + 1.0;
        let model = CostModel::seeded(rebuild_us, inc_us, union_prior, params.ewma_alpha);
        let mut engine = StreamingDpc {
            index,
            params,
            rho,
            deltas,
            births: vec![0; n],
            handles: HandleMap::with_dense_len(n),
            peak,
            clustering: Clustering::new(vec![], vec![], vec![]),
            assignment: BTreeMap::new(),
            epoch: 0,
            age_epoch: 0,
            stats: StreamStats::default(),
            model,
            scratch: CommitScratch::default(),
            recorder: dpc_obs::noop(),
            sink: None,
        };
        // The seeding pass is epoch 0, not a streamed delta.
        engine.recluster()?;
        engine.epoch = 0;
        engine.stats.epochs = 0;
        Ok(engine)
    }

    /// Number of points currently in the window.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// The current clustering epoch (0 right after seeding).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mutation version of the underlying dataset: monotonically
    /// increasing, bumped by every applied point mutation and by nothing
    /// else — committing an empty [`EpochPlan`] (or `advance(&[], 0)`)
    /// leaves it unchanged.
    ///
    /// ```
    /// use dpc_core::naive_reference::NaiveReferenceIndex;
    /// use dpc_core::{Dataset, Point};
    /// use dpc_stream::{StreamParams, StreamingDpc};
    ///
    /// let seed = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 1.0)]);
    /// let mut engine =
    ///     StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
    /// let v0 = engine.version();
    /// engine.advance(&[], 0).unwrap(); // empty epoch: a no-op
    /// assert_eq!(engine.version(), v0);
    /// engine.insert(Point::new(2.0, 2.0)).unwrap();
    /// assert!(engine.version() > v0);
    /// ```
    pub fn version(&self) -> u64 {
        self.index.dataset().version()
    }

    /// The underlying index (and through it the current dataset).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The streaming parameters.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    /// Maintained local densities, indexed by dense [`PointId`].
    pub fn rho(&self) -> &[Rho] {
        &self.rho
    }

    /// Maintained δ/µ, indexed by dense [`PointId`].
    pub fn deltas(&self) -> &DeltaResult {
        &self.deltas
    }

    /// The clustering of the current epoch.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Cumulative maintenance counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The calibrated cost model driving [`CommitPolicy::Adaptive`].
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Switches the commit policy mid-stream, effective from the next
    /// committed epoch. A policy switch never changes results — every path
    /// is bit-identical to the cold batch oracle — only which maintenance
    /// path future epochs take. The cost model keeps learning from epoch
    /// timings under every policy, so a flip to [`CommitPolicy::Adaptive`]
    /// starts from live estimates rather than the seeding calibration.
    pub fn set_policy(&mut self, policy: CommitPolicy) {
        self.params.policy = policy;
    }

    /// The engine's observability sink (the shared no-op recorder by
    /// default).
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    /// Attaches an observability sink, effective from the next committed
    /// epoch. Every epoch then emits phase spans (`stream.phase.*` nested
    /// under `stream.epoch`), maintenance counters/histograms, per-query
    /// telemetry, and — under [`CommitPolicy::Adaptive`] — one
    /// `stream.policy.decision` event carrying predicted vs observed cost.
    ///
    /// Recording never changes results: ρ, δ, µ and labels are bit-identical
    /// whatever the recorder (the equivalence proptests pin this down).
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Builder-style [`set_recorder`](Self::set_recorder).
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// Attaches a snapshot publication sink, effective from the next
    /// committed epoch: every successfully committed non-empty epoch then
    /// freezes an [`EpochSnapshot`] (after re-clustering, under a
    /// `stream.phase.publish` span) and hands it to the sink. Committing an
    /// empty plan publishes nothing — the state did not change. The sink
    /// never affects results; it only observes them.
    pub fn set_snapshot_sink(&mut self, sink: Arc<dyn SnapshotSink>) {
        self.sink = Some(sink);
    }

    /// Detaches the snapshot sink, if any.
    pub fn clear_snapshot_sink(&mut self) {
        self.sink = None;
    }

    /// Freezes the engine's *current* state as an [`EpochSnapshot`] with an
    /// empty delta — the form a serving layer publishes at attach time,
    /// before any epoch has been committed through the sink.
    pub fn snapshot(&self) -> EpochSnapshot {
        self.snapshot_with_delta(ClusterDelta {
            epoch: self.epoch,
            num_clusters: self.clustering.num_clusters(),
            births: Vec::new(),
            deaths: Vec::new(),
            recentred: Vec::new(),
            changed: Vec::new(),
        })
    }

    /// Freezes the engine's current state, attaching `delta` as the epoch's
    /// advancing delta.
    fn snapshot_with_delta(&self, delta: ClusterDelta) -> EpochSnapshot {
        let state = StateSnapshot::capture(
            self.index.dataset(),
            &self.rho,
            &self.deltas,
            &self.clustering,
        );
        let handles: Vec<Handle> = (0..self.rho.len())
            .map(|p| self.handles.handle_at(p))
            .collect();
        EpochSnapshot::new(self.epoch, state, handles, delta)
    }

    /// The stable handle of the point at dense id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn handle_at(&self, id: PointId) -> Handle {
        self.handles.handle_at(id)
    }

    /// The dense id currently behind a handle (`None` once evicted).
    pub fn dense_of(&self, handle: Handle) -> Option<PointId> {
        self.handles.dense_of(handle)
    }

    /// The coordinates behind a handle (`None` once evicted).
    pub fn point_of(&self, handle: Handle) -> Option<Point> {
        self.dense_of(handle)
            .map(|id| self.index.dataset().point(id))
    }

    /// The oldest live handle (the next sliding-window eviction victim).
    pub fn oldest(&self) -> Option<Handle> {
        self.handles.oldest()
    }

    /// All live handles in ascending (arrival) order.
    pub fn live_handles(&self) -> impl Iterator<Item = Handle> + '_ {
        self.handles.live()
    }

    /// Inserts a point — an epoch of one update. Maintains ρ/δ/µ,
    /// re-clusters, and reports what changed.
    ///
    /// # Errors and partial progress
    ///
    /// The window mutation and the density maintenance happen *before* the
    /// clustering stage, so an error from centre selection or assignment
    /// (possible with non-adaptive rules like
    /// [`TopKGamma`](dpc_core::CenterSelection::TopKGamma) when `k` exceeds
    /// the window, or a `Threshold` no point satisfies) leaves the point
    /// **inserted** and ρ/δ/µ exact — only [`clustering`](Self::clustering)
    /// still describes the previous epoch. The new point's handle is then
    /// reachable via [`live_handles`](Self::live_handles) (it is the
    /// largest). Do not retry the mutation after such an error; fix the
    /// selection rule instead (the adaptive default,
    /// [`GammaGap`](dpc_core::CenterSelection::GammaGap), cannot fail on a
    /// non-empty window).
    pub fn insert(&mut self, p: Point) -> Result<(Handle, ClusterDelta)> {
        let mut plan = EpochPlan::new();
        plan.insert(p);
        let (handles, delta) = self.commit(&plan)?;
        Ok((handles[0], delta))
    }

    /// Evicts a point by handle — an epoch of one update. Maintains ρ/δ/µ,
    /// re-clusters, and reports what changed.
    ///
    /// # Errors and partial progress
    ///
    /// Same contract as [`insert`](Self::insert): if the clustering stage
    /// fails, the point **has been evicted** and the density state is exact;
    /// only the stored clustering is stale. Do not retry the eviction.
    pub fn remove(&mut self, handle: Handle) -> Result<ClusterDelta> {
        let mut plan = EpochPlan::new();
        plan.remove(handle);
        let (_, delta) = self.commit(&plan)?;
        Ok(delta)
    }

    /// Slides the window: evicts the `evict_count` oldest points (clamped to
    /// the window size), inserts `batch_in`, then runs **one** clustering
    /// epoch covering the whole batch. Returns the handles of the inserted
    /// points and the epoch's delta.
    ///
    /// An empty advance (`batch_in` empty, `evict_count` 0) is a complete
    /// no-op: no epoch is counted, [`version`](Self::version) is unchanged,
    /// and the returned delta is empty.
    ///
    /// # Errors and partial progress
    ///
    /// The batch is validated before anything is applied, so an invalid
    /// point (NaN/∞ coordinates) rejects the whole advance with the window
    /// untouched. If the *clustering* stage fails, the contract of
    /// [`insert`](Self::insert) applies: every update has been applied and
    /// ρ/δ/µ are exact, only the stored clustering is stale.
    pub fn advance(
        &mut self,
        batch_in: &[Point],
        evict_count: usize,
    ) -> Result<(Vec<Handle>, ClusterDelta)> {
        let mut plan = EpochPlan::new();
        for victim in self.handles.live().take(evict_count.min(self.len())) {
            plan.remove(victim);
        }
        for &p in batch_in {
            plan.insert(p);
        }
        self.commit(&plan)
    }

    /// Advances time without moving the window: one **pure decay epoch**.
    ///
    /// Every pair's density contribution ages by one factor of λ
    /// ([`StreamParams::decay`]), δ/µ are re-ranked in full — λ-scaling can
    /// collapse two neighbouring f64 densities onto the same float and flip
    /// an id tie-break, so the whole order is re-derived — and one
    /// clustering epoch runs. The window itself is untouched: **no
    /// ε-queries are issued** ([`StreamStats::eps_queries`] is unchanged;
    /// the regression suite pins this down) and [`version`](Self::version)
    /// does not move.
    ///
    /// With decay disabled (λ = 1.0) or an empty window a tick is a
    /// complete no-op: no epoch is counted and the returned delta is empty.
    ///
    /// # Errors and partial progress
    ///
    /// Same contract as [`insert`](Self::insert): only the clustering stage
    /// can fail, leaving the aged density state exact and the stored
    /// clustering stale.
    pub fn tick(&mut self) -> Result<ClusterDelta> {
        let lambda = self.params.decay;
        if lambda == 1.0 || self.is_empty() {
            return Ok(ClusterDelta {
                epoch: self.epoch,
                num_clusters: self.clustering.num_clusters(),
                births: Vec::new(),
                deaths: Vec::new(),
                recentred: Vec::new(),
                changed: Vec::new(),
            });
        }
        let rec = self.recorder.clone();
        let _epoch_span = span(&rec, "stream.epoch");
        let started = Instant::now();
        {
            let _decay_span = span(&rec, "stream.phase.decay");
            self.age_epoch += 1;
            for r in &mut self.rho {
                *r *= lambda;
            }
            let order = DensityOrder::with_tie_break(&self.rho, self.params.dpc.tie_break);
            recompute_all(
                self.index.dataset(),
                &order,
                &mut self.deltas,
                self.params.dpc.exec,
            );
            self.peak = order.global_peak();
        }
        let micros = started.elapsed().as_micros() as u64;
        self.stats.decay_epochs += 1;
        self.stats.last_epoch_micros = micros;
        self.stats.last_epoch_mode = Some(EpochMode::Decay);
        if rec.enabled() {
            rec.counter("stream.epochs", 1);
            rec.counter("stream.epochs.decay", 1);
            rec.record("stream.decay.rerank_points", self.rho.len() as u64);
            rec.record("stream.epoch.maintenance_us", micros);
        }
        let delta = {
            let _recluster_span = span(&rec, "stream.phase.recluster");
            self.recluster()?
        };
        if let Some(sink) = self.sink.clone() {
            let _publish_span = span(&rec, "stream.phase.publish");
            sink.publish(Arc::new(self.snapshot_with_delta(delta.clone())));
        }
        Ok(delta)
    }

    /// Applies a whole [`EpochPlan`] as **one** clustering epoch — the
    /// engine's single maintenance pipeline (see the [module docs](self);
    /// `insert`, `remove` and `advance` are thin wrappers over it).
    ///
    /// Returns one [`Handle`] per planned insert, in plan order (handles of
    /// ephemeral points — inserted and expired by the same plan — are
    /// already dead), and the epoch's [`ClusterDelta`]. Committing an empty
    /// plan is a no-op: no mutation, no epoch, an empty delta.
    ///
    /// # Errors and partial progress
    ///
    /// The plan is validated *before* any mutation (finite coordinates, live
    /// un-duplicated handles, tokens belonging to this plan), so a rejected
    /// plan leaves the engine untouched. After validation the only failable
    /// stage is clustering; see [`insert`](Self::insert) for that contract.
    pub fn commit(&mut self, plan: &EpochPlan) -> Result<(Vec<Handle>, ClusterDelta)> {
        if plan.is_empty() {
            let delta = ClusterDelta {
                epoch: self.epoch,
                num_clusters: self.clustering.num_clusters(),
                births: Vec::new(),
                deaths: Vec::new(),
                recentred: Vec::new(),
                changed: Vec::new(),
            };
            return Ok((Vec::new(), delta));
        }
        // One guard for the whole epoch: created before the phase spans and
        // dropped after re-clustering, so phases nest under it in a trace.
        let rec = self.recorder.clone();
        let _epoch_span = span(&rec, "stream.epoch");
        {
            let _validate_span = span(&rec, "stream.phase.validate");
            self.validate_plan(plan)?;
        }

        // Choose the maintenance path *before* any mutation, from the plan
        // shape alone (validation already guarantees every removal names a
        // distinct live point, so the final window size is exact). An epoch
        // that empties the window always takes the — then trivial —
        // incremental path: there is nothing to rebuild.
        let updates = plan.ops.len();
        let insert_count = plan.insert_count();
        let n_final = (self.rho.len() + insert_count).saturating_sub(updates - insert_count);
        // The rebuild path recomputes ρ from a batch query, which is only
        // the committed state when ρ is memoryless integer counting: a
        // non-cutoff kernel accumulates weights in the repair order (a
        // different f64 rounding than the batch scan), and decayed ρ is
        // history-dependent outright. Both therefore pin the epoch to the
        // incremental path — a documented coercion, not an error, so a
        // policy choice never changes results.
        let rebuild_allowed = self.params.dpc.kernel.is_cutoff() && self.params.decay == 1.0;
        let prediction: Option<Prediction> = match self.params.policy {
            CommitPolicy::Adaptive if rebuild_allowed => Some(self.model.predict(
                updates,
                n_final,
                self.params.max_affected_fraction,
                self.params.rebuild_bias,
            )),
            _ => None,
        };
        let rebuild = rebuild_allowed
            && n_final > 0
            && match self.params.policy {
                CommitPolicy::AlwaysIncremental => false,
                CommitPolicy::AlwaysRebuild => true,
                CommitPolicy::Adaptive => prediction.expect("adaptive: just computed").rebuild_wins,
            };

        // The scratch buffers move out for the duration of the epoch so the
        // branch can borrow them field-by-field alongside `self`; they are
        // put back (grown, never shrunk) whatever the outcome.
        let mut scratch = std::mem::take(&mut self.scratch);
        let started = Instant::now();
        let outcome = if rebuild {
            self.commit_rebuild(plan, &mut scratch)
        } else {
            self.commit_incremental(plan, &mut scratch)
        };
        self.scratch = scratch;
        let outcome = outcome?;
        let micros = started.elapsed().as_micros() as f64;

        let n = self.rho.len();
        match outcome.mode {
            EpochMode::Incremental => {
                self.stats.incremental_epochs += 1;
                self.stats.invalidated_points += outcome.invalidated as u64;
            }
            EpochMode::Fallback => self.stats.fallback_epochs += 1,
            EpochMode::Rebuild => self.stats.rebuild_epochs += 1,
            EpochMode::Decay => unreachable!("decay epochs come from tick(), not commit()"),
        }
        // The model learns from every epoch's timing regardless of policy
        // (an emptied window teaches nothing and is skipped).
        if n > 0 {
            match outcome.mode {
                EpochMode::Incremental => {
                    self.model
                        .observe_incremental(outcome.invalidated, updates, micros)
                }
                EpochMode::Fallback => {
                    self.model
                        .observe_fallback(n, outcome.invalidated, updates, micros)
                }
                EpochMode::Rebuild => self.model.observe_rebuild(n, micros),
                EpochMode::Decay => unreachable!("decay epochs come from tick(), not commit()"),
            }
        }
        self.stats.last_epoch_micros = micros as u64;
        self.stats.last_epoch_mode = Some(outcome.mode);
        if let Some(p) = &prediction {
            self.stats.predicted_cost_micros += p.chosen_us() as u64;
            self.stats.observed_cost_micros += micros as u64;
        }

        if rec.enabled() {
            rec.counter("stream.epochs", 1);
            rec.counter("stream.updates", updates as u64);
            rec.counter(
                match outcome.mode {
                    EpochMode::Incremental => "stream.epochs.incremental",
                    EpochMode::Fallback => "stream.epochs.fallback",
                    EpochMode::Rebuild => "stream.epochs.rebuild",
                    EpochMode::Decay => "stream.epochs.decay",
                },
                1,
            );
            rec.record("stream.invalidated", outcome.invalidated as u64);
            rec.record("stream.epoch.maintenance_us", micros as u64);
            // The policy decision, with its inputs and the realised outcome,
            // lands in the trace as one instant event per adaptive epoch.
            if let Some(p) = &prediction {
                rec.event(
                    "stream.policy.decision",
                    &[
                        ("mode", AttrValue::Str(outcome.mode.name())),
                        ("predicted_incremental_us", AttrValue::F64(p.incremental_us)),
                        ("predicted_rebuild_us", AttrValue::F64(p.rebuild_us)),
                        ("predicted_us", AttrValue::F64(p.chosen_us())),
                        ("observed_us", AttrValue::F64(micros)),
                        ("invalidated", AttrValue::U64(outcome.invalidated as u64)),
                    ],
                );
            }
            // Index maintenance triggers (scapegoat/dead-fraction rebuilds,
            // reinsertion rounds, …) as gauges: cumulative values, plottable
            // as counter tracks.
            let index_name = self.index.name();
            for (counter, value) in self.index.maintenance_counters() {
                rec.gauge(&format!("index.{index_name}.{counter}"), value as f64);
            }
        }

        // Phase 5 — one clustering epoch for the whole batch.
        let delta = {
            let _recluster_span = span(&rec, "stream.phase.recluster");
            self.recluster()?
        };
        // Phase 6 (optional) — freeze and publish the epoch snapshot. This
        // is the single-writer half of the serving layer: the snapshot is
        // immutable from here on, so readers need no coordination with the
        // next epoch's maintenance.
        if let Some(sink) = self.sink.clone() {
            let _publish_span = span(&rec, "stream.phase.publish");
            sink.publish(Arc::new(self.snapshot_with_delta(delta.clone())));
        }
        Ok((outcome.planned_handles, delta))
    }

    /// Phase 1 — translates the plan into resolved-id index ops, mirroring
    /// every op in the handle map and the per-point arrays so handle → id
    /// resolution tracks the mid-batch state. `scratch.owner` records, for
    /// each dense slot, whether it holds a survivor (and its pre-epoch id)
    /// or a point inserted this epoch. The dataset itself is not mutated
    /// yet; both maintenance branches start from here.
    fn apply_plan(&mut self, plan: &EpochPlan, scratch: &mut CommitScratch) -> Vec<Handle> {
        let n_old = self.rho.len();
        scratch.owner.clear();
        scratch.owner.extend((0..n_old).map(Origin::Old));
        scratch.batch_ops.clear();
        scratch.removed_old_locs.clear();
        scratch.removed_old_births.clear();
        let mut planned_handles: Vec<Handle> = Vec::with_capacity(plan.insert_count());
        for op in &plan.ops {
            let handle = match *op {
                PlanOp::Insert(p, _) => {
                    scratch.batch_ops.push(BatchOp::Insert(p));
                    planned_handles.push(self.handles.push());
                    scratch.owner.push(Origin::New(planned_handles.len() - 1));
                    self.rho.push(0.0);
                    self.births.push(self.age_epoch);
                    self.deltas.delta.push(f64::INFINITY);
                    self.deltas.mu.push(None);
                    continue;
                }
                PlanOp::Remove(h) => h,
                PlanOp::RemovePlanned(k) => planned_handles[k],
            };
            let id = self
                .handles
                .dense_of(handle)
                .expect("validated: handle is live at this op");
            if let Origin::Old(old_id) = scratch.owner[id] {
                // The dataset is still unmutated here, so the pre-epoch id
                // addresses the expiring coordinates.
                scratch
                    .removed_old_locs
                    .push(self.index.dataset().point(old_id));
                scratch.removed_old_births.push(self.births[id]);
            }
            scratch.batch_ops.push(BatchOp::Remove(id));
            self.handles.swap_remove(id);
            scratch.owner.swap_remove(id);
            self.rho.swap_remove(id);
            self.births.swap_remove(id);
            self.deltas.delta.swap_remove(id);
            self.deltas.mu.swap_remove(id);
        }
        planned_handles
    }

    /// The incremental maintenance branch: phases 2–4 of the pipeline
    /// (batch index mutation, ρ repair, bounded δ/µ repair with its
    /// fallback). Re-clustering and all stats/model bookkeeping happen in
    /// [`commit`](Self::commit).
    fn commit_incremental(
        &mut self,
        plan: &EpochPlan,
        scratch: &mut CommitScratch,
    ) -> Result<EpochOutcome> {
        let rec = self.recorder.clone();
        let apply_span = span(&rec, "stream.phase.apply");
        let n_old = self.rho.len();
        // One tick of the decay clock per committed epoch: points inserted
        // below are born on it, and every surviving pair ages by one λ in
        // the pre-pass of the ρ repair.
        self.age_epoch += 1;
        let planned_handles = self.apply_plan(plan, scratch);

        // Phase 2 — one index call for the whole epoch; amortised triggers
        // (scapegoat rebuilds, forced reinsertion) fire at most once here.
        // Validation guarantees the ops themselves cannot fail.
        self.index.apply_batch(&scratch.batch_ops)?;
        debug_assert_eq!(self.index.len(), self.rho.len());
        debug_assert_eq!(self.handles.len(), self.rho.len());
        self.stats.updates += scratch.batch_ops.len() as u64;
        drop(apply_span);

        let n = self.rho.len();
        if n == 0 {
            self.peak = None;
            return Ok(EpochOutcome {
                planned_handles,
                mode: EpochMode::Incremental,
                invalidated: 0,
            });
        }

        // Phase 3 — ρ repair against the final index. `final_of_old` maps a
        // pre-epoch id to its final slot (None = expired); `visited` is the
        // dedup bitmap building the affected union U.
        let rho_span = span(&rec, "stream.phase.rho_repair");
        let dc = self.params.dpc.dc;
        scratch.inserted_final.clear();
        scratch.final_of_old.clear();
        scratch.final_of_old.resize(n_old, None);
        for (i, origin) in scratch.owner.iter().enumerate() {
            match *origin {
                Origin::Old(o) => scratch.final_of_old[o] = Some(i),
                Origin::New(_) => scratch.inserted_final.push(i),
            }
        }
        scratch.visited.clear();
        scratch.visited.resize(n, false);
        scratch.union.clear();
        let touch = |q: PointId, visited: &mut Vec<bool>, union: &mut Vec<PointId>| {
            if !visited[q] {
                visited[q] = true;
                union.push(q);
            }
        };
        let kernel = self.params.dpc.kernel;
        let lambda = self.params.decay;
        // Decay pre-pass: every surviving pair ages by one λ before the
        // epoch's own mutations land. Inserted placeholders are zero and
        // unaffected; their fresh weights enter undecayed below. With decay
        // disabled the pass is skipped — ×1.0 would be a bit-exact no-op,
        // but an O(n) one.
        if lambda != 1.0 {
            for r in &mut self.rho {
                *r *= lambda;
            }
        }
        // Each expired pre-epoch location stops contributing to the ρ of
        // the survivors around it: the pair (r, q) entered at weight w(d)
        // when its younger member was born and has aged by λ every epoch
        // since — including this one's pre-pass — so the subtraction is the
        // aged weight λ^(age_epoch − max(birth_r, birth_q))·w(d). With the
        // cutoff kernel and no decay that is exactly 1.0, the pre-PR
        // integer decrement. Inserted points are skipped: their ρ is summed
        // fresh below, against the final window.
        for (&loc, &birth) in scratch
            .removed_old_locs
            .iter()
            .zip(&scratch.removed_old_births)
        {
            self.stats.eps_queries += 1;
            for q in self.index.eps_neighbors(loc, dc)? {
                if matches!(scratch.owner[q], Origin::Old(_)) {
                    let d2 = self.index.dataset().point(q).distance_squared(&loc);
                    let age = self.age_epoch - birth.max(self.births[q]);
                    self.rho[q] -= aged_weight(kernel, d2, lambda, age);
                    touch(q, &mut scratch.visited, &mut scratch.union);
                }
            }
        }
        // Each surviving insert sums its final neighbourhood's kernel
        // weights in ascending id order — the canonical summation order of
        // `weighted_rho_scan` (the ε-query returns ascending ids and
        // includes the point itself at distance 0, skipped here) — and
        // raises the ρ of the survivors in it by the same fresh, undecayed
        // pair weight; inserted neighbours are covered by their own fresh
        // sums.
        for &x in &scratch.inserted_final {
            let center = self.index.dataset().point(x);
            let neighborhood = self.index.eps_neighbors(center, dc)?;
            self.stats.eps_queries += 1;
            let mut mass = 0.0f64;
            for q in neighborhood {
                if q == x {
                    continue;
                }
                let w =
                    kernel.weight_from_sq(self.index.dataset().point(q).distance_squared(&center));
                mass += w;
                if matches!(scratch.owner[q], Origin::Old(_)) {
                    self.rho[q] += w;
                    touch(q, &mut scratch.visited, &mut scratch.union);
                }
            }
            self.rho[x] = mass;
        }
        self.stats.affected_points += scratch.union.len() as u64;
        rec.record("stream.affected_union", scratch.union.len() as u64);
        rec.counter(
            "stream.kernel.eps_queries",
            (scratch.removed_old_locs.len() + scratch.inserted_final.len()) as u64,
        );
        drop(rho_span);

        // Phase 4 — build the invalidation set F and the candidate entrants,
        // then repair δ/µ once for the whole epoch.
        let delta_span = span(&rec, "stream.phase.delta_repair");
        let tie = self.params.dpc.tie_break;
        let new_peak = DensityOrder::with_tie_break(&self.rho, tie).global_peak();
        let old_peak = self.peak.and_then(|pk| scratch.final_of_old[pk]);

        scratch.invalidated.clear();
        scratch.invalidated.extend_from_slice(&scratch.union);
        scratch
            .invalidated
            .extend_from_slice(&scratch.inserted_final);
        scratch.renamed.clear();
        for (o, slot) in scratch.final_of_old.iter().enumerate() {
            if let Some(i) = *slot {
                if i != o {
                    // A swap-remove renamed this survivor to a smaller id,
                    // which moves its position in the density order (either
                    // direction, depending on the tie-break rule): its own
                    // denser set may have shrunk (recompute) and it may
                    // enter other points' minima (candidate).
                    scratch.renamed.push(i);
                }
            }
        }
        scratch.invalidated.extend_from_slice(&scratch.renamed);
        // One µ scan: rename surviving µ ids into the final id space,
        // invalidate points whose µ expired or whose µ's rank may have
        // changed — because its ρ was touched (`visited`), or because the
        // swap-remove renamed it (`m != mu_old`): under `LargerIdDenser` a
        // smaller id *lowers* the µ's tie rank, so it can fall out of the
        // dependent's denser set without any ρ change.
        for (p, origin) in scratch.owner.iter().enumerate() {
            if matches!(origin, Origin::New(_)) {
                continue; // placeholder µ; already invalidated above
            }
            if let Some(mu_old) = self.deltas.mu[p] {
                match scratch.final_of_old[mu_old] {
                    None => {
                        self.deltas.mu[p] = None;
                        scratch.invalidated.push(p);
                    }
                    Some(m) => {
                        self.deltas.mu[p] = Some(m);
                        if scratch.visited[m] || m != mu_old {
                            scratch.invalidated.push(p);
                        }
                    }
                }
            }
        }
        scratch.invalidated.extend(old_peak);
        scratch.invalidated.extend(new_peak);
        scratch.invalidated.sort_unstable();
        scratch.invalidated.dedup();

        let order = DensityOrder::with_tie_break(&self.rho, tie);
        let dataset = self.index.dataset();
        // A decayed epoch rescaled *every* density in the pre-pass: λ-scaling
        // is order-preserving in exact arithmetic, but two neighbouring f64
        // densities can collapse onto the same float and hand the comparison
        // to the id tie-break — so no point's (δ, µ) minimum is trustworthy
        // and the epoch always re-ranks in full.
        let mode = if lambda != 1.0 || self.needs_fallback(scratch.invalidated.len(), n) {
            recompute_all(dataset, &order, &mut self.deltas, self.params.dpc.exec);
            EpochMode::Fallback
        } else {
            scratch.skip.clear();
            scratch.skip.resize(n, false);
            for &f in &scratch.invalidated {
                scratch.skip[f] = true;
            }
            scratch.candidates.clear();
            scratch.candidates.extend_from_slice(&scratch.union);
            scratch
                .candidates
                .extend_from_slice(&scratch.inserted_final);
            scratch.candidates.extend_from_slice(&scratch.renamed);
            candidate_pass(
                dataset,
                &order,
                &scratch.candidates,
                &scratch.skip,
                &mut self.deltas,
                self.params.dpc.exec,
            );
            recompute_targets(
                dataset,
                &order,
                &scratch.invalidated,
                &mut self.deltas,
                self.params.dpc.exec,
            );
            EpochMode::Incremental
        };
        drop(delta_span);
        self.peak = new_peak;
        Ok(EpochOutcome {
            planned_handles,
            mode,
            invalidated: scratch.invalidated.len(),
        })
    }

    /// The rebuild maintenance branch: materialises the epoch's final
    /// window with the exact per-update id and version semantics of the
    /// incremental path, bulk-loads it into the index
    /// ([`UpdatableIndex::rebuild_from`]) and re-runs the batch ρ/δ
    /// pipeline — bit-identical to the cold oracle because an exact index's
    /// batch queries are. Never called for an epoch that empties the
    /// window.
    fn commit_rebuild(
        &mut self,
        plan: &EpochPlan,
        scratch: &mut CommitScratch,
    ) -> Result<EpochOutcome> {
        debug_assert!(
            self.params.dpc.kernel.is_cutoff() && self.params.decay == 1.0,
            "commit() gates the rebuild path to the cutoff kernel without decay"
        );
        let rec = self.recorder.clone();
        let apply_span = span(&rec, "stream.phase.apply");
        self.age_epoch += 1;
        let planned_handles = self.apply_plan(plan, scratch);

        // Phase 2′ — replay the resolved ops on a copy of the dataset
        // (inserts append, removals swap-remove, one version bump each —
        // exactly what `apply_batch` would do to the index's own dataset),
        // then hand the final window to the index in one bulk load.
        let mut dataset = self.index.dataset().clone();
        for op in &scratch.batch_ops {
            match *op {
                BatchOp::Insert(p) => {
                    dataset.push(p)?;
                }
                BatchOp::Remove(id) => {
                    dataset.swap_remove(id)?;
                }
            }
        }
        self.index.rebuild_from(dataset)?;
        debug_assert_eq!(self.index.len(), self.rho.len());
        debug_assert_eq!(self.handles.len(), self.rho.len());
        self.stats.updates += scratch.batch_ops.len() as u64;
        drop(apply_span);

        // Phases 3′+4′ — fresh batch ρ/δ/µ over the rebuilt index and a
        // fresh global peak; nothing to repair. The observed query also
        // reports per-worker chunk spans and traversal counters.
        let batch_query_span = span(&rec, "stream.phase.batch_query");
        let (rho, deltas) =
            self.index
                .rho_delta_observed(self.params.dpc.dc, self.params.dpc.exec, &*rec)?;
        drop(batch_query_span);
        self.rho = rho;
        self.deltas = deltas;
        self.peak =
            DensityOrder::with_tie_break(&self.rho, self.params.dpc.tie_break).global_peak();
        Ok(EpochOutcome {
            planned_handles,
            mode: EpochMode::Rebuild,
            invalidated: 0,
        })
    }

    /// Rejects a plan that could fail mid-application: non-finite insert
    /// coordinates, dead/duplicated handles, or tokens from another plan.
    /// Runs before any mutation, so a rejected plan changes nothing.
    fn validate_plan(&self, plan: &EpochPlan) -> Result<()> {
        let mut removed: std::collections::HashSet<Handle> = std::collections::HashSet::new();
        let mut inserts_seen = 0usize;
        let mut planned_removed = vec![false; plan.insert_count()];
        for (k, op) in plan.ops.iter().enumerate() {
            match *op {
                PlanOp::Insert(p, _) => {
                    if !(p.x.is_finite() && p.y.is_finite()) {
                        return Err(DpcError::InvalidPoint {
                            id: k,
                            x: p.x,
                            y: p.y,
                        });
                    }
                    inserts_seen += 1;
                }
                PlanOp::Remove(handle) => {
                    if self.handles.dense_of(handle).is_none() {
                        return Err(DpcError::invalid_parameter(
                            "handle",
                            format!("point {handle} is not (or no longer) in the window"),
                        ));
                    }
                    if !removed.insert(handle) {
                        return Err(DpcError::invalid_parameter(
                            "handle",
                            format!("point {handle} is removed twice by the same plan"),
                        ));
                    }
                }
                PlanOp::RemovePlanned(i) => {
                    if i >= inserts_seen {
                        return Err(DpcError::invalid_parameter(
                            "token",
                            format!(
                                "planned-insert token {i} does not name an earlier \
                                 insert of this plan (did it come from another plan?)"
                            ),
                        ));
                    }
                    if planned_removed[i] {
                        return Err(DpcError::invalid_parameter(
                            "token",
                            format!("planned insert {i} is removed twice by the same plan"),
                        ));
                    }
                    planned_removed[i] = true;
                }
            }
        }
        Ok(())
    }

    /// Whether an invalidation set of `invalidated` points (out of `n`)
    /// triggers the full-recompute fallback.
    fn needs_fallback(&self, invalidated: usize, n: usize) -> bool {
        invalidated as f64 > self.params.max_affected_fraction * n as f64
    }

    /// Re-runs centre selection + assignment on the maintained `(ρ, δ, µ)`
    /// and diffs the stable labelling against the previous epoch.
    ///
    /// On error (e.g. a centre-selection rule that no point satisfies this
    /// epoch) the density state remains exact, but the stored clustering
    /// still describes the previous epoch.
    fn recluster(&mut self) -> Result<ClusterDelta> {
        let n = self.len();
        let (clustering, new_assignment) = if n == 0 {
            (Clustering::new(vec![], vec![], vec![]), BTreeMap::new())
        } else {
            let graph = DecisionGraph::new(self.rho.clone(), &self.deltas)?;
            let centers = graph.select_centers(&self.params.dpc.centers)?;
            let order = DensityOrder::with_tie_break(&self.rho, self.params.dpc.tie_break);
            let clustering = assign_clusters(
                self.index.dataset(),
                &order,
                &self.deltas,
                &centers,
                self.params.dpc.dc,
                &self.params.dpc.assignment,
            )?;
            let mut assignment = BTreeMap::new();
            for p in 0..n {
                let center = clustering.centers()[clustering.label(p)];
                assignment.insert(self.handles.handle_at(p), self.handles.handle_at(center));
            }
            (clustering, assignment)
        };

        self.epoch += 1;
        self.stats.epochs += 1;
        let delta = diff_assignments(self.epoch, &self.assignment, &new_assignment);
        self.assignment = new_assignment;
        self.clustering = clustering;
        Ok(delta)
    }
}

/// `λ^age` with the exact no-decay fast path: with `lambda == 1.0` (or age
/// 0) the factor is *exactly* 1.0, so multiplying by it never perturbs a
/// weight — this is what keeps the cutoff/no-decay path bit-identical to
/// the pre-weighted integer counting.
pub fn decay_factor(lambda: f64, age: u64) -> f64 {
    if lambda == 1.0 || age == 0 {
        1.0
    } else {
        lambda.powi(age.min(i32::MAX as u64) as i32)
    }
}

/// The current contribution of a pair at squared distance `d2` whose weight
/// entered `age` epochs ago under per-epoch decay `lambda`:
/// `w(d²) · λ^age`.
///
/// This is the engine's **only** aging arithmetic — the replay oracle of
/// the kernel-equivalence suite calls the same function, so engine and
/// oracle round identically and can be compared for bit equality.
pub fn aged_weight(kernel: Kernel, d2: f64, lambda: f64, age: u64) -> f64 {
    kernel.weight_from_sq(d2) * decay_factor(lambda, age)
}

/// Diffs two stable (point handle → centre handle) assignments.
///
/// A centre handle that leaves the centre set does not necessarily mean its
/// cluster died: when the centre *point* expires but the population
/// persists, the next epoch elects a new centre among the survivors. Dying
/// and newborn centres whose member sets overlap with Jaccard similarity of
/// at least [`ClusterDelta::JACCARD_THRESHOLD`] are therefore matched
/// greedily (best overlap first, deterministic handle-order tie-break) and
/// reported as `recentred` survivors instead of a death + birth pair.
fn diff_assignments(
    epoch: u64,
    old: &BTreeMap<Handle, Handle>,
    new: &BTreeMap<Handle, Handle>,
) -> ClusterDelta {
    use std::collections::BTreeSet;
    let old_centers: BTreeSet<Handle> = old.values().copied().collect();
    let new_centers: BTreeSet<Handle> = new.values().copied().collect();
    let mut births: Vec<Handle> = new_centers.difference(&old_centers).copied().collect();
    let mut deaths: Vec<Handle> = old_centers.difference(&new_centers).copied().collect();

    // Identity matching: pair each dying centre with the newborn centre
    // whose membership overlaps it the most, if the overlap clears the
    // Jaccard threshold. Clusters whose centre survived keep their identity
    // trivially and never take part.
    let mut recentred: Vec<(Handle, Handle)> = Vec::new();
    if !births.is_empty() && !deaths.is_empty() {
        let mut old_size: BTreeMap<Handle, usize> = BTreeMap::new();
        let mut new_size: BTreeMap<Handle, usize> = BTreeMap::new();
        for &c in old.values() {
            *old_size.entry(c).or_default() += 1;
        }
        for &c in new.values() {
            *new_size.entry(c).or_default() += 1;
        }
        let dead: BTreeSet<Handle> = deaths.iter().copied().collect();
        let born: BTreeSet<Handle> = births.iter().copied().collect();
        // Overlap counts over the points present in both epochs, restricted
        // to (dying, newborn) cluster pairs.
        let mut overlap: BTreeMap<(Handle, Handle), usize> = BTreeMap::new();
        for (h, &co) in old {
            if let Some(&cn) = new.get(h) {
                if dead.contains(&co) && born.contains(&cn) {
                    *overlap.entry((co, cn)).or_default() += 1;
                }
            }
        }
        let mut candidates: Vec<(f64, Handle, Handle)> = overlap
            .iter()
            .map(|(&(co, cn), &inter)| {
                let union = old_size[&co] + new_size[&cn] - inter;
                (inter as f64 / union as f64, co, cn)
            })
            .filter(|&(jaccard, _, _)| jaccard >= ClusterDelta::JACCARD_THRESHOLD)
            .collect();
        candidates.sort_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        let mut matched_old: BTreeSet<Handle> = BTreeSet::new();
        let mut matched_new: BTreeSet<Handle> = BTreeSet::new();
        for (_, co, cn) in candidates {
            if !matched_old.contains(&co) && !matched_new.contains(&cn) {
                matched_old.insert(co);
                matched_new.insert(cn);
                recentred.push((co, cn));
            }
        }
        if !recentred.is_empty() {
            recentred.sort_unstable();
            births.retain(|c| !matched_new.contains(c));
            deaths.retain(|c| !matched_old.contains(c));
        }
    }

    let mut changed = Vec::new();
    // Both maps iterate in ascending handle order; a classic merge collects
    // every handle present in either.
    let mut old_iter = old.iter().peekable();
    let mut new_iter = new.iter().peekable();
    loop {
        match (old_iter.peek(), new_iter.peek()) {
            (Some(&(&ho, &co)), Some(&(&hn, &cn))) => {
                if ho < hn {
                    changed.push(LabelChange {
                        handle: ho,
                        old: Some(co),
                        new: None,
                    });
                    old_iter.next();
                } else if hn < ho {
                    changed.push(LabelChange {
                        handle: hn,
                        old: None,
                        new: Some(cn),
                    });
                    new_iter.next();
                } else {
                    if co != cn {
                        changed.push(LabelChange {
                            handle: ho,
                            old: Some(co),
                            new: Some(cn),
                        });
                    }
                    old_iter.next();
                    new_iter.next();
                }
            }
            (Some(&(&ho, &co)), None) => {
                changed.push(LabelChange {
                    handle: ho,
                    old: Some(co),
                    new: None,
                });
                old_iter.next();
            }
            (None, Some(&(&hn, &cn))) => {
                changed.push(LabelChange {
                    handle: hn,
                    old: None,
                    new: Some(cn),
                });
                new_iter.next();
            }
            (None, None) => break,
        }
    }

    ClusterDelta {
        epoch,
        num_clusters: new_centers.len(),
        births,
        deaths,
        recentred,
        changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::naive_reference::NaiveReferenceIndex;
    use dpc_core::{CenterSelection, Dataset, DpcIndex};

    fn two_blob_engine() -> StreamingDpc<NaiveReferenceIndex> {
        let seed = Dataset::from_coords(vec![
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (5.0, 5.0),
            (5.1, 5.0),
            (5.0, 5.1),
        ]);
        let params = StreamParams::new(0.5)
            .with_dpc(DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 }));
        StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap()
    }

    /// The engine's density state must equal a cold batch run over its own
    /// surviving dataset.
    fn assert_matches_cold_batch(engine: &StreamingDpc<NaiveReferenceIndex>) {
        let batch = NaiveReferenceIndex::build(engine.index().dataset());
        let (rho, deltas) = batch.rho_delta(engine.params().dpc.dc).unwrap();
        assert_eq!(engine.rho(), &rho[..]);
        assert_eq!(engine.deltas(), &deltas);
    }

    #[test]
    fn seeding_matches_the_batch_pipeline() {
        let engine = two_blob_engine();
        assert_eq!(engine.len(), 6);
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.clustering().num_clusters(), 2);
        assert_eq!(engine.clustering().label(0), engine.clustering().label(1));
        assert_ne!(engine.clustering().label(0), engine.clustering().label(3));
    }

    #[test]
    fn insert_emits_a_delta_with_the_new_point() {
        let mut engine = two_blob_engine();
        let (h, delta) = engine.insert(Point::new(0.05, 0.05)).unwrap();
        assert_eq!(engine.len(), 7);
        assert_eq!(delta.insertions(), 1);
        assert_eq!(delta.epoch, 1);
        assert_eq!(engine.point_of(h), Some(Point::new(0.05, 0.05)));
        // The new point joined the origin blob.
        let id = engine.dense_of(h).unwrap();
        assert_eq!(engine.clustering().label(id), engine.clustering().label(0));
    }

    #[test]
    fn remove_emits_a_delta_and_invalidates_the_handle() {
        let mut engine = two_blob_engine();
        let victim = engine.handle_at(1);
        let delta = engine.remove(victim).unwrap();
        assert_eq!(engine.len(), 5);
        assert_eq!(delta.evictions(), 1);
        assert_eq!(engine.dense_of(victim), None);
        assert!(engine.remove(victim).is_err());
    }

    #[test]
    fn centre_expiry_with_survivors_is_recentred_not_death_and_birth() {
        let mut engine = two_blob_engine();
        let far_centre_id = engine
            .clustering()
            .centers()
            .iter()
            .copied()
            .find(|&c| engine.index().dataset().point(c).x > 1.0)
            .expect("one centre per blob");
        let old_centre = engine.handle_at(far_centre_id);
        let delta = engine.remove(old_centre).unwrap();
        // Regression: before overlap matching this epoch reported the far
        // blob as one death plus one birth even though two of its three
        // points survive under a freshly elected centre.
        assert!(delta.births.is_empty(), "births: {:?}", delta.births);
        assert!(delta.deaths.is_empty(), "deaths: {:?}", delta.deaths);
        assert_eq!(delta.recentred.len(), 1);
        let (dead, reborn) = delta.recentred[0];
        assert_eq!(dead, old_centre);
        let new_id = engine.dense_of(reborn).expect("new centre must be live");
        assert!(engine.index().dataset().point(new_id).x > 1.0);
        assert_eq!(delta.num_clusters, 2);
        assert_matches_cold_batch(&engine);
    }

    #[test]
    fn whole_cluster_eviction_is_still_a_death() {
        let mut engine = two_blob_engine();
        let far_centre_id = engine
            .clustering()
            .centers()
            .iter()
            .copied()
            .find(|&c| engine.index().dataset().point(c).x > 1.0)
            .unwrap();
        let far_centre = engine.handle_at(far_centre_id);
        let far: Vec<Handle> = (0..engine.len())
            .filter(|&p| engine.index().dataset().point(p).x > 1.0)
            .map(|p| engine.handle_at(p))
            .collect();
        let mut plan = EpochPlan::new();
        for &h in &far {
            plan.remove(h);
        }
        let (_, delta) = engine.commit(&plan).unwrap();
        // No surviving population: overlap matching must not resurrect it.
        assert!(delta.deaths.contains(&far_centre));
        assert!(delta.recentred.is_empty());
    }

    #[test]
    fn diff_matches_identity_only_above_the_jaccard_threshold() {
        let map = |pairs: &[(u64, u64)]| -> BTreeMap<Handle, Handle> {
            pairs.iter().map(|&(h, c)| (Handle(h), Handle(c))).collect()
        };
        // Centre #0 expires, survivors {1, 2} re-centre at #1:
        // Jaccard 2/3 ≥ 0.5 → matched.
        let old = map(&[(0, 0), (1, 0), (2, 0)]);
        let new = map(&[(1, 1), (2, 1)]);
        let d = diff_assignments(1, &old, &new);
        assert_eq!(d.recentred, vec![(Handle(0), Handle(1))]);
        assert!(d.births.is_empty() && d.deaths.is_empty());

        // Only one of four old members flows into the newborn cluster:
        // Jaccard 1/8 < 0.5 → the naive death + birth stands.
        let old = map(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let new = map(&[(3, 7), (7, 7), (8, 7), (9, 7), (10, 7)]);
        let d = diff_assignments(2, &old, &new);
        assert!(d.recentred.is_empty());
        assert_eq!(d.births, vec![Handle(7)]);
        assert_eq!(d.deaths, vec![Handle(0)]);

        // A merge: two dying clusters pour into one newborn; only the
        // dominant contributor (Jaccard 3/5) keeps the identity, the minor
        // one (2/5) dies.
        let old = map(&[(0, 0), (1, 0), (2, 0), (10, 5), (11, 5)]);
        let new = map(&[(0, 1), (1, 1), (2, 1), (10, 1), (11, 1)]);
        let d = diff_assignments(3, &old, &new);
        assert_eq!(d.recentred, vec![(Handle(0), Handle(1))]);
        assert!(d.births.is_empty());
        assert_eq!(d.deaths, vec![Handle(5)]);
    }

    #[test]
    fn advance_slides_the_window_in_one_epoch() {
        let mut engine = two_blob_engine();
        let (hs, delta) = engine
            .advance(&[Point::new(5.05, 5.05), Point::new(0.05, 0.0)], 2)
            .unwrap();
        assert_eq!(hs.len(), 2);
        assert_eq!(engine.len(), 6);
        assert_eq!(delta.insertions(), 2);
        assert_eq!(delta.evictions(), 2);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.stats().updates, 4);
        assert_eq!(engine.stats().epochs, 1);
        assert_matches_cold_batch(&engine);
    }

    #[test]
    fn empty_advance_is_a_complete_noop() {
        let mut engine = two_blob_engine();
        let before_version = engine.version();
        let before_stats = engine.stats();
        let (hs, delta) = engine.advance(&[], 0).unwrap();
        assert!(hs.is_empty());
        assert!(delta.is_empty());
        assert_eq!(delta.epoch, 0);
        assert_eq!(delta.num_clusters, 2);
        assert_eq!(engine.version(), before_version);
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.stats(), before_stats);
    }

    #[test]
    fn commit_applies_interleaved_ops_in_submission_order() {
        let mut engine = two_blob_engine();
        let oldest = engine.oldest().unwrap();
        let mut plan = EpochPlan::new();
        let kept = plan.insert(Point::new(0.05, 0.0));
        plan.remove(oldest);
        let (handles, delta) = engine.commit(&plan).unwrap();
        assert_eq!(engine.len(), 6);
        assert_eq!(delta.insertions(), 1);
        assert_eq!(delta.evictions(), 1);
        assert_eq!(engine.dense_of(oldest), None);
        assert!(engine.dense_of(handles[kept.0]).is_some());
        assert_matches_cold_batch(&engine);
    }

    #[test]
    fn ephemeral_point_leaves_no_trace() {
        let mut engine = two_blob_engine();
        let before: Vec<Point> = engine.index().dataset().points().to_vec();
        let before_rho = engine.rho().to_vec();
        let mut plan = EpochPlan::new();
        // Inserted on top of the origin blob, expired within the same epoch:
        // the committed state must be as if it never existed.
        let flash = plan.insert(Point::new(0.05, 0.05));
        plan.remove_planned(flash);
        let (handles, delta) = engine.commit(&plan).unwrap();
        assert_eq!(engine.dense_of(handles[0]), None);
        assert_eq!(engine.index().dataset().points(), &before[..]);
        assert_eq!(engine.rho(), &before_rho[..]);
        assert_eq!(delta.insertions(), 0);
        assert_eq!(delta.evictions(), 0);
        assert_eq!(engine.stats().updates, 2); // but both mutations count
        assert_matches_cold_batch(&engine);
    }

    #[test]
    fn invalid_plans_are_rejected_before_any_mutation() {
        let mut engine = two_blob_engine();
        let v0 = engine.version();
        let oldest = engine.oldest().unwrap();

        // A non-finite point anywhere in the batch rejects the whole plan.
        let mut plan = EpochPlan::new();
        plan.insert(Point::new(1.0, 1.0));
        plan.insert(Point::new(f64::NAN, 0.0));
        assert!(engine.commit(&plan).is_err());

        // Removing the same handle twice.
        let mut plan = EpochPlan::new();
        plan.remove(oldest);
        plan.remove(oldest);
        assert!(engine.commit(&plan).is_err());

        // A token from another plan.
        let mut other = EpochPlan::new();
        let foreign = other.insert(Point::new(1.0, 1.0));
        let mut plan = EpochPlan::new();
        plan.remove_planned(foreign);
        assert!(engine.commit(&plan).is_err());

        // Removing the same planned insert twice.
        let mut plan = EpochPlan::new();
        let t = plan.insert(Point::new(1.0, 1.0));
        plan.remove_planned(t);
        plan.remove_planned(t);
        assert!(engine.commit(&plan).is_err());

        // Nothing was applied by any of the rejected plans.
        assert_eq!(engine.version(), v0);
        assert_eq!(engine.len(), 6);
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn draining_the_window_to_empty_and_refilling_works() {
        // The automatic γ-gap selection adapts to any window size; a fixed
        // top-k would (correctly) error once fewer than k points remain.
        let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (5.1, 5.0)]);
        let mut engine =
            StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
        while let Some(h) = engine.oldest() {
            engine.remove(h).unwrap();
        }
        assert!(engine.is_empty());
        assert_eq!(engine.clustering().num_clusters(), 0);
        let (_, delta) = engine.insert(Point::new(1.0, 1.0)).unwrap();
        assert_eq!(delta.births.len(), 1);
        assert_eq!(engine.clustering().num_clusters(), 1);
    }

    #[test]
    fn draining_in_one_epoch_works() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (5.1, 5.0)]);
        let mut engine =
            StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
        let (_, delta) = engine.advance(&[], 4).unwrap();
        assert!(engine.is_empty());
        assert_eq!(delta.evictions(), 4);
        assert_eq!(engine.clustering().num_clusters(), 0);
        assert_eq!(engine.stats().epochs, 1);
    }

    #[test]
    fn forced_fallback_still_produces_exact_state() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (5.1, 5.0)]);
        let params = StreamParams::new(0.5)
            .with_dpc(DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 }))
            .with_max_affected_fraction(0.0);
        let mut engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap();
        engine.insert(Point::new(0.05, 0.0)).unwrap();
        engine.remove(engine.handle_at(0)).unwrap();
        assert_eq!(engine.stats().fallback_epochs, 2);
        assert_eq!(engine.stats().incremental_epochs, 0);
        assert_matches_cold_batch(&engine);
    }

    #[test]
    fn mismatched_tie_break_is_rejected() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0)]);
        let index =
            NaiveReferenceIndex::build_with_tie_break(&seed, dpc_core::TieBreak::LargerIdDenser);
        assert!(StreamingDpc::new(index, StreamParams::new(0.5)).is_err());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0)]);
        let index = NaiveReferenceIndex::build(&seed);
        assert!(StreamingDpc::new(index.clone(), StreamParams::new(-1.0)).is_err());
        assert!(StreamingDpc::new(
            index,
            StreamParams::new(1.0).with_max_affected_fraction(f64::NAN)
        )
        .is_err());
    }

    #[test]
    fn non_finite_policy_knobs_are_rejected_with_value_and_range() {
        for alpha in [f64::NAN, f64::INFINITY, 0.0, -0.3, 1.5] {
            let err = StreamParams::new(0.5)
                .with_ewma_alpha(alpha)
                .validate()
                .unwrap_err()
                .to_string();
            assert!(err.contains(&format!("got {alpha}")), "{err}");
            assert!(err.contains("0 < alpha <= 1"), "{err}");
        }
        for bias in [f64::NAN, f64::NEG_INFINITY, 0.0, -2.0] {
            let err = StreamParams::new(0.5)
                .with_rebuild_bias(bias)
                .validate()
                .unwrap_err()
                .to_string();
            assert!(err.contains(&format!("got {bias}")), "{err}");
            assert!(err.contains("bias > 0"), "{err}");
        }
        // The boundary values themselves are valid.
        assert!(StreamParams::new(0.5)
            .with_ewma_alpha(1.0)
            .validate()
            .is_ok());
        assert!(StreamParams::new(0.5)
            .with_rebuild_bias(0.5)
            .validate()
            .is_ok());
    }

    #[test]
    fn rebuild_policy_commits_identical_state() {
        let seed = Dataset::from_coords(vec![
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (5.0, 5.0),
            (5.1, 5.0),
            (5.0, 5.1),
        ]);
        let params = StreamParams::new(0.5)
            .with_dpc(DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 }));
        let mut inc = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params.clone()).unwrap();
        let mut reb = StreamingDpc::new(
            NaiveReferenceIndex::build(&seed),
            params.with_policy(CommitPolicy::AlwaysRebuild),
        )
        .unwrap();
        let batches = [
            vec![Point::new(0.05, 0.05), Point::new(5.05, 5.05)],
            vec![Point::new(0.02, 0.0), Point::new(5.02, 5.0)],
        ];
        for batch in &batches {
            inc.advance(batch, batch.len()).unwrap();
            reb.advance(batch, batch.len()).unwrap();
            assert_eq!(inc.rho(), reb.rho());
            assert_eq!(inc.deltas(), reb.deltas());
            assert_eq!(inc.version(), reb.version());
            assert_eq!(
                inc.index().dataset().points(),
                reb.index().dataset().points()
            );
            assert_matches_cold_batch(&reb);
        }
        assert_eq!(reb.stats().rebuild_epochs, 2);
        assert_eq!(reb.stats().incremental_epochs, 0);
        assert_eq!(reb.stats().fallback_epochs, 0);
        assert_eq!(reb.stats().last_epoch_mode, Some(crate::EpochMode::Rebuild));
        assert_eq!(inc.stats().rebuild_epochs, 0);
    }

    #[test]
    fn emptying_epoch_under_rebuild_policy_takes_the_trivial_path() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0)]);
        let params = StreamParams::new(0.5).with_policy(CommitPolicy::AlwaysRebuild);
        let mut engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap();
        let (_, delta) = engine.advance(&[], 2).unwrap();
        assert!(engine.is_empty());
        assert_eq!(delta.evictions(), 2);
        assert_eq!(engine.stats().rebuild_epochs, 0);
        assert_eq!(engine.stats().incremental_epochs, 1);
        // Refilling rebuilds again.
        engine.insert(Point::new(1.0, 1.0)).unwrap();
        assert_eq!(engine.stats().rebuild_epochs, 1);
        assert_matches_cold_batch(&engine);
    }

    #[test]
    fn set_policy_flips_the_path_without_changing_state() {
        let mut engine = two_blob_engine();
        engine.insert(Point::new(0.05, 0.0)).unwrap();
        assert_eq!(engine.stats().rebuild_epochs, 0);
        engine.set_policy(CommitPolicy::AlwaysRebuild);
        engine.insert(Point::new(5.05, 5.0)).unwrap();
        assert_eq!(engine.stats().rebuild_epochs, 1);
        engine.set_policy(CommitPolicy::AlwaysIncremental);
        engine.insert(Point::new(0.0, 0.05)).unwrap();
        assert_eq!(engine.stats().rebuild_epochs, 1);
        assert_eq!(engine.params().policy, CommitPolicy::AlwaysIncremental);
        assert_matches_cold_batch(&engine);
    }

    #[test]
    fn adaptive_policy_records_predictions_and_stays_exact() {
        let seed = Dataset::from_coords(vec![
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (5.0, 5.0),
            (5.1, 5.0),
            (5.0, 5.1),
        ]);
        let params = StreamParams::new(0.5)
            .with_dpc(DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 }))
            .with_policy(CommitPolicy::Adaptive);
        let mut engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap();
        for i in 0..4 {
            let x = 0.01 * (i + 1) as f64;
            engine
                .advance(&[Point::new(x, 0.0), Point::new(5.0 + x, 5.0)], 2)
                .unwrap();
            assert_matches_cold_batch(&engine);
        }
        let stats = engine.stats();
        assert_eq!(
            stats.incremental_epochs + stats.fallback_epochs + stats.rebuild_epochs,
            4
        );
        assert!(stats.last_epoch_mode.is_some());
        assert!(engine.cost_model().union_per_update() >= 1.0);
    }

    #[test]
    fn stats_accumulate_over_epochs() {
        let mut engine = two_blob_engine();
        engine.insert(Point::new(0.05, 0.0)).unwrap();
        engine.insert(Point::new(5.05, 5.0)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.epochs, 2);
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.incremental_epochs + stats.fallback_epochs, 2);
        assert!(stats.affected_points >= 2);
    }
}
