//! The streaming DPC engine: [`StreamingDpc`].
//!
//! ## How the affected-set maintenance works
//!
//! Let `dc` be the cut-off distance and consider inserting (or deleting) a
//! point `x`:
//!
//! * **ρ** — by definition `ρ(p)` counts points strictly within `dc` of `p`,
//!   so only the points of the *affected set* `A = {p : dist(p, x) < dc}`
//!   change, each by exactly ±1; `A` is found with the index's own ε-range
//!   query ([`UpdatableIndex::eps_neighbors`]). ρ maintenance is therefore
//!   exact and O(|A|) after the range query.
//! * **δ/µ** — `δ(p)` is the lexicographic `(distance, id)` minimum over the
//!   points *denser* than `p`. An update splits the window into:
//!   - the **invalidation set** `F`, whose denser set may have *lost*
//!     members so the old minimum is no longer trustworthy: `A ∪ {x}` (their
//!     own ρ — and hence rank — changed), points whose µ was deleted or sits
//!     in `A`, the point renamed by the swap-remove, and the old/new global
//!     peaks (the peak's δ is the max-distance sentinel, which moves with
//!     every update). Every point of `F` is recomputed from scratch.
//!   - everyone else, whose denser set can only have *gained* members; the
//!     stored `(δ, µ)` is still a valid minimum and the candidate entrants
//!     (the inserted point, neighbours whose ρ rose, the renamed point) are
//!     folded in by a cheap min-pass.
//!
//!   When `|F|` exceeds [`StreamParams::max_affected_fraction`] of the
//!   window, the engine falls back to recomputing δ/µ for every point (the
//!   documented fallback — still cheaper than a rebuild because the index
//!   and ρ are maintained, not reconstructed).
//!
//! Peak selection and assignment are then re-run on the maintained `(ρ, δ,
//! µ)` — they are `O(n log n)` and order-of-magnitude cheaper than the
//! queries they consume — and the label diff against the previous epoch is
//! emitted as a [`ClusterDelta`].
//!
//! The correctness anchor (enforced by the `incremental_vs_batch` property
//! suite) is: after **every** update, the engine's `(ρ, δ, µ, labels)` are
//! bit-identical to a cold batch run over the surviving points, for every
//! [`UpdatableIndex`] implementation, at every thread count.

use std::collections::BTreeMap;

use dpc_core::{
    assign_clusters, Clustering, DecisionGraph, DeltaResult, DensityOrder, DpcError, DpcParams,
    Point, PointId, Result, Rho, UpdatableIndex,
};

use crate::handle::{Handle, HandleMap};
use crate::maintenance::{candidate_pass, recompute_all, recompute_targets};
use crate::report::{ClusterDelta, LabelChange};

/// Parameters of a streaming run: the batch DPC parameters plus the
/// incremental-maintenance knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamParams {
    /// The clustering parameters (`dc`, centre selection, tie-break,
    /// assignment options, execution policy). The execution policy is used
    /// for the parallel maintenance passes as well as the seeding batch
    /// queries.
    pub dpc: DpcParams,
    /// When the invalidation set of one update exceeds this fraction of the
    /// window, fall back to recomputing δ/µ for every point instead of
    /// repairing incrementally. 1.0 (or anything ≥ 1.0) effectively disables
    /// the fallback; 0.0 forces it on every update (useful for testing).
    pub max_affected_fraction: f64,
}

impl StreamParams {
    /// Streaming parameters with the given cut-off and defaults for
    /// everything else (fallback threshold 0.25).
    pub fn new(dc: f64) -> Self {
        StreamParams {
            dpc: DpcParams::new(dc),
            max_affected_fraction: 0.25,
        }
    }

    /// Replaces the embedded batch parameters.
    pub fn with_dpc(mut self, dpc: DpcParams) -> Self {
        self.dpc = dpc;
        self
    }

    /// Sets the fallback threshold.
    pub fn with_max_affected_fraction(mut self, fraction: f64) -> Self {
        self.max_affected_fraction = fraction;
        self
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        self.dpc.validate()?;
        if !(self.max_affected_fraction.is_finite() && self.max_affected_fraction >= 0.0) {
            return Err(DpcError::invalid_parameter(
                "max_affected_fraction",
                format!(
                    "must be a finite non-negative fraction, got {}",
                    self.max_affected_fraction
                ),
            ));
        }
        Ok(())
    }
}

/// Cumulative counters describing how much incremental work the engine did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Clustering epochs emitted (one per `insert`/`remove`/`advance`).
    pub epochs: u64,
    /// Individual point updates applied (an `advance` counts each insert and
    /// eviction separately).
    pub updates: u64,
    /// Updates repaired incrementally (candidate pass + bounded recompute).
    pub incremental_updates: u64,
    /// Updates that fell back to a full δ/µ recomputation.
    pub fallback_updates: u64,
    /// Sum over updates of the affected-set size |A| (ε-neighbourhood).
    pub affected_points: u64,
    /// Sum over updates of the invalidation-set size |F| (points fully
    /// recomputed when on the incremental path).
    pub invalidated_points: u64,
}

/// An online Density Peak Clustering engine over a mutable window of points.
///
/// See the [module docs](self) for the maintenance algorithm. Typical use:
///
/// ```
/// use dpc_core::naive_reference::NaiveReferenceIndex;
/// use dpc_core::{CenterSelection, Dataset, Point};
/// use dpc_stream::{StreamParams, StreamingDpc};
///
/// let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (5.1, 5.0)]);
/// let index = NaiveReferenceIndex::build(&seed);
/// let params = StreamParams::new(0.5)
///     .with_dpc(dpc_core::DpcParams::new(0.5)
///         .with_centers(CenterSelection::TopKGamma { k: 2 }));
/// let mut engine = StreamingDpc::new(index, params).unwrap();
/// assert_eq!(engine.clustering().num_clusters(), 2);
///
/// // Points arrive and expire without ever rebuilding the index.
/// let (handle, delta) = engine.insert(Point::new(0.05, 0.05)).unwrap();
/// assert_eq!(delta.insertions(), 1);
/// let delta = engine.remove(handle).unwrap();
/// assert_eq!(delta.evictions(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDpc<I: UpdatableIndex> {
    index: I,
    params: StreamParams,
    rho: Vec<Rho>,
    deltas: DeltaResult,
    handles: HandleMap,
    /// Dense id of the global peak (`None` for an empty window).
    peak: Option<PointId>,
    clustering: Clustering,
    /// Stable view of the previous epoch: point handle → centre handle.
    assignment: BTreeMap<Handle, Handle>,
    epoch: u64,
    stats: StreamStats,
}

impl<I: UpdatableIndex> StreamingDpc<I> {
    /// Seeds the engine with an index (and the dataset it owns), running one
    /// batch ρ/δ query plus an initial clustering epoch.
    ///
    /// Errors when the parameters are invalid, when the index's tie-break
    /// rule disagrees with the parameters, when the index is approximate
    /// (incremental maintenance needs exact δ/µ), or when the initial centre
    /// selection fails.
    pub fn new(index: I, params: StreamParams) -> Result<Self> {
        params.validate()?;
        if index.tie_break() != params.dpc.tie_break {
            return Err(DpcError::invalid_parameter(
                "tie_break",
                "the index and the stream parameters must agree on the density tie-break rule",
            ));
        }
        if !index.is_exact() {
            return Err(DpcError::invalid_parameter(
                "index",
                "streaming maintenance requires an exact index (approximate \
                 δ clipping cannot be repaired incrementally)",
            ));
        }
        let n = index.len();
        let (rho, deltas) = if n == 0 {
            (Vec::new(), DeltaResult::unset(0))
        } else {
            index.rho_delta_with_policy(params.dpc.dc, params.dpc.exec)?
        };
        let peak = DensityOrder::with_tie_break(&rho, params.dpc.tie_break).global_peak();
        let mut engine = StreamingDpc {
            index,
            params,
            rho,
            deltas,
            handles: HandleMap::with_dense_len(n),
            peak,
            clustering: Clustering::new(vec![], vec![], vec![]),
            assignment: BTreeMap::new(),
            epoch: 0,
            stats: StreamStats::default(),
        };
        // The seeding pass is epoch 0, not a streamed delta.
        engine.recluster()?;
        engine.epoch = 0;
        engine.stats.epochs = 0;
        Ok(engine)
    }

    /// Number of points currently in the window.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// The current clustering epoch (0 right after seeding).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying index (and through it the current dataset).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The streaming parameters.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    /// Maintained local densities, indexed by dense [`PointId`].
    pub fn rho(&self) -> &[Rho] {
        &self.rho
    }

    /// Maintained δ/µ, indexed by dense [`PointId`].
    pub fn deltas(&self) -> &DeltaResult {
        &self.deltas
    }

    /// The clustering of the current epoch.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Cumulative maintenance counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// The stable handle of the point at dense id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn handle_at(&self, id: PointId) -> Handle {
        self.handles.handle_at(id)
    }

    /// The dense id currently behind a handle (`None` once evicted).
    pub fn dense_of(&self, handle: Handle) -> Option<PointId> {
        self.handles.dense_of(handle)
    }

    /// The coordinates behind a handle (`None` once evicted).
    pub fn point_of(&self, handle: Handle) -> Option<Point> {
        self.dense_of(handle)
            .map(|id| self.index.dataset().point(id))
    }

    /// The oldest live handle (the next sliding-window eviction victim).
    pub fn oldest(&self) -> Option<Handle> {
        self.handles.oldest()
    }

    /// All live handles in ascending (arrival) order.
    pub fn live_handles(&self) -> impl Iterator<Item = Handle> + '_ {
        self.handles.live()
    }

    /// Inserts a point, maintains ρ/δ/µ, re-clusters, and reports what
    /// changed.
    ///
    /// # Errors and partial progress
    ///
    /// The window mutation and the density maintenance happen *before* the
    /// clustering stage, so an error from centre selection or assignment
    /// (possible with non-adaptive rules like
    /// [`TopKGamma`](dpc_core::CenterSelection::TopKGamma) when `k` exceeds
    /// the window, or a `Threshold` no point satisfies) leaves the point
    /// **inserted** and ρ/δ/µ exact — only [`clustering`](Self::clustering)
    /// still describes the previous epoch. The new point's handle is then
    /// reachable via [`live_handles`](Self::live_handles) (it is the
    /// largest). Do not retry the mutation after such an error; fix the
    /// selection rule instead (the adaptive default,
    /// [`GammaGap`](dpc_core::CenterSelection::GammaGap), cannot fail on a
    /// non-empty window).
    pub fn insert(&mut self, p: Point) -> Result<(Handle, ClusterDelta)> {
        let handle = self.apply_insert(p)?;
        let delta = self.recluster()?;
        Ok((handle, delta))
    }

    /// Evicts a point by handle, maintains ρ/δ/µ, re-clusters, and reports
    /// what changed.
    ///
    /// # Errors and partial progress
    ///
    /// Same contract as [`insert`](Self::insert): if the clustering stage
    /// fails, the point **has been evicted** and the density state is exact;
    /// only the stored clustering is stale. Do not retry the eviction.
    pub fn remove(&mut self, handle: Handle) -> Result<ClusterDelta> {
        self.apply_remove(handle)?;
        self.recluster()
    }

    /// Slides the window: evicts the `evict_count` oldest points (clamped to
    /// the window size), inserts `batch_in`, then runs **one** clustering
    /// epoch covering the whole batch. Returns the handles of the inserted
    /// points and the epoch's delta.
    ///
    /// # Errors and partial progress
    ///
    /// Same contract as [`insert`](Self::insert): updates already applied
    /// when an error surfaces stay applied (density state exact, clustering
    /// stale). An error from the eviction/insertion loop itself can only be
    /// an invalid point (NaN/∞ coordinates), reported before that point is
    /// applied.
    pub fn advance(
        &mut self,
        batch_in: &[Point],
        evict_count: usize,
    ) -> Result<(Vec<Handle>, ClusterDelta)> {
        for _ in 0..evict_count.min(self.len()) {
            let oldest = self.handles.oldest().expect("window is non-empty");
            self.apply_remove(oldest)?;
        }
        let mut inserted = Vec::with_capacity(batch_in.len());
        for &p in batch_in {
            inserted.push(self.apply_insert(p)?);
        }
        let delta = self.recluster()?;
        Ok((inserted, delta))
    }

    /// Whether an invalidation set of `invalidated` points (out of `n`)
    /// triggers the full-recompute fallback.
    fn needs_fallback(&self, invalidated: usize, n: usize) -> bool {
        invalidated as f64 > self.params.max_affected_fraction * n as f64
    }

    /// The shared δ/µ repair epilogue of [`apply_insert`](Self::apply_insert)
    /// and [`apply_remove`](Self::apply_remove): counts the update, decides
    /// between the incremental path (candidate min-fold for everyone outside
    /// the invalidation set + full recompute inside it) and the
    /// full-recompute fallback, and runs the chosen passes. `invalidated`
    /// and `candidates` hold post-update dense ids; duplicates are fine.
    fn repair_deltas(&mut self, mut invalidated: Vec<PointId>, candidates: &[PointId]) {
        invalidated.sort_unstable();
        invalidated.dedup();
        let n = self.rho.len();
        let order = DensityOrder::with_tie_break(&self.rho, self.params.dpc.tie_break);
        let dataset = self.index.dataset();
        self.stats.updates += 1;
        if self.needs_fallback(invalidated.len(), n) {
            self.stats.fallback_updates += 1;
            recompute_all(dataset, &order, &mut self.deltas, self.params.dpc.exec);
        } else {
            self.stats.incremental_updates += 1;
            self.stats.invalidated_points += invalidated.len() as u64;
            let mut skip = vec![false; n];
            for &f in &invalidated {
                skip[f] = true;
            }
            candidate_pass(
                dataset,
                &order,
                candidates,
                &skip,
                &mut self.deltas,
                self.params.dpc.exec,
            );
            recompute_targets(
                dataset,
                &order,
                &invalidated,
                &mut self.deltas,
                self.params.dpc.exec,
            );
        }
    }

    /// ρ/δ/µ maintenance for one insertion. Does not re-cluster.
    fn apply_insert(&mut self, p: Point) -> Result<Handle> {
        let dc = self.params.dpc.dc;
        let tie = self.params.dpc.tie_break;
        // Affected set first (the point is not indexed yet, so `affected`
        // holds exactly the *other* points within dc — which is also ρ(x)).
        let affected = self.index.eps_neighbors(p, dc)?;
        let x = self.index.insert(p)?;
        let handle = self.handles.push();
        debug_assert_eq!(self.handles.len(), self.index.len());

        let old_peak = self.peak;
        for &q in &affected {
            self.rho[q] += 1;
        }
        self.rho.push(affected.len() as Rho);
        self.deltas.delta.push(f64::INFINITY);
        self.deltas.mu.push(None);

        let new_peak = DensityOrder::with_tie_break(&self.rho, tie).global_peak();

        // Invalidation set: the affected points and x (their rank changed),
        // plus the old and new global peaks (the sentinel δ of the peak is
        // the max distance to any point, which moves with every insert).
        let mut invalidated: Vec<PointId> = affected.clone();
        invalidated.push(x);
        invalidated.extend(old_peak);
        invalidated.extend(new_peak);

        self.stats.affected_points += affected.len() as u64;
        // Candidate entrants for everyone outside the invalidation set: x
        // itself and the neighbours whose ρ just rose.
        let mut candidates = affected;
        candidates.push(x);
        self.repair_deltas(invalidated, &candidates);
        self.peak = new_peak;
        Ok(handle)
    }

    /// ρ/δ/µ maintenance for one eviction. Does not re-cluster.
    fn apply_remove(&mut self, handle: Handle) -> Result<()> {
        let r = self.handles.dense_of(handle).ok_or_else(|| {
            DpcError::invalid_parameter(
                "handle",
                format!("point {handle} is not (or no longer) in the window"),
            )
        })?;
        let dc = self.params.dpc.dc;
        let tie = self.params.dpc.tie_break;
        let n = self.index.len();
        let last = n - 1;
        let removed_pt = self.index.dataset().point(r);

        // Affected set under the *old* ids, excluding the removed point
        // itself (its distance 0 always passes the strict < dc test).
        let affected_old = self.index.eps_neighbors(removed_pt, dc)?;
        let moved = self.index.remove(r)?;
        debug_assert_eq!(moved, if r == last { None } else { Some(last) });
        self.handles.swap_remove(r);

        // Mirror the swap-remove in every per-point array; entries still
        // *contain* old ids, fixed below.
        self.rho.swap_remove(r);
        self.deltas.delta.swap_remove(r);
        self.deltas.mu.swap_remove(r);

        // Rename the affected ids into the post-swap id space and apply the
        // ρ decrements.
        let affected: Vec<PointId> = affected_old
            .iter()
            .filter(|&&q| q != r)
            .map(|&q| if q == last { r } else { q })
            .collect();
        for &q in &affected {
            self.rho[q] -= 1;
        }
        let n = n - 1;

        let old_peak = match self.peak {
            Some(pk) if pk == r => None, // the peak itself was evicted
            Some(pk) if pk == last => Some(r),
            other => other,
        };
        if n == 0 {
            self.peak = None;
            self.stats.updates += 1;
            self.stats.incremental_updates += 1;
            return Ok(());
        }

        // Scan µ once: entries pointing at the removed point lost their
        // dependent neighbour (full recompute); entries pointing at the
        // moved point are renamed. Entries whose µ sits in the affected set
        // are also invalidated — their µ's rank dropped, so it may no longer
        // be denser than them.
        let mut in_affected = vec![false; n];
        for &q in &affected {
            in_affected[q] = true;
        }
        let mut invalidated: Vec<PointId> = Vec::new();
        for p in 0..n {
            match self.deltas.mu[p] {
                Some(q) if q == r => invalidated.push(p),
                Some(q) if moved == Some(q) => {
                    self.deltas.mu[p] = Some(r);
                    if in_affected[r] {
                        invalidated.push(p);
                    }
                }
                Some(q) if q < n && in_affected[q] => invalidated.push(p),
                _ => {}
            }
        }
        invalidated.extend_from_slice(&affected);
        if moved.is_some() {
            // The renamed point's own rank rose (smaller id wins density
            // ties), so its denser set may have shrunk.
            invalidated.push(r);
        }
        invalidated.extend(old_peak);

        let new_peak = DensityOrder::with_tie_break(&self.rho, tie).global_peak();
        invalidated.extend(new_peak);

        self.stats.affected_points += affected.len() as u64;
        // The only possible entrant for points outside the invalidation set
        // is the renamed point: with its new, smaller id it wins density
        // ties it previously lost.
        let candidates: Vec<PointId> = if moved.is_some() { vec![r] } else { vec![] };
        self.repair_deltas(invalidated, &candidates);
        self.peak = new_peak;
        Ok(())
    }

    /// Re-runs centre selection + assignment on the maintained `(ρ, δ, µ)`
    /// and diffs the stable labelling against the previous epoch.
    ///
    /// On error (e.g. a centre-selection rule that no point satisfies this
    /// epoch) the density state remains exact, but the stored clustering
    /// still describes the previous epoch.
    fn recluster(&mut self) -> Result<ClusterDelta> {
        let n = self.len();
        let (clustering, new_assignment) = if n == 0 {
            (Clustering::new(vec![], vec![], vec![]), BTreeMap::new())
        } else {
            let graph = DecisionGraph::new(self.rho.clone(), &self.deltas)?;
            let centers = graph.select_centers(&self.params.dpc.centers)?;
            let order = DensityOrder::with_tie_break(&self.rho, self.params.dpc.tie_break);
            let clustering = assign_clusters(
                self.index.dataset(),
                &order,
                &self.deltas,
                &centers,
                self.params.dpc.dc,
                &self.params.dpc.assignment,
            )?;
            let mut assignment = BTreeMap::new();
            for p in 0..n {
                let center = clustering.centers()[clustering.label(p)];
                assignment.insert(self.handles.handle_at(p), self.handles.handle_at(center));
            }
            (clustering, assignment)
        };

        self.epoch += 1;
        self.stats.epochs += 1;
        let delta = diff_assignments(self.epoch, &self.assignment, &new_assignment);
        self.assignment = new_assignment;
        self.clustering = clustering;
        Ok(delta)
    }
}

/// Diffs two stable (point handle → centre handle) assignments.
fn diff_assignments(
    epoch: u64,
    old: &BTreeMap<Handle, Handle>,
    new: &BTreeMap<Handle, Handle>,
) -> ClusterDelta {
    let old_centers: std::collections::BTreeSet<Handle> = old.values().copied().collect();
    let new_centers: std::collections::BTreeSet<Handle> = new.values().copied().collect();
    let births = new_centers.difference(&old_centers).copied().collect();
    let deaths = old_centers.difference(&new_centers).copied().collect();

    let mut changed = Vec::new();
    // Both maps iterate in ascending handle order; a classic merge collects
    // every handle present in either.
    let mut old_iter = old.iter().peekable();
    let mut new_iter = new.iter().peekable();
    loop {
        match (old_iter.peek(), new_iter.peek()) {
            (Some(&(&ho, &co)), Some(&(&hn, &cn))) => {
                if ho < hn {
                    changed.push(LabelChange {
                        handle: ho,
                        old: Some(co),
                        new: None,
                    });
                    old_iter.next();
                } else if hn < ho {
                    changed.push(LabelChange {
                        handle: hn,
                        old: None,
                        new: Some(cn),
                    });
                    new_iter.next();
                } else {
                    if co != cn {
                        changed.push(LabelChange {
                            handle: ho,
                            old: Some(co),
                            new: Some(cn),
                        });
                    }
                    old_iter.next();
                    new_iter.next();
                }
            }
            (Some(&(&ho, &co)), None) => {
                changed.push(LabelChange {
                    handle: ho,
                    old: Some(co),
                    new: None,
                });
                old_iter.next();
            }
            (None, Some(&(&hn, &cn))) => {
                changed.push(LabelChange {
                    handle: hn,
                    old: None,
                    new: Some(cn),
                });
                new_iter.next();
            }
            (None, None) => break,
        }
    }

    ClusterDelta {
        epoch,
        num_clusters: new_centers.len(),
        births,
        deaths,
        changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::naive_reference::NaiveReferenceIndex;
    use dpc_core::{CenterSelection, Dataset, DpcIndex};

    fn two_blob_engine() -> StreamingDpc<NaiveReferenceIndex> {
        let seed = Dataset::from_coords(vec![
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (5.0, 5.0),
            (5.1, 5.0),
            (5.0, 5.1),
        ]);
        let params = StreamParams::new(0.5)
            .with_dpc(DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 }));
        StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap()
    }

    #[test]
    fn seeding_matches_the_batch_pipeline() {
        let engine = two_blob_engine();
        assert_eq!(engine.len(), 6);
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.clustering().num_clusters(), 2);
        assert_eq!(engine.clustering().label(0), engine.clustering().label(1));
        assert_ne!(engine.clustering().label(0), engine.clustering().label(3));
    }

    #[test]
    fn insert_emits_a_delta_with_the_new_point() {
        let mut engine = two_blob_engine();
        let (h, delta) = engine.insert(Point::new(0.05, 0.05)).unwrap();
        assert_eq!(engine.len(), 7);
        assert_eq!(delta.insertions(), 1);
        assert_eq!(delta.epoch, 1);
        assert_eq!(engine.point_of(h), Some(Point::new(0.05, 0.05)));
        // The new point joined the origin blob.
        let id = engine.dense_of(h).unwrap();
        assert_eq!(engine.clustering().label(id), engine.clustering().label(0));
    }

    #[test]
    fn remove_emits_a_delta_and_invalidates_the_handle() {
        let mut engine = two_blob_engine();
        let victim = engine.handle_at(1);
        let delta = engine.remove(victim).unwrap();
        assert_eq!(engine.len(), 5);
        assert_eq!(delta.evictions(), 1);
        assert_eq!(engine.dense_of(victim), None);
        assert!(engine.remove(victim).is_err());
    }

    #[test]
    fn advance_slides_the_window_in_one_epoch() {
        let mut engine = two_blob_engine();
        let (hs, delta) = engine
            .advance(&[Point::new(5.05, 5.05), Point::new(0.05, 0.0)], 2)
            .unwrap();
        assert_eq!(hs.len(), 2);
        assert_eq!(engine.len(), 6);
        assert_eq!(delta.insertions(), 2);
        assert_eq!(delta.evictions(), 2);
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.stats().updates, 4);
    }

    #[test]
    fn draining_the_window_to_empty_and_refilling_works() {
        // The automatic γ-gap selection adapts to any window size; a fixed
        // top-k would (correctly) error once fewer than k points remain.
        let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (5.1, 5.0)]);
        let mut engine =
            StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
        while let Some(h) = engine.oldest() {
            engine.remove(h).unwrap();
        }
        assert!(engine.is_empty());
        assert_eq!(engine.clustering().num_clusters(), 0);
        let (_, delta) = engine.insert(Point::new(1.0, 1.0)).unwrap();
        assert_eq!(delta.births.len(), 1);
        assert_eq!(engine.clustering().num_clusters(), 1);
    }

    #[test]
    fn forced_fallback_still_produces_exact_state() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0), (5.1, 5.0)]);
        let params = StreamParams::new(0.5)
            .with_dpc(DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 }))
            .with_max_affected_fraction(0.0);
        let mut engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap();
        engine.insert(Point::new(0.05, 0.0)).unwrap();
        engine.remove(engine.handle_at(0)).unwrap();
        assert_eq!(engine.stats().fallback_updates, 2);
        assert_eq!(engine.stats().incremental_updates, 0);
        // Exactness: compare against a cold batch run.
        let batch = NaiveReferenceIndex::build(engine.index().dataset());
        let (rho, deltas) = batch.rho_delta(0.5).unwrap();
        assert_eq!(engine.rho(), &rho[..]);
        assert_eq!(engine.deltas(), &deltas);
    }

    #[test]
    fn mismatched_tie_break_is_rejected() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0)]);
        let index =
            NaiveReferenceIndex::build_with_tie_break(&seed, dpc_core::TieBreak::LargerIdDenser);
        assert!(StreamingDpc::new(index, StreamParams::new(0.5)).is_err());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let seed = Dataset::from_coords(vec![(0.0, 0.0)]);
        let index = NaiveReferenceIndex::build(&seed);
        assert!(StreamingDpc::new(index.clone(), StreamParams::new(-1.0)).is_err());
        assert!(StreamingDpc::new(
            index,
            StreamParams::new(1.0).with_max_affected_fraction(f64::NAN)
        )
        .is_err());
    }

    #[test]
    fn stats_accumulate_over_updates() {
        let mut engine = two_blob_engine();
        engine.insert(Point::new(0.05, 0.0)).unwrap();
        engine.insert(Point::new(5.05, 5.0)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.epochs, 2);
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.incremental_updates + stats.fallback_updates, 2);
        assert!(stats.affected_points >= 2);
    }
}
