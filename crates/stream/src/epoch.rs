//! The epoch batch accumulator: [`EpochPlan`].
//!
//! An *epoch* is one clustering step of the streaming engine. The per-update
//! entry points ([`StreamingDpc::insert`](crate::StreamingDpc::insert),
//! [`StreamingDpc::remove`](crate::StreamingDpc::remove)) run an epoch of one
//! mutation each; an `EpochPlan` collects an arbitrary mix of inserts and
//! removals so the engine can pay the expensive maintenance — the union
//! ε-neighbourhood ρ repair, the δ/µ invalidation repair, centre selection
//! and assignment — **once for the whole batch** (see
//! [`StreamingDpc::commit`](crate::StreamingDpc::commit) and
//! `docs/STREAMING.md` for the pipeline).
//!
//! Ops execute in submission order, and the committed state is bit-identical
//! to applying the same ops one at a time — batching changes the cost, never
//! the result. A point inserted by the plan can also be removed by the same
//! plan ([`EpochPlan::remove_planned`]): it is *ephemeral* — it exists for
//! the ops between its insert and its removal, contributes nothing to the
//! epoch's final state, and its handle is already dead when `commit`
//! returns.
//!
//! ```
//! use dpc_core::naive_reference::NaiveReferenceIndex;
//! use dpc_core::{Dataset, Point};
//! use dpc_stream::{EpochPlan, StreamParams, StreamingDpc};
//!
//! let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.0), (5.0, 5.0)]);
//! let mut engine =
//!     StreamingDpc::new(NaiveReferenceIndex::build(&seed), StreamParams::new(0.5)).unwrap();
//!
//! let mut plan = EpochPlan::new();
//! plan.insert(Point::new(5.1, 5.0)); // a point joining the far blob
//! plan.remove(engine.oldest().unwrap()); // expire the oldest point
//! let flash = plan.insert(Point::new(9.0, 9.0)); // inserted ...
//! plan.remove_planned(flash); // ... and expired within the same epoch
//!
//! let (handles, delta) = engine.commit(&plan).unwrap();
//! assert_eq!(handles.len(), 2); // one handle per planned insert
//! assert_eq!(engine.point_of(handles[0]), Some(Point::new(5.1, 5.0))); // survived
//! assert_eq!(engine.dense_of(handles[1]), None); // ephemeral: already gone
//! assert_eq!(delta.epoch, 1); // the whole plan was one clustering epoch
//! ```

use dpc_core::Point;

use crate::handle::Handle;

/// A token for a point inserted by an [`EpochPlan`], usable to expire that
/// point within the same plan ([`EpochPlan::remove_planned`]) before its
/// [`Handle`] exists.
///
/// Tokens are only meaningful for the plan that issued them; committing a
/// plan holding a foreign token is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedInsert(pub(crate) usize);

impl PlannedInsert {
    /// The insert's position among the plan's inserts (0-based) — also the
    /// index of its [`Handle`] in the vector
    /// [`commit`](crate::StreamingDpc::commit) returns.
    pub fn ordinal(&self) -> usize {
        self.0
    }
}

/// One queued mutation of a plan, in submission order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PlanOp {
    /// Insert this point; the payload is its insert ordinal (0-based count of
    /// earlier inserts in the same plan), used to pair it with its handle.
    Insert(Point, usize),
    /// Expire a point that predates the plan, addressed by its stable handle.
    Remove(Handle),
    /// Expire the plan's own `n`-th planned insert (an *ephemeral* point).
    RemovePlanned(usize),
}

/// An ordered batch of inserts and expiries to be applied as **one**
/// clustering epoch by [`StreamingDpc::commit`](crate::StreamingDpc::commit).
///
/// See the [module docs](self) for semantics and a worked example. Plans are
/// plain data: building one performs no validation and touches no engine —
/// all checking happens up front in `commit`, *before* any mutation, so a
/// rejected plan leaves the engine untouched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochPlan {
    pub(crate) ops: Vec<PlanOp>,
    /// Number of `Insert` ops queued so far (the next insert ordinal).
    inserts: usize,
}

impl EpochPlan {
    /// An empty plan. Committing it is a no-op (no epoch, no version bump).
    pub fn new() -> Self {
        EpochPlan::default()
    }

    /// Queues a point insertion and returns its token.
    pub fn insert(&mut self, p: Point) -> PlannedInsert {
        let token = PlannedInsert(self.inserts);
        self.ops.push(PlanOp::Insert(p, self.inserts));
        self.inserts += 1;
        token
    }

    /// Queues the expiry of a pre-existing point by handle.
    ///
    /// The handle must be live when the plan is committed and may appear at
    /// most once per plan; `commit` rejects the whole plan otherwise.
    pub fn remove(&mut self, handle: Handle) {
        self.ops.push(PlanOp::Remove(handle));
    }

    /// Queues the expiry of a point inserted *by this plan* — the point is
    /// ephemeral: visible to ops between its insert and this removal, absent
    /// from the committed epoch.
    pub fn remove_planned(&mut self, token: PlannedInsert) {
        self.ops.push(PlanOp::RemovePlanned(token.0));
    }

    /// Number of queued ops (inserts and removals).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no op is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of queued inserts (and therefore of handles `commit` returns).
    pub fn insert_count(&self) -> usize {
        self.inserts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_records_ops_in_submission_order() {
        let mut plan = EpochPlan::new();
        let a = plan.insert(Point::new(1.0, 2.0));
        plan.remove(Handle(7));
        let b = plan.insert(Point::new(3.0, 4.0));
        plan.remove_planned(a);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.insert_count(), 2);
        assert_ne!(a, b);
        assert_eq!(
            plan.ops,
            vec![
                PlanOp::Insert(Point::new(1.0, 2.0), 0),
                PlanOp::Remove(Handle(7)),
                PlanOp::Insert(Point::new(3.0, 4.0), 1),
                PlanOp::RemovePlanned(0),
            ]
        );
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = EpochPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.insert_count(), 0);
    }
}
