//! Stable point handles over a swap-remove dataset.
//!
//! [`Dataset`](dpc_core::Dataset) ids are *dense*: removing a point renames
//! the last point into the hole. A stream client cannot work with ids that
//! change under its feet, so the engine hands out [`Handle`]s — u64 tickets
//! that stay valid for the lifetime of their point — and the [`HandleMap`]
//! keeps the two id spaces in sync with O(log n) bookkeeping per mutation.

use std::collections::BTreeMap;

use dpc_core::PointId;

/// A stable identifier of a streamed point.
///
/// Handles are allocated in insertion order and never reused, so comparing
/// two handles also compares the arrival order of their points — the
/// sliding-window eviction of the engine exploits exactly that (the oldest
/// live point is the smallest live handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle(pub u64);

impl std::fmt::Display for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Bidirectional map between stable [`Handle`]s and dense [`PointId`]s,
/// mirroring a dataset mutated through push/swap-remove.
#[derive(Debug, Clone, Default)]
pub struct HandleMap {
    /// `dense_to_handle[id]` is the handle of the point currently at `id`.
    dense_to_handle: Vec<Handle>,
    /// Inverse map; a BTreeMap so [`oldest`](HandleMap::oldest) is O(log n).
    handle_to_dense: BTreeMap<Handle, PointId>,
    next: u64,
}

impl HandleMap {
    /// An empty map.
    pub fn new() -> Self {
        HandleMap::default()
    }

    /// A map for a pre-existing dataset of `n` points: ids `0..n` get the
    /// first `n` handles in order.
    pub fn with_dense_len(n: usize) -> Self {
        let mut map = HandleMap::new();
        for _ in 0..n {
            map.push();
        }
        map
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.dense_to_handle.len()
    }

    /// True when no point is tracked.
    pub fn is_empty(&self) -> bool {
        self.dense_to_handle.is_empty()
    }

    /// Registers a new point at dense id `len()` and returns its handle.
    pub fn push(&mut self) -> Handle {
        let handle = Handle(self.next);
        self.next += 1;
        self.handle_to_dense
            .insert(handle, self.dense_to_handle.len());
        self.dense_to_handle.push(handle);
        handle
    }

    /// Mirrors `Dataset::swap_remove(id)`: forgets the handle at `id` and
    /// moves the last handle into its slot. Returns the removed handle.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn swap_remove(&mut self, id: PointId) -> Handle {
        let removed = self.dense_to_handle.swap_remove(id);
        self.handle_to_dense.remove(&removed);
        if let Some(&moved) = self.dense_to_handle.get(id) {
            self.handle_to_dense.insert(moved, id);
        }
        removed
    }

    /// The handle of the point currently at dense id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn handle_at(&self, id: PointId) -> Handle {
        self.dense_to_handle[id]
    }

    /// The dense id currently behind `handle`, or `None` when the point was
    /// removed (or never existed).
    pub fn dense_of(&self, handle: Handle) -> Option<PointId> {
        self.handle_to_dense.get(&handle).copied()
    }

    /// The oldest live handle (smallest), or `None` when empty.
    pub fn oldest(&self) -> Option<Handle> {
        self.handle_to_dense.keys().next().copied()
    }

    /// All live handles in ascending (arrival) order.
    pub fn live(&self) -> impl Iterator<Item = Handle> + '_ {
        self.handle_to_dense.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_allocates_monotonic_handles() {
        let mut m = HandleMap::new();
        assert!(m.is_empty());
        let a = m.push();
        let b = m.push();
        assert!(a < b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.handle_at(0), a);
        assert_eq!(m.dense_of(b), Some(1));
        assert_eq!(m.oldest(), Some(a));
    }

    #[test]
    fn swap_remove_moves_last_handle_into_hole() {
        let mut m = HandleMap::with_dense_len(4);
        let (h0, h1, h3) = (m.handle_at(0), m.handle_at(1), m.handle_at(3));
        let removed = m.swap_remove(1);
        assert_eq!(removed, h1);
        assert_eq!(m.len(), 3);
        assert_eq!(m.handle_at(1), h3);
        assert_eq!(m.dense_of(h3), Some(1));
        assert_eq!(m.dense_of(h1), None);
        assert_eq!(m.oldest(), Some(h0));
    }

    #[test]
    fn handles_are_never_reused() {
        let mut m = HandleMap::new();
        let a = m.push();
        m.swap_remove(0);
        let b = m.push();
        assert_ne!(a, b);
        assert!(b > a);
        assert_eq!(m.dense_of(a), None);
        assert_eq!(m.dense_of(b), Some(0));
    }

    #[test]
    fn removing_the_last_point_moves_nothing() {
        let mut m = HandleMap::with_dense_len(2);
        let h0 = m.handle_at(0);
        m.swap_remove(1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.handle_at(0), h0);
        m.swap_remove(0);
        assert!(m.is_empty());
        assert_eq!(m.oldest(), None);
    }

    #[test]
    fn live_iterates_in_arrival_order() {
        let mut m = HandleMap::with_dense_len(5);
        m.swap_remove(0); // removes handle 0; handle 4 moves to id 0
        m.swap_remove(2); // removes handle 2; handle 3 moves to id 2
        let live: Vec<u64> = m.live().map(|h| h.0).collect();
        assert_eq!(live, vec![1, 3, 4]);
    }
}
