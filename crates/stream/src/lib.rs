//! # dpc-stream
//!
//! **Streaming Density Peak Clustering**: an online engine that keeps an
//! exact DPC clustering over a mutable window of points — inserts, evictions
//! and sliding-window advances — without ever rebuilding the index or
//! re-running the full ρ/δ queries.
//!
//! The batch pipeline of this workspace computes, for every point, the local
//! density `ρ` (neighbours within `dc`) and the dependent distance `δ`
//! (distance to the nearest denser point), then selects peaks and assigns
//! clusters. The paper's indexes make those queries fast *once*; this crate
//! makes them cheap *per epoch* by exploiting the same locality the indexes
//! use for pruning:
//!
//! * an epoch of inserts and expiries changes `ρ` only inside the **union**
//!   of the mutations' ε-neighbourhoods — each neighbourhood found with the
//!   index's own range query
//!   ([`dpc_core::UpdatableIndex::eps_neighbors`]), deduplicated through a
//!   visited bitmap, and adjusted by ±w(d) per mutation (±1 under the
//!   default cutoff kernel; any truncated [`dpc_core::Kernel`] works,
//!   because kernel support never leaves the `dc`-ball the index prunes
//!   by);
//! * `δ`/`µ` need full recomputation only for a bounded *invalidation set*
//!   (points whose own rank changed, whose dependent neighbour was touched,
//!   and the global peak), repaired **once per epoch**; every other point
//!   folds the few candidate entrants into its existing minimum with one
//!   distance comparison each.
//!
//! Batching is a cost model, never a semantics change: committing a batch is
//! **bit-identical** to applying its updates one at a time, and both are
//! bit-identical to a cold batch run over the surviving points — that is not
//! an aspiration but the invariant enforced by this crate's property suite,
//! for every updatable index, at batch sizes {1, 7, 64}, at multiple thread
//! counts (the maintenance passes run on the chunked parallel executor of
//! [`dpc_core::exec`]).
//!
//! ```
//! use dpc_core::naive_reference::NaiveReferenceIndex;
//! use dpc_core::{Dataset, Point};
//! use dpc_stream::{StreamParams, StreamingDpc};
//!
//! let seed = Dataset::from_coords(vec![(0.0, 0.0), (0.1, 0.1), (4.0, 4.0), (4.1, 4.1)]);
//! let index = NaiveReferenceIndex::build(&seed);
//! let mut engine = StreamingDpc::new(index, StreamParams::new(0.5)).unwrap();
//!
//! // Slide the window: two check-ins arrive, the two oldest expire — one
//! // epoch, one ρ repair pass, one δ repair pass, one clustering.
//! let (handles, delta) = engine
//!     .advance(&[Point::new(4.05, 4.0), Point::new(0.05, 0.0)], 2)
//!     .unwrap();
//! assert_eq!(handles.len(), 2);
//! assert_eq!(delta.insertions(), 2);
//! assert_eq!(delta.evictions(), 2);
//! ```
//!
//! Incremental repair is not always the cheapest way to commit an epoch:
//! large batches invalidate most of the window, where one bulk index
//! rebuild plus the batch queries wins. The [`CommitPolicy`] on
//! [`StreamParams`] picks the maintenance path per epoch — always
//! incremental (default), always rebuild, or adaptively via a calibrated
//! cost model ([`policy`]) — without ever changing results.
//!
//! See [`engine`] for the epoch pipeline, [`epoch`] for the [`EpochPlan`]
//! batch accumulator, [`handle`] for the stable point handles that survive
//! the dataset's swap-remove id churn, [`policy`] for the commit policy and
//! cost model, and [`report`] for the per-epoch [`ClusterDelta`]. The full
//! internals contract — affected sets, the δ invalidation taxonomy,
//! swap-remove semantics, a worked epoch example — lives in
//! `docs/STREAMING.md` at the repository root.
//!
//! For concurrent serving, [`snapshot`] freezes each committed epoch as an
//! immutable [`EpochSnapshot`] and publishes it through a [`SnapshotSink`]
//! attached with [`StreamingDpc::set_snapshot_sink`]; the `dpc-serve` crate
//! builds the single-writer/many-reader layer on top (see
//! `docs/SERVING.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod epoch;
pub mod handle;
pub mod maintenance;
pub mod policy;
pub mod report;
pub mod snapshot;

pub use engine::{aged_weight, decay_factor, StreamParams, StreamStats, StreamingDpc};
pub use epoch::{EpochPlan, PlannedInsert};
pub use handle::{Handle, HandleMap};
pub use policy::{CommitPolicy, CostModel, EpochMode, Prediction};
pub use report::{ClusterDelta, LabelChange};
pub use snapshot::{EpochSnapshot, SnapshotSink};
