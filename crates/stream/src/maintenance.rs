//! The δ/µ maintenance kernels of the streaming engine.
//!
//! After an insert or delete, the engine splits δ/µ repair into two passes,
//! both parallelised over the chunked executor of [`dpc_core::exec`] (so
//! results are bit-identical at every thread count):
//!
//! * a **full recomputation** of the bounded *invalidation set* `F` — points
//!   whose set of denser neighbours may have *shrunk* (their own ρ changed,
//!   their µ was removed or demoted, the global peak) — each recomputed from
//!   scratch by [`delta_point`];
//! * a **candidate min-update pass** over everything else: for points
//!   outside `F` the denser set can only have *gained* members (the inserted
//!   point, neighbours whose ρ rose, a point renamed to a smaller id), so
//!   the existing `(δ, µ)` stays a valid minimum and only the handful of
//!   candidate entrants need to be folded in ([`candidate_pass`]).
//!
//! ## Tie-breaking
//!
//! Everything here resolves equidistant candidates towards the smaller id,
//! the workspace-wide convention (`delta_one` in `dpc-tree-index`, the
//! brute-force kernels in `dpc-baseline`, `NaiveReferenceIndex`). The full
//! recomputation minimises over *squared* distances and takes one square
//! root at the end — exactly like the baseline kernels; IEEE-754 `sqrt` is
//! correctly rounded and monotone, so the value is bit-identical to
//! minimising/maximising true distances.

use dpc_core::{exec, Dataset, DeltaResult, DensityOrder, ExecPolicy, PointId};

/// δ and µ of a single point by exhaustive scan under the given density
/// order: the lexicographic `(distance, id)` minimum over all denser points,
/// or the global-peak convention (max distance to any point, `µ = None`)
/// when no denser point exists.
pub fn delta_point(
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    p: PointId,
) -> (f64, Option<PointId>) {
    let (xs, ys) = dataset.coord_slices();
    let (xp, yp) = (xs[p], ys[p]);
    let n = dataset.len();
    let mut best_sq = f64::INFINITY;
    let mut best_q = None;
    let mut max_sq = 0.0f64;
    for q in 0..n {
        if q == p {
            continue;
        }
        let (dx, dy) = (xs[q] - xp, ys[q] - yp);
        let d2 = dx * dx + dy * dy;
        max_sq = max_sq.max(d2);
        if d2 < best_sq && order.is_denser(q, p) {
            best_sq = d2;
            best_q = Some(q);
        }
    }
    match best_q {
        Some(q) => (best_sq.sqrt(), Some(q)),
        None => (max_sq.sqrt(), None),
    }
}

/// Recomputes δ/µ from scratch for every point in `targets`, in parallel,
/// and scatters the results into `deltas`.
pub fn recompute_targets(
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    targets: &[PointId],
    deltas: &mut DeltaResult,
    policy: ExecPolicy,
) {
    let mut out: Vec<(f64, Option<PointId>)> = vec![(0.0, None); targets.len()];
    exec::fill_slice(
        &mut out,
        policy,
        || (),
        |k, ()| delta_point(dataset, order, targets[k]),
    );
    for (k, &p) in targets.iter().enumerate() {
        deltas.delta[p] = out[k].0;
        deltas.mu[p] = out[k].1;
    }
}

/// Recomputes δ/µ from scratch for *every* point, in parallel — the
/// documented fallback when the invalidation set exceeds the configured
/// fraction of the window and incremental repair would not pay off.
pub fn recompute_all(
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    deltas: &mut DeltaResult,
    policy: ExecPolicy,
) {
    exec::fill_slice_pair(
        &mut deltas.delta,
        &mut deltas.mu,
        policy,
        || (),
        |p, delta_slot, mu_slot, ()| {
            let (d, mu) = delta_point(dataset, order, p);
            *delta_slot = d;
            *mu_slot = mu;
        },
    );
}

/// Folds a small set of *candidate entrants* into the δ/µ of every point
/// outside the invalidation set.
///
/// For a point `p` with `skip[p] == false`, the existing `(δ(p), µ(p))` is
/// the valid lexicographic minimum over `p`'s previous denser set, and
/// `candidates` is a superset of the points that may have *entered* that set
/// (an entrant that was already denser folds in as a no-op: it can never
/// beat a minimum that already accounted for it). Each candidate `c` that is
/// denser than `p` under the *new* order is min-folded with the workspace
/// tie rule: strictly smaller distance wins, equal distance goes to the
/// smaller id.
///
/// The comparison happens in **squared**-distance space, like
/// [`delta_point`] and the batch kernels: two squared distances one ulp
/// apart can round to the same square root, and comparing the rounded values
/// would let an id tie-break fire where the batch run sees a strict
/// inequality. The incumbent's squared distance is recomputed from the
/// coordinates of `µ(p)` (exact — it is the value `delta_point` minimised
/// before taking the root). A point whose `µ` is `None` (the global peak,
/// carrying the max-distance sentinel rather than a minimum) must be masked
/// out via `skip`; the engine always recomputes peaks from scratch.
pub fn candidate_pass(
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    candidates: &[PointId],
    skip: &[bool],
    deltas: &mut DeltaResult,
    policy: ExecPolicy,
) {
    if candidates.is_empty() {
        return;
    }
    let pts = dataset.points();
    exec::fill_slice_pair(
        &mut deltas.delta,
        &mut deltas.mu,
        policy,
        || (),
        |p, delta_slot, mu_slot, ()| {
            if skip[p] {
                return;
            }
            for &c in candidates {
                if !order.is_denser(c, p) {
                    continue;
                }
                let d2 = pts[c].distance_squared(&pts[p]);
                let wins = match *mu_slot {
                    Some(b) => {
                        let incumbent_sq = pts[b].distance_squared(&pts[p]);
                        d2 < incumbent_sq || (d2 == incumbent_sq && c < b)
                    }
                    // Unset (δ = ∞): any denser candidate wins. Peaks carry
                    // a sentinel δ instead and must be masked (see above).
                    None => true,
                };
                if wins {
                    *delta_slot = d2.sqrt();
                    *mu_slot = Some(c);
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_core::naive_reference::NaiveReferenceIndex;
    use dpc_core::DpcIndex;

    fn dataset() -> Dataset {
        Dataset::from_coords(vec![
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (5.0, 5.0),
            (5.1, 5.0),
            (2.5, 2.5),
        ])
    }

    #[test]
    fn delta_point_matches_reference_for_every_point() {
        let data = dataset();
        let (rho, expected) = NaiveReferenceIndex::build(&data).rho_delta(0.3).unwrap();
        let order = DensityOrder::new(&rho);
        for p in 0..data.len() {
            let (d, mu) = delta_point(&data, &order, p);
            assert_eq!(d, expected.delta[p], "delta of {p}");
            assert_eq!(mu, expected.mu[p], "mu of {p}");
        }
    }

    #[test]
    fn recompute_all_matches_reference_at_several_thread_counts() {
        let data = dataset();
        let (rho, expected) = NaiveReferenceIndex::build(&data).rho_delta(0.3).unwrap();
        let order = DensityOrder::new(&rho);
        for threads in [1usize, 3, 8] {
            let mut deltas = DeltaResult::unset(data.len());
            recompute_all(&data, &order, &mut deltas, ExecPolicy::Threads(threads));
            assert_eq!(deltas, expected, "threads = {threads}");
        }
    }

    #[test]
    fn recompute_targets_only_touches_targets() {
        let data = dataset();
        let (rho, expected) = NaiveReferenceIndex::build(&data).rho_delta(0.3).unwrap();
        let order = DensityOrder::new(&rho);
        let mut deltas = DeltaResult::unset(data.len());
        recompute_targets(&data, &order, &[1, 4], &mut deltas, ExecPolicy::Sequential);
        assert_eq!(deltas.delta[1], expected.delta[1]);
        assert_eq!(deltas.mu[4], expected.mu[4]);
        // Non-targets keep their previous (here: unset) state.
        assert_eq!(deltas.delta[0], f64::INFINITY);
        assert_eq!(deltas.mu[0], None);
    }

    #[test]
    fn candidate_pass_prefers_smaller_id_on_exact_distance_ties() {
        // p at the origin; candidates 0 and 1 are coincident and both denser.
        let data = Dataset::from_coords(vec![(1.0, 0.0), (1.0, 0.0), (0.0, 0.0)]);
        let rho = vec![5.0, 5.0, 0.0];
        let order = DensityOrder::new(&rho);
        let mut deltas = DeltaResult::unset(3);
        deltas.delta[2] = f64::INFINITY;
        // Feed the larger id first: the smaller id must still win the tie.
        candidate_pass(
            &data,
            &order,
            &[1, 0],
            &[true, true, false],
            &mut deltas,
            ExecPolicy::Sequential,
        );
        assert_eq!(deltas.delta[2], 1.0);
        assert_eq!(deltas.mu[2], Some(0));
    }

    #[test]
    fn candidate_pass_skips_masked_points_and_non_denser_candidates() {
        let data = Dataset::from_coords(vec![(0.0, 0.0), (1.0, 0.0)]);
        let rho = vec![3.0, 1.0];
        let order = DensityOrder::new(&rho);
        let mut deltas = DeltaResult::unset(2);
        // Candidate 1 is sparser than point 0: no update. Point 1 is masked.
        candidate_pass(
            &data,
            &order,
            &[1],
            &[false, true],
            &mut deltas,
            ExecPolicy::Sequential,
        );
        assert_eq!(deltas.mu[0], None);
        assert_eq!(deltas.mu[1], None);

        // Candidate 0 *is* denser than point 1 and must fold in.
        candidate_pass(
            &data,
            &order,
            &[0],
            &[true, false],
            &mut deltas,
            ExecPolicy::Sequential,
        );
        assert_eq!(deltas.mu[1], Some(0));
        assert_eq!(deltas.delta[1], 1.0);
    }

    #[test]
    fn delta_point_peak_sentinel_is_max_distance() {
        let data = Dataset::from_coords(vec![(0.0, 0.0), (3.0, 4.0)]);
        let rho = vec![1.0, 1.0];
        let order = DensityOrder::new(&rho);
        let (d, mu) = delta_point(&data, &order, 0);
        assert_eq!(mu, None);
        assert_eq!(d, 5.0);
        let (d1, mu1) = delta_point(&data, &order, 1);
        assert_eq!(mu1, Some(0));
        assert_eq!(d1, 5.0);
    }
}
