//! The per-epoch commit policy of the streaming engine: [`CommitPolicy`]
//! and the calibrated [`CostModel`] behind its adaptive variant.
//!
//! `BENCH_stream.json` records an honest performance cliff: at batch size 1
//! incremental maintenance beats rebuilding the index per epoch by 3–9×, but
//! at batch 64 every epoch trips the `max_affected_fraction` fallback — a
//! brute-force full δ/µ recomputation — and a fresh bulk rebuild plus the
//! index's *pruned* batch queries wins by the same margin. Neither fixed
//! choice is right at every batch size, so the engine chooses **per epoch**:
//!
//! * [`CommitPolicy::AlwaysIncremental`] — the affected-set repair pipeline
//!   (with its documented fallback), the pre-policy behaviour and still the
//!   default;
//! * [`CommitPolicy::AlwaysRebuild`] — bulk-load the final window
//!   ([`UpdatableIndex::rebuild_from`](dpc_core::UpdatableIndex::rebuild_from))
//!   and re-run the batch ρ/δ queries every epoch;
//! * [`CommitPolicy::Adaptive`] — predict both costs with a [`CostModel`]
//!   **before mutating anything** and take the cheaper path.
//!
//! The model keeps three per-engine EWMA estimates: the incremental cost per
//! invalidated point, the rebuild cost per window point, and the measured
//! invalidation-set size per plan operation. All three are seeded by a
//! one-shot calibration inside `StreamingDpc::new` — the seeding batch query
//! is timed for the rebuild rate, a handful of brute-force δ probes for the
//! incremental rate, and the mean ρ for the union prior — and then updated
//! online from observed epoch timings, so the model tracks the actual window
//! size, point distribution and machine. Whichever path is taken, the
//! committed state is **bit-identical** (both paths are anchored to the cold
//! batch oracle), so a misprediction costs time, never correctness.

use dpc_core::{DpcError, Result};

/// How [`StreamingDpc::commit`](crate::StreamingDpc::commit) maintains the
/// clustering each epoch. See the [module docs](self) for the trade-off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CommitPolicy {
    /// Always repair incrementally (affected-set ρ repair + bounded δ/µ
    /// recompute, falling back to a full δ/µ recomputation past
    /// `max_affected_fraction`). The default, and the pre-policy behaviour.
    #[default]
    AlwaysIncremental,
    /// Always bulk-rebuild the index over the epoch's final window and
    /// re-run the batch ρ/δ queries.
    AlwaysRebuild,
    /// Predict both costs with the calibrated [`CostModel`] before mutating
    /// and take the cheaper path.
    Adaptive,
}

impl CommitPolicy {
    /// The policy's stable name (CLI value and report field).
    pub fn name(self) -> &'static str {
        match self {
            CommitPolicy::AlwaysIncremental => "incremental",
            CommitPolicy::AlwaysRebuild => "rebuild",
            CommitPolicy::Adaptive => "adaptive",
        }
    }

    /// Parses a CLI policy name.
    pub fn parse(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "incremental" | "inc" => Ok(CommitPolicy::AlwaysIncremental),
            "rebuild" => Ok(CommitPolicy::AlwaysRebuild),
            "adaptive" | "auto" => Ok(CommitPolicy::Adaptive),
            other => Err(DpcError::invalid_parameter(
                "policy",
                format!("unknown commit policy {other:?} (valid: incremental, rebuild, adaptive)"),
            )),
        }
    }
}

/// What one committed epoch actually did — recorded in
/// [`StreamStats::last_epoch_mode`](crate::StreamStats::last_epoch_mode) so
/// the policy's choices are observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// Affected-set repair: candidate fold + bounded δ/µ recompute.
    Incremental,
    /// Incremental path, but the invalidation set exceeded
    /// `max_affected_fraction` and δ/µ were recomputed for every point.
    Fallback,
    /// Bulk index rebuild + batch ρ/δ queries over the final window.
    Rebuild,
    /// A pure decay tick ([`StreamingDpc::tick`](crate::StreamingDpc::tick)):
    /// no window mutation, one scalar ρ aging pass plus a full δ/µ re-rank,
    /// zero ε-queries.
    Decay,
}

impl EpochMode {
    /// The mode's stable name (log lines and report fields).
    pub fn name(self) -> &'static str {
        match self {
            EpochMode::Incremental => "incremental",
            EpochMode::Fallback => "fallback",
            EpochMode::Rebuild => "rebuild",
            EpochMode::Decay => "decay",
        }
    }
}

/// The adaptive policy's verdict for one epoch, computed **before** any
/// mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted invalidation-set size |F| (clamped to the window).
    pub invalidated: f64,
    /// Predicted cost of the incremental path in µs (including its own
    /// fallback, when the predicted |F| exceeds the fallback threshold).
    pub incremental_us: f64,
    /// Predicted cost of the rebuild path in µs (after the configured bias).
    pub rebuild_us: f64,
    /// True when the rebuild path is predicted strictly cheaper.
    pub rebuild_wins: bool,
}

impl Prediction {
    /// Predicted cost of the winning path in µs.
    pub fn chosen_us(&self) -> f64 {
        if self.rebuild_wins {
            self.rebuild_us
        } else {
            self.incremental_us
        }
    }
}

/// Exponential moving average step.
fn ewma(alpha: f64, old: f64, sample: f64) -> f64 {
    old + alpha * (sample - old)
}

/// Floor for the per-point rate estimates: timers can observe 0 µs on tiny
/// windows, and a zero rate would pin one path as free forever.
const MIN_RATE_US: f64 = 1e-3;

/// Per-engine EWMA estimates of the two commit paths' costs, seeded by a
/// one-shot calibration and updated online from observed epoch timings. See
/// the [module docs](self) for how the estimates are obtained and used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// µs of incremental δ/µ repair per invalidated point. The fallback
    /// shares the same brute-force kernel, so it updates this rate too
    /// (with the whole window as the target set).
    inc_us_per_point: f64,
    /// µs of bulk rebuild + batch ρ/δ queries per window point.
    rebuild_us_per_point: f64,
    /// Measured invalidation-set size per plan operation.
    union_per_update: f64,
    /// EWMA smoothing factor α ∈ (0, 1].
    alpha: f64,
}

impl CostModel {
    /// Seeds the model from the one-shot calibration of
    /// `StreamingDpc::new`: the timed seeding batch query (`rebuild_us` per
    /// point), timed brute-force δ probes (`inc_us` per point) and the mean
    /// ρ plus one as the union prior (an update invalidates its
    /// ε-neighbourhood plus itself).
    pub fn seeded(
        rebuild_us_per_point: f64,
        inc_us_per_point: f64,
        union_per_update: f64,
        alpha: f64,
    ) -> Self {
        CostModel {
            inc_us_per_point: inc_us_per_point.max(MIN_RATE_US),
            rebuild_us_per_point: rebuild_us_per_point.max(MIN_RATE_US),
            union_per_update: union_per_update.max(1.0),
            alpha,
        }
    }

    /// Current µs-per-invalidated-point estimate of the incremental path.
    pub fn inc_us_per_point(&self) -> f64 {
        self.inc_us_per_point
    }

    /// Current µs-per-window-point estimate of the rebuild path.
    pub fn rebuild_us_per_point(&self) -> f64 {
        self.rebuild_us_per_point
    }

    /// Current invalidated-points-per-update estimate.
    pub fn union_per_update(&self) -> f64 {
        self.union_per_update
    }

    /// Folds in an observed incremental epoch: `invalidated` points repaired
    /// for `updates` plan ops in `micros` µs.
    pub fn observe_incremental(&mut self, invalidated: usize, updates: usize, micros: f64) {
        let per_point = micros / invalidated.max(1) as f64;
        self.inc_us_per_point = ewma(
            self.alpha,
            self.inc_us_per_point,
            per_point.max(MIN_RATE_US),
        );
        self.observe_union(invalidated, updates);
    }

    /// Folds in an observed fallback epoch: the whole window (`n` points)
    /// was recomputed with the incremental kernels after `updates` plan ops
    /// produced an invalidation set of `invalidated`.
    pub fn observe_fallback(&mut self, n: usize, invalidated: usize, updates: usize, micros: f64) {
        let per_point = micros / n.max(1) as f64;
        self.inc_us_per_point = ewma(
            self.alpha,
            self.inc_us_per_point,
            per_point.max(MIN_RATE_US),
        );
        self.observe_union(invalidated, updates);
    }

    /// Folds in an observed rebuild epoch over a window of `n` points.
    ///
    /// The rebuild path never measures an invalidation set, so the union
    /// estimate is left untouched during rebuild streaks — the stored value
    /// keeps predicting the incremental path's fallback behaviour until an
    /// incremental epoch refreshes it.
    pub fn observe_rebuild(&mut self, n: usize, micros: f64) {
        let per_point = micros / n.max(1) as f64;
        self.rebuild_us_per_point = ewma(
            self.alpha,
            self.rebuild_us_per_point,
            per_point.max(MIN_RATE_US),
        );
    }

    fn observe_union(&mut self, invalidated: usize, updates: usize) {
        let per_update = invalidated as f64 / updates.max(1) as f64;
        self.union_per_update = ewma(self.alpha, self.union_per_update, per_update.max(1.0));
    }

    /// Predicts both paths' costs for an epoch of `updates` plan ops over a
    /// final window of `n` points, **before** anything is mutated.
    ///
    /// The predicted invalidation set is `union_per_update · updates`
    /// clamped to the window; when it exceeds `max_affected_fraction · n`
    /// the incremental path is predicted at its fallback cost (the whole
    /// window through the brute-force kernel). The rebuild prediction is
    /// multiplied by `rebuild_bias`, so callers can make the switch sticky
    /// in either direction.
    pub fn predict(
        &self,
        updates: usize,
        n: usize,
        max_affected_fraction: f64,
        rebuild_bias: f64,
    ) -> Prediction {
        let n_f = n as f64;
        let invalidated = (self.union_per_update * updates as f64).min(n_f);
        let incremental_targets = if invalidated > max_affected_fraction * n_f {
            n_f
        } else {
            invalidated
        };
        let incremental_us = incremental_targets * self.inc_us_per_point;
        let rebuild_us = n_f * self.rebuild_us_per_point * rebuild_bias;
        Prediction {
            invalidated,
            incremental_us,
            rebuild_us,
            rebuild_wins: n > 0 && rebuild_us < incremental_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            CommitPolicy::AlwaysIncremental,
            CommitPolicy::AlwaysRebuild,
            CommitPolicy::Adaptive,
        ] {
            assert_eq!(CommitPolicy::parse(policy.name()).unwrap(), policy);
        }
        assert_eq!(CommitPolicy::parse("AUTO").unwrap(), CommitPolicy::Adaptive);
        assert_eq!(
            CommitPolicy::parse(" inc ").unwrap(),
            CommitPolicy::AlwaysIncremental
        );
        let err = CommitPolicy::parse("hybrid").unwrap_err().to_string();
        assert!(err.contains("hybrid"), "{err}");
        assert!(err.contains("adaptive"), "{err}");
        assert_eq!(CommitPolicy::default(), CommitPolicy::AlwaysIncremental);
    }

    #[test]
    fn epoch_mode_names_are_stable() {
        assert_eq!(EpochMode::Incremental.name(), "incremental");
        assert_eq!(EpochMode::Fallback.name(), "fallback");
        assert_eq!(EpochMode::Rebuild.name(), "rebuild");
        assert_eq!(EpochMode::Decay.name(), "decay");
    }

    #[test]
    fn small_epochs_predict_incremental_large_epochs_predict_rebuild() {
        // Brute incremental repair is 10× the per-point rebuild rate, and an
        // update invalidates ~8 points: one update is far cheaper to repair,
        // a 64-op epoch trips the fallback and the rebuild must win.
        let model = CostModel::seeded(1.0, 10.0, 8.0, 0.3);
        let small = model.predict(1, 1000, 0.25, 1.0);
        assert!(!small.rebuild_wins, "{small:?}");
        assert!(small.incremental_us < small.rebuild_us);
        let large = model.predict(128, 1000, 0.25, 1.0);
        assert!(large.rebuild_wins, "{large:?}");
        assert_eq!(large.invalidated, 1000.0); // clamped to the window
        assert_eq!(large.chosen_us(), large.rebuild_us);
    }

    #[test]
    fn rebuild_bias_shifts_the_crossover() {
        let model = CostModel::seeded(1.0, 10.0, 8.0, 0.3);
        // Past the fallback threshold both predictions are ~n·rate; a large
        // enough bias keeps the incremental path predicted cheaper anyway.
        assert!(model.predict(128, 1000, 0.25, 1.0).rebuild_wins);
        assert!(!model.predict(128, 1000, 0.25, 20.0).rebuild_wins);
    }

    #[test]
    fn observations_move_the_estimates_toward_the_samples() {
        let mut model = CostModel::seeded(1.0, 1.0, 4.0, 0.5);
        // Observed incremental epochs are much more expensive per point.
        model.observe_incremental(10, 2, 200.0); // 20 µs/point
        assert!(model.inc_us_per_point() > 1.0);
        assert!(model.inc_us_per_point() < 20.0); // EWMA, not replacement
        model.observe_rebuild(100, 50.0); // 0.5 µs/point
        assert!(model.rebuild_us_per_point() < 1.0);
        // The union estimate follows the measured |F| per update.
        let before = model.union_per_update();
        model.observe_fallback(100, 80, 2, 1000.0); // 40 invalidated/update
        assert!(model.union_per_update() > before);
    }

    #[test]
    fn zero_samples_never_poison_the_rates() {
        let mut model = CostModel::seeded(0.0, 0.0, 0.0, 1.0);
        model.observe_incremental(0, 0, 0.0);
        model.observe_rebuild(0, 0.0);
        let p = model.predict(1, 100, 0.25, 1.0);
        assert!(p.incremental_us > 0.0);
        assert!(p.rebuild_us > 0.0);
        // An empty window never predicts a rebuild win.
        assert!(!model.predict(1, 0, 0.25, 1.0).rebuild_wins);
    }
}
