//! What changed between two clustering epochs.
//!
//! Dense cluster ids (`ClusterId`) are re-derived every epoch from the
//! sorted centre list, so they are meaningless across epochs. The delta
//! report therefore identifies a cluster by the [`Handle`] of its *centre
//! point* and a point's label by its cluster's centre handle — both stable
//! for as long as the underlying points live.
//!
//! A centre handle alone is too brittle an identity: when a cluster's centre
//! point expires but its population persists, the next epoch picks a new
//! centre among the survivors and a naive diff reports the cluster as one
//! death plus one birth. The delta therefore matches dying and newborn
//! centres by member overlap (Jaccard similarity of the two member sets,
//! threshold [`ClusterDelta::JACCARD_THRESHOLD`]); matched pairs are
//! reported as [`ClusterDelta::recentred`] instead of a death + birth.

use crate::handle::Handle;

/// One point whose cluster membership changed between two epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelChange {
    /// The point whose label changed.
    pub handle: Handle,
    /// Centre handle of its previous cluster; `None` when the point was
    /// inserted this epoch.
    pub old: Option<Handle>,
    /// Centre handle of its new cluster; `None` when the point was evicted
    /// this epoch.
    pub new: Option<Handle>,
}

impl LabelChange {
    /// True when the point entered the window this epoch.
    pub fn is_insertion(&self) -> bool {
        self.old.is_none()
    }

    /// True when the point left the window this epoch.
    pub fn is_eviction(&self) -> bool {
        self.new.is_none()
    }
}

/// Everything that changed between the previous epoch's clustering and the
/// current one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterDelta {
    /// The epoch this delta advanced *to*.
    pub epoch: u64,
    /// Number of clusters after the epoch.
    pub num_clusters: usize,
    /// Centre handles of clusters that exist now but not before (sorted).
    pub births: Vec<Handle>,
    /// Centre handles of clusters that existed before but not any more
    /// (sorted).
    pub deaths: Vec<Handle>,
    /// Clusters that survived a centre change, as `(old_centre, new_centre)`
    /// pairs sorted by old centre: the old centre left the centre set (its
    /// point may have expired) but the population persists under a new
    /// centre with member overlap of at least
    /// [`ClusterDelta::JACCARD_THRESHOLD`]. These clusters are *not* listed
    /// in `births`/`deaths`.
    pub recentred: Vec<(Handle, Handle)>,
    /// Points whose cluster changed, sorted by handle. Includes inserted
    /// points (`old = None`) and evicted points (`new = None`).
    pub changed: Vec<LabelChange>,
}

impl ClusterDelta {
    /// Minimum Jaccard similarity (`|A ∩ B| / |A ∪ B|` over member sets) for
    /// a dying and a newborn cluster to be matched as one re-centred
    /// surviving cluster. `0.5` means the surviving population must make up
    /// the majority of the union of the two memberships, so at most one old
    /// cluster can match any new cluster (and vice versa) on overlap alone.
    pub const JACCARD_THRESHOLD: f64 = 0.5;

    /// True when nothing changed (no births, deaths, re-centred clusters or
    /// relabelled points).
    pub fn is_empty(&self) -> bool {
        self.births.is_empty()
            && self.deaths.is_empty()
            && self.recentred.is_empty()
            && self.changed.is_empty()
    }

    /// Number of points that stayed in the window but switched cluster.
    pub fn relabelled(&self) -> usize {
        self.changed
            .iter()
            .filter(|c| c.old.is_some() && c.new.is_some())
            .count()
    }

    /// Number of points inserted this epoch.
    pub fn insertions(&self) -> usize {
        self.changed.iter().filter(|c| c.is_insertion()).count()
    }

    /// Number of points evicted this epoch.
    pub fn evictions(&self) -> usize {
        self.changed.iter().filter(|c| c.is_eviction()).count()
    }

    /// One-line human-readable summary, used by the CLI replay.
    pub fn summary(&self) -> String {
        let fmt_handles = |hs: &[Handle]| {
            hs.iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut parts = vec![format!("{} clusters", self.num_clusters)];
        if !self.births.is_empty() {
            parts.push(format!("born {}", fmt_handles(&self.births)));
        }
        if !self.deaths.is_empty() {
            parts.push(format!("died {}", fmt_handles(&self.deaths)));
        }
        if !self.recentred.is_empty() {
            let pairs = self
                .recentred
                .iter()
                .map(|(old, new)| format!("{old}->{new}"))
                .collect::<Vec<_>>()
                .join(",");
            parts.push(format!("recentred {pairs}"));
        }
        parts.push(format!(
            "+{} / -{} points, {} relabelled",
            self.insertions(),
            self.evictions(),
            self.relabelled()
        ));
        format!("epoch {:>4}: {}", self.epoch, parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta() -> ClusterDelta {
        ClusterDelta {
            epoch: 7,
            num_clusters: 2,
            births: vec![Handle(9)],
            deaths: vec![Handle(2)],
            recentred: vec![(Handle(3), Handle(11))],
            changed: vec![
                LabelChange {
                    handle: Handle(4),
                    old: Some(Handle(2)),
                    new: Some(Handle(9)),
                },
                LabelChange {
                    handle: Handle(10),
                    old: None,
                    new: Some(Handle(9)),
                },
                LabelChange {
                    handle: Handle(1),
                    old: Some(Handle(2)),
                    new: None,
                },
            ],
        }
    }

    #[test]
    fn counts_split_by_change_kind() {
        let d = delta();
        assert!(!d.is_empty());
        assert_eq!(d.relabelled(), 1);
        assert_eq!(d.insertions(), 1);
        assert_eq!(d.evictions(), 1);
    }

    #[test]
    fn summary_mentions_births_deaths_and_counts() {
        let s = delta().summary();
        assert!(s.contains("epoch"));
        assert!(s.contains("born #9"));
        assert!(s.contains("died #2"));
        assert!(s.contains("recentred #3->#11"));
        assert!(s.contains("+1 / -1 points, 1 relabelled"));
    }

    #[test]
    fn empty_delta() {
        let d = ClusterDelta {
            epoch: 1,
            num_clusters: 3,
            births: vec![],
            deaths: vec![],
            recentred: vec![],
            changed: vec![],
        };
        assert!(d.is_empty());
        assert_eq!(d.relabelled(), 0);
    }

    #[test]
    fn recentring_alone_is_not_empty() {
        let d = ClusterDelta {
            epoch: 2,
            num_clusters: 1,
            births: vec![],
            deaths: vec![],
            recentred: vec![(Handle(1), Handle(5))],
            changed: vec![],
        };
        assert!(!d.is_empty());
        assert!(d.summary().contains("recentred #1->#5"));
    }
}
