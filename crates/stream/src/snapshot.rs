//! Epoch snapshot publication: immutable per-epoch views of the streaming
//! engine, addressed by stable [`Handle`]s, and the sink trait through which
//! [`StreamingDpc::commit`](crate::StreamingDpc::commit) publishes them.
//!
//! A [`StateSnapshot`] (from `dpc-core`) freezes the dense per-point state;
//! an [`EpochSnapshot`] wraps it with everything a *streaming* consumer
//! needs on top: the epoch counter, the dense-id ↔ handle correspondence of
//! that epoch, per-cluster centre handles, and the [`ClusterDelta`] that
//! produced the epoch. Snapshots are immutable plain data — share them
//! behind an `Arc` and read them from any thread without synchronisation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use dpc_core::{ClusterId, Point, PointId, Result, StateSnapshot};

use crate::handle::Handle;
use crate::report::ClusterDelta;

/// An immutable view of the engine at one committed epoch.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    epoch: u64,
    state: StateSnapshot,
    /// Dense id → stable handle, frozen at the epoch.
    handles: Vec<Handle>,
    /// Stable handle → dense id (inverse of `handles`).
    dense: BTreeMap<Handle, PointId>,
    /// Centre handle of every cluster, indexed by [`ClusterId`].
    centre_handles: Vec<Handle>,
    /// The delta that advanced the engine *to* this epoch. The initial
    /// snapshot (published at attach time, before any commit) carries an
    /// empty delta.
    delta: ClusterDelta,
}

impl EpochSnapshot {
    /// Assembles a snapshot from its parts.
    ///
    /// # Panics
    /// Panics if `handles` does not have exactly one handle per frozen
    /// point, or if a handle repeats.
    pub fn new(
        epoch: u64,
        state: StateSnapshot,
        handles: Vec<Handle>,
        delta: ClusterDelta,
    ) -> Self {
        assert_eq!(
            handles.len(),
            state.len(),
            "one handle per frozen point required"
        );
        let dense: BTreeMap<Handle, PointId> =
            handles.iter().enumerate().map(|(id, &h)| (h, id)).collect();
        assert_eq!(dense.len(), handles.len(), "handles must be distinct");
        let centre_handles = state
            .clustering()
            .centers()
            .iter()
            .map(|&c| handles[c])
            .collect();
        EpochSnapshot {
            epoch,
            state,
            handles,
            dense,
            centre_handles,
            delta,
        }
    }

    /// The epoch this snapshot was committed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The dataset mutation counter at the epoch.
    pub fn version(&self) -> u64 {
        self.state.version()
    }

    /// Number of points in the snapshot.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether the snapshot holds no points.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// The frozen dense per-point state (ρ, δ, µ, labels, centres).
    pub fn state(&self) -> &StateSnapshot {
        &self.state
    }

    /// The delta that advanced the engine to this epoch.
    pub fn delta(&self) -> &ClusterDelta {
        &self.delta
    }

    /// Dense id → handle correspondence frozen at the epoch.
    pub fn handles(&self) -> &[Handle] {
        &self.handles
    }

    /// Centre handle of every cluster, indexed by [`ClusterId`].
    pub fn centre_handles(&self) -> &[Handle] {
        &self.centre_handles
    }

    /// The dense id behind a handle at this epoch, or `None` if the point
    /// was not in the window.
    pub fn dense_of(&self, handle: Handle) -> Option<PointId> {
        self.dense.get(&handle).copied()
    }

    /// The handle of the point at dense id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn handle_at(&self, id: PointId) -> Handle {
        self.handles[id]
    }

    /// The frozen coordinates of a live handle.
    pub fn point_of(&self, handle: Handle) -> Option<Point> {
        self.dense_of(handle).map(|id| self.state.point(id))
    }

    /// The dense cluster id of a live handle.
    pub fn label_of(&self, handle: Handle) -> Option<ClusterId> {
        self.dense_of(handle)
            .map(|id| self.state.clustering().label(id))
    }

    /// Point lookup: the *centre handle* of the cluster a point belongs to
    /// at this epoch, or `None` if the handle is not in the window. Centre
    /// handles are the stable cluster identity used by [`ClusterDelta`].
    pub fn cluster_of(&self, handle: Handle) -> Option<Handle> {
        self.label_of(handle)
            .map(|label| self.centre_handles[label])
    }

    /// Handles of all points strictly within `eps` of `center`, in
    /// ascending dense-id order — the handle-addressed form of
    /// [`StateSnapshot::eps_neighbors`], bit-identical to querying the
    /// engine's index at the published epoch.
    ///
    /// # Errors
    /// Rejects a non-finite or non-positive `eps`.
    pub fn eps_neighbor_handles(&self, center: Point, eps: f64) -> Result<Vec<Handle>> {
        Ok(self
            .state
            .eps_neighbors(center, eps)?
            .into_iter()
            .map(|id| self.handles[id])
            .collect())
    }

    /// Verifies internal consistency: the dense state checks out, the
    /// handle maps are mutually inverse, and every cluster's centre handle
    /// resolves back to its centre point. A torn snapshot (fields mixed
    /// across epochs) cannot pass.
    ///
    /// # Panics
    /// Panics with a descriptive message on the first violation.
    pub fn check_consistency(&self) {
        self.state.check_consistency();
        assert_eq!(
            self.handles.len(),
            self.state.len(),
            "handle map length mismatch"
        );
        assert_eq!(
            self.dense.len(),
            self.handles.len(),
            "dense map length mismatch"
        );
        for (id, &h) in self.handles.iter().enumerate() {
            assert_eq!(
                self.dense.get(&h),
                Some(&id),
                "handle map is not its own inverse at dense id {id}"
            );
        }
        let centers = self.state.clustering().centers();
        assert_eq!(
            self.centre_handles.len(),
            centers.len(),
            "one centre handle per cluster required"
        );
        for (cluster, (&ch, &c)) in self.centre_handles.iter().zip(centers.iter()).enumerate() {
            assert_eq!(
                self.dense_of(ch),
                Some(c),
                "centre handle of cluster {cluster} does not resolve to its centre"
            );
        }
    }
}

/// A consumer of published epoch snapshots.
///
/// [`StreamingDpc`](crate::StreamingDpc) calls
/// [`publish`](SnapshotSink::publish) once per successfully committed
/// non-empty epoch, after re-clustering, with a freshly frozen snapshot.
/// Implementations must be cheap and non-blocking — the publish happens on
/// the writer's commit path — and must not call back into the engine.
pub trait SnapshotSink: fmt::Debug + Send + Sync {
    /// Accepts the snapshot of a just-committed epoch.
    fn publish(&self, snapshot: Arc<EpochSnapshot>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StreamParams, StreamingDpc};
    use dpc_core::naive_reference::NaiveReferenceIndex;
    use dpc_core::{CenterSelection, Dataset, DpcParams, UpdatableIndex};
    use std::sync::Mutex;

    /// A sink that remembers everything published to it.
    #[derive(Debug, Default)]
    struct CollectingSink {
        published: Mutex<Vec<Arc<EpochSnapshot>>>,
    }

    impl SnapshotSink for CollectingSink {
        fn publish(&self, snapshot: Arc<EpochSnapshot>) {
            self.published.lock().unwrap().push(snapshot);
        }
    }

    fn engine() -> StreamingDpc<NaiveReferenceIndex> {
        let seed = Dataset::from_coords(vec![
            (0.0, 0.0),
            (0.1, 0.0),
            (0.0, 0.1),
            (5.0, 5.0),
            (5.1, 5.0),
            (5.0, 5.1),
        ]);
        let params = StreamParams::new(0.5)
            .with_dpc(DpcParams::new(0.5).with_centers(CenterSelection::TopKGamma { k: 2 }));
        StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap()
    }

    #[test]
    fn snapshot_mirrors_engine_state() {
        let engine = engine();
        let snap = engine.snapshot();
        snap.check_consistency();
        assert_eq!(snap.epoch(), engine.epoch());
        assert_eq!(snap.version(), engine.version());
        assert_eq!(snap.len(), engine.len());
        assert_eq!(snap.state().rho(), engine.rho());
        assert_eq!(snap.state().deltas(), engine.deltas());
        assert_eq!(snap.state().clustering(), engine.clustering());
        assert!(snap.delta().is_empty());
        for p in 0..engine.len() {
            let h = engine.handle_at(p);
            assert_eq!(snap.handle_at(p), h);
            assert_eq!(snap.dense_of(h), Some(p));
            let label = engine.clustering().label(p);
            let centre = engine.clustering().centers()[label];
            assert_eq!(snap.cluster_of(h), Some(engine.handle_at(centre)));
        }
        assert_eq!(snap.cluster_of(Handle(u64::MAX)), None);
    }

    #[test]
    fn commit_publishes_one_snapshot_per_nonempty_epoch() {
        let mut engine = engine();
        let sink = Arc::new(CollectingSink::default());
        engine.set_snapshot_sink(sink.clone());

        // An empty epoch publishes nothing.
        engine.advance(&[], 0).unwrap();
        assert!(sink.published.lock().unwrap().is_empty());

        let (_, d1) = engine.insert(dpc_core::Point::new(0.05, 0.05)).unwrap();
        let (_, d2) = engine.insert(dpc_core::Point::new(5.05, 5.05)).unwrap();
        let published = sink.published.lock().unwrap().clone();
        assert_eq!(published.len(), 2);
        for (snap, delta) in published.iter().zip([&d1, &d2]) {
            snap.check_consistency();
            assert_eq!(snap.delta(), delta);
            assert_eq!(snap.delta().epoch, snap.epoch());
        }
        // The latest snapshot mirrors the live engine exactly.
        let last = published.last().unwrap();
        assert_eq!(last.epoch(), engine.epoch());
        assert_eq!(last.version(), engine.version());
        assert_eq!(last.state().rho(), engine.rho());
        assert_eq!(last.state().clustering(), engine.clustering());
    }

    #[test]
    fn snapshot_eps_queries_match_the_engine_index() {
        let mut engine = engine();
        engine.insert(dpc_core::Point::new(2.5, 2.5)).unwrap();
        let snap = engine.snapshot();
        for (center, eps) in [
            (dpc_core::Point::new(0.0, 0.0), 0.2),
            (dpc_core::Point::new(5.0, 5.0), 0.5),
            (dpc_core::Point::new(2.0, 2.0), 10.0),
        ] {
            let ids = engine.index().eps_neighbors(center, eps).unwrap();
            let expected: Vec<Handle> = ids.iter().map(|&id| engine.handle_at(id)).collect();
            assert_eq!(
                snap.eps_neighbor_handles(center, eps).unwrap(),
                expected,
                "eps = {eps}"
            );
        }
    }
}
