//! The correctness anchor of the streaming engine: after **every** prefix of
//! a random insert/delete sequence, the incremental state `(ρ, δ, µ, labels,
//! centres)` must be **bit-identical** to a cold batch run (fresh index of
//! the same kind + full pipeline) over the surviving points — for every
//! [`UpdatableIndex`] implementation, at threads 1 and 4, on both the
//! incremental path and the full-recompute fallback.
//!
//! Points are drawn from a coarse integer lattice so that coincident points
//! and exact ρ/δ/γ ties — the cases where only a consistent tie-break rule
//! keeps incremental and batch in agreement — occur constantly rather than
//! never.

use dpc_baseline::LeanDpc;
use dpc_core::naive_reference::NaiveReferenceIndex;
use dpc_core::{CenterSelection, Dataset, DpcIndex, DpcParams, DpcPipeline, Point, UpdatableIndex};
use dpc_stream::{StreamParams, StreamingDpc};
use dpc_tree_index::GridIndex;
use proptest::prelude::*;

/// One streamed operation: `insert` chooses between insert and remove (a
/// remove on an empty window becomes an insert), `(ix, iy)` are lattice
/// coordinates of the inserted point, `sel` picks the eviction victim among
/// the live handles.
type RawOp = (bool, u32, u32, u64);

fn lattice_point(ix: u32, iy: u32) -> Point {
    Point::new(ix as f64 * 0.5, iy as f64 * 0.5)
}

fn seed_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..10, 0u32..10), 0..16)
}

fn ops_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec((any::<bool>(), 0u32..10, 0u32..10, 0u64..10_000), 1..18)
}

/// Replays `ops` through a [`StreamingDpc`] over `build`'s index kind and
/// checks bit-identity against a cold batch run after every single step.
fn check_equivalence<I, F>(
    build: F,
    seed: &[(u32, u32)],
    ops: &[RawOp],
    threads: usize,
    max_affected_fraction: f64,
) -> Result<(), TestCaseError>
where
    I: UpdatableIndex,
    F: Fn(&Dataset) -> I,
{
    let dc = 0.8;
    let dpc = DpcParams::new(dc)
        .with_centers(CenterSelection::GammaGap { max_centers: 8 })
        .with_threads(threads);
    let params = StreamParams::new(dc)
        .with_dpc(dpc.clone())
        .with_max_affected_fraction(max_affected_fraction);
    let seed_points: Vec<Point> = seed.iter().map(|&(x, y)| lattice_point(x, y)).collect();
    let mut engine = StreamingDpc::new(build(&Dataset::new(seed_points)), params)
        .map_err(|e| TestCaseError::fail(format!("seeding failed: {e}")))?;

    for (step, &(insert, ix, iy, sel)) in ops.iter().enumerate() {
        if insert || engine.is_empty() {
            engine
                .insert(lattice_point(ix, iy))
                .map_err(|e| TestCaseError::fail(format!("step {step}: insert failed: {e}")))?;
        } else {
            let live: Vec<_> = engine.live_handles().collect();
            let victim = live[sel as usize % live.len()];
            engine
                .remove(victim)
                .map_err(|e| TestCaseError::fail(format!("step {step}: remove failed: {e}")))?;
        }

        if engine.is_empty() {
            prop_assert_eq!(engine.clustering().num_clusters(), 0);
            continue;
        }
        let batch_index = build(engine.index().dataset());
        let run = DpcPipeline::new(dpc.clone())
            .run(&batch_index)
            .map_err(|e| TestCaseError::fail(format!("step {step}: batch run failed: {e}")))?;
        prop_assert_eq!(engine.rho(), &run.rho[..], "rho diverged at step {}", step);
        prop_assert_eq!(
            &engine.deltas().delta,
            &run.deltas.delta,
            "delta diverged at step {} (must be bit-identical)",
            step
        );
        prop_assert_eq!(
            &engine.deltas().mu,
            &run.deltas.mu,
            "mu diverged at step {}",
            step
        );
        prop_assert_eq!(
            engine.clustering().centers(),
            run.clustering.centers(),
            "centres diverged at step {}",
            step
        );
        prop_assert_eq!(
            engine.clustering().labels(),
            run.clustering.labels(),
            "labels diverged at step {}",
            step
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental path (default fallback threshold), sequential and 4-way
    /// parallel, for all three updatable index kinds.
    #[test]
    fn incremental_matches_batch_for_every_index_and_thread_count(
        seed in seed_strategy(),
        ops in ops_strategy()
    ) {
        for &threads in &[1usize, 4] {
            check_equivalence(NaiveReferenceIndex::build, &seed, &ops, threads, 0.25)?;
            check_equivalence(LeanDpc::build, &seed, &ops, threads, 0.25)?;
            check_equivalence(GridIndex::build, &seed, &ops, threads, 0.25)?;
        }
    }

    /// The fallback threshold must not change results, only work: with the
    /// fallback forced on every update (fraction 0) and fully disabled
    /// (fraction 1) the state must be identical to batch all the same.
    #[test]
    fn fallback_extremes_match_batch(
        seed in seed_strategy(),
        ops in ops_strategy()
    ) {
        check_equivalence(GridIndex::build, &seed, &ops, 1, 0.0)?;
        check_equivalence(LeanDpc::build, &seed, &ops, 1, 0.0)?;
        check_equivalence(GridIndex::build, &seed, &ops, 1, 1.0)?;
        check_equivalence(LeanDpc::build, &seed, &ops, 1, 1.0)?;
    }

    /// Sliding-window `advance` (batched eviction + insertion in one epoch)
    /// also lands on batch-identical state at every epoch.
    #[test]
    fn advance_matches_batch(
        seed in seed_strategy(),
        ops in ops_strategy(),
        batch_size in 1usize..4
    ) {
        let dc = 0.8;
        let dpc = DpcParams::new(dc)
            .with_centers(CenterSelection::GammaGap { max_centers: 8 })
            .with_threads(4);
        let params = StreamParams::new(dc).with_dpc(dpc.clone());
        let seed_points: Vec<Point> = seed.iter().map(|&(x, y)| lattice_point(x, y)).collect();
        let mut engine = StreamingDpc::new(
            GridIndex::build(&Dataset::new(seed_points)),
            params,
        )
        .map_err(|e| TestCaseError::fail(format!("seeding failed: {e}")))?;

        for (chunk_idx, chunk) in ops.chunks(batch_size).enumerate() {
            let batch: Vec<Point> = chunk
                .iter()
                .map(|&(_, ix, iy, _)| lattice_point(ix, iy))
                .collect();
            // Evict as many as we insert once the window is warm.
            let evict = if engine.len() > 8 { batch.len() } else { 0 };
            let (handles, _) = engine
                .advance(&batch, evict)
                .map_err(|e| TestCaseError::fail(format!("advance failed: {e}")))?;
            prop_assert_eq!(handles.len(), batch.len());

            let batch_index = GridIndex::build(engine.index().dataset());
            let run = DpcPipeline::new(dpc.clone())
                .run(&batch_index)
                .map_err(|e| TestCaseError::fail(format!("batch run failed: {e}")))?;
            prop_assert_eq!(engine.rho(), &run.rho[..], "rho @ chunk {}", chunk_idx);
            prop_assert_eq!(&engine.deltas().delta, &run.deltas.delta);
            prop_assert_eq!(&engine.deltas().mu, &run.deltas.mu);
            prop_assert_eq!(engine.clustering().labels(), run.clustering.labels());
        }
    }

    /// The stable handle ↔ dense id mapping stays consistent through any
    /// operation sequence: every live handle resolves to a dense id that
    /// resolves back, and coordinates follow the handle, not the id.
    #[test]
    fn handles_stay_consistent(seed in seed_strategy(), ops in ops_strategy()) {
        let seed_points: Vec<Point> = seed.iter().map(|&(x, y)| lattice_point(x, y)).collect();
        let mut engine = StreamingDpc::new(
            NaiveReferenceIndex::build(&Dataset::new(seed_points)),
            StreamParams::new(0.8),
        )
        .map_err(|e| TestCaseError::fail(format!("seeding failed: {e}")))?;
        let mut expected: Vec<(dpc_stream::Handle, Point)> = engine
            .live_handles()
            .map(|h| (h, engine.point_of(h).unwrap()))
            .collect();

        for &(insert, ix, iy, sel) in &ops {
            if insert || engine.is_empty() {
                let p = lattice_point(ix, iy);
                let (h, _) = engine
                    .insert(p)
                    .map_err(|e| TestCaseError::fail(format!("insert failed: {e}")))?;
                expected.push((h, p));
            } else {
                let live: Vec<_> = engine.live_handles().collect();
                let victim = live[sel as usize % live.len()];
                engine
                    .remove(victim)
                    .map_err(|e| TestCaseError::fail(format!("remove failed: {e}")))?;
                expected.retain(|&(h, _)| h != victim);
            }
            prop_assert_eq!(engine.len(), expected.len());
            for &(h, p) in &expected {
                let dense = engine.dense_of(h);
                prop_assert!(dense.is_some(), "live handle {} lost its id", h);
                prop_assert_eq!(engine.point_of(h), Some(p), "handle {} moved", h);
                prop_assert_eq!(engine.handle_at(dense.unwrap()), h);
            }
        }
    }
}
