//! The correctness anchor of the streaming engine: after **every** prefix of
//! a random insert/delete sequence, the incremental state `(ρ, δ, µ, labels,
//! centres)` must be **bit-identical** to a cold batch run (fresh index of
//! the same kind + full pipeline) over the surviving points — for every
//! [`UpdatableIndex`] implementation, at threads 1 and 4, on both the
//! incremental path and the full-recompute fallback.
//!
//! ## The generic harness
//!
//! [`check_equivalence`] replays one operation sequence against one index
//! family; the [`for_each_updatable_index!`] macro instantiates a check for
//! every family in the registry, so adding an index to the whole suite is
//! one line in the macro. Besides the state comparison, the harness asserts
//! after every single step that
//!
//! * the index's own structural invariants hold
//!   ([`UpdatableIndex::check_invariants`] — bbox containment, subtree
//!   counts, id bookkeeping), so a rebuild bug fails loudly at the step that
//!   corrupted the structure rather than as a distant label diff, and
//! * the index's ε-query agrees with a brute-force scan of its dataset at
//!   the mutated location — a deleted point that a tombstone keeps visible
//!   (or a live point a stale box hides) fails here immediately.
//!
//! Random points come from a coarse integer lattice
//! ([`dpc_datasets::testsupport::lattice_point`]) so that coincident points
//! and exact ρ/δ/γ ties — the cases where only a consistent tie-break rule
//! keeps incremental and batch in agreement — occur constantly rather than
//! never. The adversarial scenarios (deletion-heavy, drift-heavy) instead
//! draw from the shared clustered/skewed distributions and additionally
//! assert that the trees' amortised rebuild triggers actually fire
//! ([`UpdatableIndex::maintenance_counters`]).

use dpc_baseline::LeanDpc;
use dpc_core::index::eps_neighbors_scan;
use dpc_core::naive_reference::NaiveReferenceIndex;
use dpc_core::{CenterSelection, Dataset, DpcIndex, DpcParams, DpcPipeline, Point, UpdatableIndex};
use dpc_datasets::rng::SplitMix64;
use dpc_datasets::testsupport::{lattice_point, test_points, TestDistribution};
use dpc_stream::{CommitPolicy, StreamParams, StreamingDpc};
use dpc_tree_index::{GridConfig, GridIndex, KdTree, KdTreeConfig, RTree, RTreeConfig};
use proptest::prelude::*;

/// One streamed operation. `insert` chooses between inserting `point` and
/// evicting the live handle selected by `sel` (an eviction on an empty
/// window becomes the insert, so every prefix is executable).
#[derive(Debug, Clone, Copy)]
struct Op {
    insert: bool,
    point: Point,
    sel: u64,
}

/// The raw proptest encoding of an [`Op`] on the coarse lattice.
type RawOp = (bool, u32, u32, u64);

fn lattice_ops(raw: &[RawOp]) -> Vec<Op> {
    raw.iter()
        .map(|&(insert, ix, iy, sel)| Op {
            insert,
            point: lattice_point(ix, iy),
            sel,
        })
        .collect()
}

fn lattice_seed(seed: &[(u32, u32)]) -> Vec<Point> {
    seed.iter().map(|&(x, y)| lattice_point(x, y)).collect()
}

fn seed_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..10, 0u32..10), 0..16)
}

fn ops_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec((any::<bool>(), 0u32..10, 0u32..10, 0u64..10_000), 1..18)
}

/// Small-node builders for the tree indexes: the lattice windows hold a few
/// dozen points, and a default 32-entry node would degenerate to a single
/// leaf — these configs make the suite exercise real tree structure
/// (splits, reinsertions, rebuilds) at window sizes the batch replay can
/// afford.
fn kd_build(data: &Dataset) -> KdTree {
    KdTree::with_config(
        data,
        &KdTreeConfig {
            leaf_capacity: 3,
            ..Default::default()
        },
    )
}

fn rt_build(data: &Dataset) -> RTree {
    RTree::with_config(
        data,
        &RTreeConfig {
            node_capacity: 3,
            ..Default::default()
        },
    )
}

/// Drift-sensitive grid builder: a one-point cell target and a low
/// re-bucket skew threshold, so the few consecutive drift points that land
/// in the same frozen cell already count as pathological occupancy. This is
/// the regression gate for the frozen-geometry bug where the streaming grid
/// kept its build-time origin and cell size forever and degenerated to
/// scans as the window drifted.
fn grid_drift_build(data: &Dataset) -> GridIndex {
    GridIndex::with_config(
        data,
        &GridConfig {
            target_points_per_cell: 1,
            rebucket_skew: 2.0,
            ..Default::default()
        },
    )
}

/// Instantiates `$body` once per updatable index family, with `$name` bound
/// to the family's label and `$build` to its `fn(&Dataset) -> impl
/// UpdatableIndex` builder. **Adding an index to the entire equivalence
/// suite is one line here.**
macro_rules! for_each_updatable_index {
    (|$name:ident, $build:ident| $body:expr) => {{
        {
            let $name = "naive";
            let $build = NaiveReferenceIndex::build;
            $body
        }
        {
            let $name = "lean";
            let $build = LeanDpc::build;
            $body
        }
        {
            let $name = "grid";
            let $build = GridIndex::build;
            $body
        }
        {
            let $name = "kdtree";
            let $build = kd_build;
            $body
        }
        {
            let $name = "rtree";
            let $build = rt_build;
            $body
        }
    }};
}

/// Replays `ops` through a [`StreamingDpc`] over `build`'s index kind and
/// checks, after every single step: structural invariants, ε-query vs
/// brute-force scan at the mutated location, and bit-identity of the whole
/// engine state against a cold batch run. Returns the final index's
/// maintenance counters so scenario tests can assert rebuild triggers fired.
fn check_equivalence<I, F>(
    label: &str,
    build: F,
    dc: f64,
    seed_points: &[Point],
    ops: &[Op],
    threads: usize,
    max_affected_fraction: f64,
) -> Result<Vec<(&'static str, u64)>, TestCaseError>
where
    I: UpdatableIndex,
    F: Fn(&Dataset) -> I,
{
    let dpc = DpcParams::new(dc)
        .with_centers(CenterSelection::GammaGap { max_centers: 8 })
        .with_threads(threads);
    let params = StreamParams::new(dc)
        .with_dpc(dpc.clone())
        .with_max_affected_fraction(max_affected_fraction);
    let mut engine = StreamingDpc::new(build(&Dataset::new(seed_points.to_vec())), params)
        .map_err(|e| TestCaseError::fail(format!("[{label}] seeding failed: {e}")))?;

    for (step, op) in ops.iter().enumerate() {
        // The mutated location: where the insert lands, or where the evicted
        // point lived. The ε-query must agree with a brute-force scan there
        // after the update — the spot a tombstone or stale box would corrupt.
        let location;
        if op.insert || engine.is_empty() {
            location = op.point;
            engine.insert(op.point).map_err(|e| {
                TestCaseError::fail(format!("[{label}] step {step}: insert failed: {e}"))
            })?;
        } else {
            let live: Vec<_> = engine.live_handles().collect();
            let victim = live[op.sel as usize % live.len()];
            location = engine.point_of(victim).expect("live handle has a point");
            engine.remove(victim).map_err(|e| {
                TestCaseError::fail(format!("[{label}] step {step}: remove failed: {e}"))
            })?;
        }

        engine.index().check_invariants();
        let scan = eps_neighbors_scan(engine.index().dataset(), location, dc)
            .expect("scan accepts a valid dc");
        let indexed = engine.index().eps_neighbors(location, dc).map_err(|e| {
            TestCaseError::fail(format!("[{label}] step {step}: eps query failed: {e}"))
        })?;
        prop_assert_eq!(
            indexed,
            scan,
            "[{}] eps-query diverged from the scan at step {}",
            label,
            step
        );

        if engine.is_empty() {
            prop_assert_eq!(engine.clustering().num_clusters(), 0);
            continue;
        }
        let batch_index = build(engine.index().dataset());
        let run = DpcPipeline::new(dpc.clone())
            .run(&batch_index)
            .map_err(|e| {
                TestCaseError::fail(format!("[{label}] step {step}: batch run failed: {e}"))
            })?;
        prop_assert_eq!(
            engine.rho(),
            &run.rho[..],
            "[{}] rho diverged at step {}",
            label,
            step
        );
        prop_assert_eq!(
            &engine.deltas().delta,
            &run.deltas.delta,
            "[{}] delta diverged at step {} (must be bit-identical)",
            label,
            step
        );
        prop_assert_eq!(
            &engine.deltas().mu,
            &run.deltas.mu,
            "[{}] mu diverged at step {}",
            label,
            step
        );
        prop_assert_eq!(
            engine.clustering().centers(),
            run.clustering.centers(),
            "[{}] centres diverged at step {}",
            label,
            step
        );
        prop_assert_eq!(
            engine.clustering().labels(),
            run.clustering.labels(),
            "[{}] labels diverged at step {}",
            label,
            step
        );
    }
    Ok(engine.index().maintenance_counters())
}

/// Sliding-window `advance` (batched eviction + insertion in one epoch) for
/// one index family. After **every epoch** the batched engine must be
/// bit-identical to two independent oracles:
///
/// * a **per-update replay** — a second engine applying the same evictions
///   and insertions one `remove`/`insert` epoch at a time (the pre-batching
///   maintenance path), and
/// * a **cold batch run** — a fresh index of the same kind + the full
///   pipeline over the surviving points.
///
/// Only the batched engine runs under `policy`; the replay oracle always
/// stays on the default incremental path, so a rebuild or adaptive policy
/// is checked against genuinely independent maintenance.
fn check_advance<I, F>(
    label: &str,
    build: F,
    seed_points: &[Point],
    ops: &[Op],
    batch_size: usize,
    policy: CommitPolicy,
    threads: usize,
) -> Result<(), TestCaseError>
where
    I: UpdatableIndex,
    F: Fn(&Dataset) -> I,
{
    let dc = 0.8;
    let dpc = DpcParams::new(dc)
        .with_centers(CenterSelection::GammaGap { max_centers: 8 })
        .with_threads(threads);
    let params = StreamParams::new(dc).with_dpc(dpc.clone());
    let mut batched = StreamingDpc::new(
        build(&Dataset::new(seed_points.to_vec())),
        params.clone().with_policy(policy),
    )
    .map_err(|e| TestCaseError::fail(format!("[{label}] seeding failed: {e}")))?;
    let mut replay = StreamingDpc::new(build(&Dataset::new(seed_points.to_vec())), params)
        .map_err(|e| TestCaseError::fail(format!("[{label}] replay seeding failed: {e}")))?;

    for (chunk_idx, chunk) in ops.chunks(batch_size).enumerate() {
        let batch: Vec<Point> = chunk.iter().map(|op| op.point).collect();
        // Evict as many as we insert once the window is warm.
        let evict = if batched.len() > 8 { batch.len() } else { 0 };
        let (handles, _) = batched
            .advance(&batch, evict)
            .map_err(|e| TestCaseError::fail(format!("[{label}] advance failed: {e}")))?;
        prop_assert_eq!(handles.len(), batch.len());
        batched.index().check_invariants();

        // Oracle 1: per-update replay of the identical epoch — evictions
        // first (oldest each time, like `advance`), then the insertions.
        for _ in 0..evict.min(replay.len()) {
            let oldest = replay.oldest().expect("replay window is non-empty");
            replay.remove(oldest).map_err(|e| {
                TestCaseError::fail(format!("[{label}] per-update remove failed: {e}"))
            })?;
        }
        for &p in &batch {
            replay.insert(p).map_err(|e| {
                TestCaseError::fail(format!("[{label}] per-update insert failed: {e}"))
            })?;
        }
        prop_assert_eq!(
            batched.rho(),
            replay.rho(),
            "[{}] batched rho diverged from per-update replay @ chunk {}",
            label,
            chunk_idx
        );
        prop_assert_eq!(
            &batched.deltas().delta,
            &replay.deltas().delta,
            "[{}] batched delta diverged from per-update replay @ chunk {}",
            label,
            chunk_idx
        );
        prop_assert_eq!(&batched.deltas().mu, &replay.deltas().mu);
        prop_assert_eq!(
            batched.clustering().centers(),
            replay.clustering().centers()
        );
        prop_assert_eq!(batched.clustering().labels(), replay.clustering().labels());

        // Oracle 2: cold batch run over the surviving points.
        let batch_index = build(batched.index().dataset());
        let run = DpcPipeline::new(dpc.clone())
            .run(&batch_index)
            .map_err(|e| TestCaseError::fail(format!("[{label}] batch run failed: {e}")))?;
        prop_assert_eq!(
            batched.rho(),
            &run.rho[..],
            "[{}] rho @ chunk {}",
            label,
            chunk_idx
        );
        prop_assert_eq!(&batched.deltas().delta, &run.deltas.delta);
        prop_assert_eq!(&batched.deltas().mu, &run.deltas.mu);
        prop_assert_eq!(batched.clustering().labels(), run.clustering.labels());
    }
    Ok(())
}

/// Looks up a maintenance counter by name (0 when the index does not report
/// it).
fn counter(counters: &[(&'static str, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

/// Deletion-heavy adversarial sequence: delete 90% of a clustered window,
/// then refill it. This is the workload that accumulates tombstone
/// structure — the k-d tree's dead-fraction full rebuild and the R-tree's
/// underflow dissolution must both fire.
fn deletion_heavy_ops(n: usize, seed: u64) -> (Vec<Point>, Vec<Op>) {
    let seed_points = test_points(TestDistribution::Clustered, n, seed);
    let mut rng = SplitMix64::new(seed ^ 0x00DE_1E7E);
    let mut ops = Vec::new();
    for _ in 0..(n * 9 / 10) {
        ops.push(Op {
            insert: false,
            point: lattice_point(0, 0), // unused fallback for an empty window
            sel: rng.next_u64(),
        });
    }
    for p in test_points(TestDistribution::Clustered, n / 2, seed ^ 0xF111) {
        ops.push(Op {
            insert: true,
            point: p,
            sel: 0,
        });
    }
    (seed_points, ops)
}

/// Drift-heavy adversarial sequence: a sliding window whose points
/// random-walk away from the seed bounding box — every insert lands farther
/// out while the oldest point expires. One-sided growth is the worst case
/// for a frozen split structure (k-d scapegoat rebuilds) and keeps the
/// R-tree shedding emptied nodes behind the moving window.
fn drift_heavy_ops(n: usize, steps: usize, seed: u64) -> (Vec<Point>, Vec<Op>) {
    let seed_points = test_points(TestDistribution::Clustered, n, seed);
    let mut rng = SplitMix64::new(seed ^ 0x000D_21F7);
    let bb = Dataset::new(seed_points.clone()).bounding_box();
    let (mut x, mut y) = (bb.max_x(), bb.max_y());
    let step = (bb.width() + bb.height()).max(1.0) * 0.05;
    let mut ops = Vec::new();
    for _ in 0..steps {
        // Biased random walk: strictly outward on average.
        x += rng.uniform(0.2, 1.0) * step;
        y += rng.uniform(-0.5, 1.0) * step;
        ops.push(Op {
            insert: true,
            point: Point::new(x, y),
            sel: 0,
        });
        // Evict the oldest live point (sel 0 picks the smallest handle).
        ops.push(Op {
            insert: false,
            point: lattice_point(0, 0),
            sel: 0,
        });
    }
    (seed_points, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental path (default fallback threshold), sequential and 4-way
    /// parallel, for all five updatable index kinds.
    #[test]
    fn incremental_matches_batch_for_every_index_and_thread_count(
        seed in seed_strategy(),
        ops in ops_strategy()
    ) {
        let seed_points = lattice_seed(&seed);
        let ops = lattice_ops(&ops);
        for &threads in &[1usize, 4] {
            for_each_updatable_index!(|name, build| {
                check_equivalence(name, build, 0.8, &seed_points, &ops, threads, 0.25)?;
            });
        }
    }

    /// The fallback threshold must not change results, only work: with the
    /// fallback forced on every update (fraction 0) and fully disabled
    /// (fraction 1) the state must be identical to batch all the same.
    #[test]
    fn fallback_extremes_match_batch(
        seed in seed_strategy(),
        ops in ops_strategy()
    ) {
        let seed_points = lattice_seed(&seed);
        let ops = lattice_ops(&ops);
        for_each_updatable_index!(|name, build| {
            check_equivalence(name, build, 0.8, &seed_points, &ops, 1, 0.0)?;
            check_equivalence(name, build, 0.8, &seed_points, &ops, 1, 1.0)?;
        });
    }

    /// Sliding-window `advance` (batched eviction + insertion in one epoch)
    /// lands on state bit-identical to both a per-update replay and a cold
    /// batch run at every epoch, for every index, at the documented batch
    /// sizes {1, 7, 64} (1 = per-update epochs, 7 = several epochs per
    /// sequence, 64 = the whole sequence as one epoch).
    #[test]
    fn advance_matches_per_update_replay_and_batch(
        seed in seed_strategy(),
        ops in ops_strategy()
    ) {
        let seed_points = lattice_seed(&seed);
        let ops = lattice_ops(&ops);
        for &batch_size in &[1usize, 7, 64] {
            for_each_updatable_index!(|name, build| {
                check_advance(
                    name,
                    build,
                    &seed_points,
                    &ops,
                    batch_size,
                    CommitPolicy::AlwaysIncremental,
                    4,
                )?;
            });
        }
    }

    /// Deletion-heavy adversarial scenario: delete 90% of the window, then
    /// refill. Equivalence holds at every step, no tombstone is visible to
    /// the ε-query (both asserted inside the harness), and the trees'
    /// amortised maintenance actually fires: the k-d tree's dead-fraction
    /// full rebuild and the R-tree's underflow dissolution.
    #[test]
    fn deletion_heavy_stresses_rebuild_triggers(seed in any::<u64>()) {
        let (seed_points, ops) = deletion_heavy_ops(60, seed);
        let kd = check_equivalence("kdtree", kd_build, 40.0, &seed_points, &ops, 1, 0.25)?;
        prop_assert!(
            counter(&kd, "full_rebuilds") >= 1,
            "k-d dead-fraction rebuild never fired: {:?}", kd
        );
        let rt = check_equivalence("rtree", rt_build, 40.0, &seed_points, &ops, 1, 0.25)?;
        prop_assert!(
            counter(&rt, "nodes_dissolved") >= 1,
            "R-tree underflow dissolution never fired: {:?}", rt
        );
    }

    /// Drift-heavy adversarial scenario: the window random-walks away from
    /// the seed bounding box. Equivalence and invariants hold at every step
    /// while the k-d tree rebuilds its drifting flank and the R-tree keeps
    /// dissolving the nodes the window left behind (bbox shrinking is
    /// asserted per-step by `check_invariants`: every entry inside its
    /// node's box, counts exact).
    #[test]
    fn drift_heavy_stresses_rebalancing(seed in any::<u64>()) {
        let (seed_points, ops) = drift_heavy_ops(40, 40, seed);
        let kd = check_equivalence("kdtree", kd_build, 60.0, &seed_points, &ops, 1, 0.25)?;
        prop_assert!(
            counter(&kd, "subtree_rebuilds") + counter(&kd, "full_rebuilds") >= 1,
            "k-d never rebuilt under drift: {:?}", kd
        );
        let rt = check_equivalence("rtree", rt_build, 60.0, &seed_points, &ops, 1, 0.25)?;
        prop_assert!(
            counter(&rt, "nodes_dissolved") >= 1,
            "R-tree never dissolved a node under drift: {:?}", rt
        );
        // The grid must re-anchor its origin/cell size as the window walks
        // away from the seed bounding box — and stay bit-identical to the
        // cold batch at every step while doing so (check_equivalence asserts
        // that per step; this gate asserts the re-anchor actually fired).
        let grid = check_equivalence("grid", grid_drift_build, 60.0, &seed_points, &ops, 1, 0.25)?;
        prop_assert!(
            counter(&grid, "rebuckets") >= 1,
            "grid never re-bucketed under drift: {:?}", grid
        );
    }

    /// The stable handle ↔ dense id mapping stays consistent through any
    /// operation sequence: every live handle resolves to a dense id that
    /// resolves back, and coordinates follow the handle, not the id.
    #[test]
    fn handles_stay_consistent(seed in seed_strategy(), ops in ops_strategy()) {
        let seed_points = lattice_seed(&seed);
        let mut engine = StreamingDpc::new(
            NaiveReferenceIndex::build(&Dataset::new(seed_points)),
            StreamParams::new(0.8),
        )
        .map_err(|e| TestCaseError::fail(format!("seeding failed: {e}")))?;
        let mut expected: Vec<(dpc_stream::Handle, Point)> = engine
            .live_handles()
            .map(|h| (h, engine.point_of(h).unwrap()))
            .collect();

        for op in lattice_ops(&ops) {
            if op.insert || engine.is_empty() {
                let (h, _) = engine
                    .insert(op.point)
                    .map_err(|e| TestCaseError::fail(format!("insert failed: {e}")))?;
                expected.push((h, op.point));
            } else {
                let live: Vec<_> = engine.live_handles().collect();
                let victim = live[op.sel as usize % live.len()];
                engine
                    .remove(victim)
                    .map_err(|e| TestCaseError::fail(format!("remove failed: {e}")))?;
                expected.retain(|&(h, _)| h != victim);
            }
            prop_assert_eq!(engine.len(), expected.len());
            for &(h, p) in &expected {
                let dense = engine.dense_of(h);
                prop_assert!(dense.is_some(), "live handle {} lost its id", h);
                prop_assert_eq!(engine.point_of(h), Some(p), "handle {} moved", h);
                prop_assert_eq!(engine.handle_at(dense.unwrap()), h);
            }
        }
    }
}

/// Asserts one engine's maintained state is bit-identical to a cold batch
/// run (fresh index of the same kind + full pipeline) over its dataset.
fn assert_cold_batch<I, F>(label: &str, build: &F, engine: &StreamingDpc<I>, dpc: &DpcParams)
where
    I: UpdatableIndex,
    F: Fn(&Dataset) -> I,
{
    let run = DpcPipeline::new(dpc.clone())
        .run(&build(engine.index().dataset()))
        .expect("cold batch run must succeed");
    assert_eq!(engine.rho(), &run.rho[..], "[{label}] rho");
    assert_eq!(&engine.deltas().delta, &run.deltas.delta, "[{label}] delta");
    assert_eq!(&engine.deltas().mu, &run.deltas.mu, "[{label}] mu");
    assert_eq!(
        engine.clustering().centers(),
        run.clustering.centers(),
        "[{label}] centres"
    );
    assert_eq!(
        engine.clustering().labels(),
        run.clustering.labels(),
        "[{label}] labels"
    );
}

/// Large epochs: a 150-op clustered workload at batch 64 (several dozen
/// mutations per epoch) for every engine, checked against the per-update
/// replay and the cold batch run at every epoch. The proptest above covers
/// the same batch sizes on short sequences; this pins genuinely large
/// epochs, where the union/invalidation machinery and the trees' deferred
/// triggers actually amortise.
#[test]
fn large_epochs_match_per_update_replay_across_engines() {
    let seed_points = test_points(TestDistribution::Clustered, 40, 99);
    let mut rng = SplitMix64::new(77);
    let extra = test_points(TestDistribution::Clustered, 150, 100);
    let ops: Vec<Op> = extra
        .into_iter()
        .map(|p| Op {
            insert: true,
            point: p,
            sel: rng.next_u64(),
        })
        .collect();
    for_each_updatable_index!(|name, build| {
        check_advance(
            name,
            build,
            &seed_points,
            &ops,
            64,
            CommitPolicy::AlwaysIncremental,
            4,
        )
        .unwrap();
    });
}

/// The `AlwaysRebuild` and `Adaptive` commit policies must land on state
/// bit-identical to both oracles (per-update incremental replay and cold
/// batch run) at every epoch, for every engine, at the documented batch
/// sizes {1, 7, 64} and threads {1, 4}. Timing nondeterminism may flip
/// which path an adaptive epoch takes — never what it commits.
#[test]
fn rebuild_and_adaptive_policies_match_oracles_across_engines() {
    let seed_points = test_points(TestDistribution::Clustered, 40, 99);
    let mut rng = SplitMix64::new(78);
    let extra = test_points(TestDistribution::Clustered, 150, 101);
    let ops: Vec<Op> = extra
        .into_iter()
        .map(|p| Op {
            insert: true,
            point: p,
            sel: rng.next_u64(),
        })
        .collect();
    for &threads in &[1usize, 4] {
        for &batch in &[1usize, 7, 64] {
            for_each_updatable_index!(|name, build| {
                check_advance(
                    name,
                    build,
                    &seed_points,
                    &ops,
                    batch,
                    CommitPolicy::Adaptive,
                    threads,
                )
                .unwrap();
            });
        }
    }
    // The fixed rebuild policy gets one representative sweep per engine
    // (batch 7, 4 threads): every epoch above may or may not rebuild; these
    // all must.
    for_each_updatable_index!(|name, build| {
        check_advance(
            name,
            build,
            &seed_points,
            &ops,
            7,
            CommitPolicy::AlwaysRebuild,
            4,
        )
        .unwrap();
    });
}

/// Regression: a mid-stream policy flip (incremental → rebuild →
/// incremental) must be invisible in the committed state — bit-identical to
/// the cold oracle at every epoch — while the `rebuild_epochs` /
/// `fallback_epochs` counters advance exactly as the active policy
/// predicts. `max_affected_fraction` 0 pins every incremental-path epoch to
/// the fallback counter, so the split is deterministic.
#[test]
fn mid_stream_policy_flip_is_bit_identical_and_counted() {
    let dc = 60.0;
    let dpc = DpcParams::new(dc).with_centers(CenterSelection::GammaGap { max_centers: 8 });
    let arrivals = test_points(TestDistribution::Clustered, 18, 31);
    for_each_updatable_index!(|name, build| {
        let seed = Dataset::new(test_points(TestDistribution::Clustered, 16, 30));
        let params = StreamParams::new(dc)
            .with_dpc(dpc.clone())
            .with_max_affected_fraction(0.0);
        let mut engine = StreamingDpc::new(build(&seed), params).unwrap();
        for (i, chunk) in arrivals.chunks(3).enumerate() {
            match i {
                2 => engine.set_policy(CommitPolicy::AlwaysRebuild),
                4 => engine.set_policy(CommitPolicy::AlwaysIncremental),
                _ => {}
            }
            engine.advance(chunk, chunk.len()).unwrap();
            engine.index().check_invariants();
            assert_cold_batch(name, &build, &engine, &dpc);
        }
        // 6 epochs: 2 fallback, then 2 rebuild, then 2 fallback again.
        let stats = engine.stats();
        assert_eq!(stats.epochs, 6, "[{name}]");
        assert_eq!(stats.rebuild_epochs, 2, "[{name}]");
        assert_eq!(stats.fallback_epochs, 4, "[{name}]");
        assert_eq!(stats.incremental_epochs, 0, "[{name}]");
        assert_eq!(
            stats.last_epoch_mode,
            Some(dpc_stream::EpochMode::Fallback),
            "[{name}]"
        );
    });
}

/// Epoch edge case: a batch that deletes the current global peak (whose δ is
/// the max-distance sentinel and whose removal re-anchors every point's
/// candidate peak) together with further mutations, for every engine.
#[test]
fn batch_deleting_the_global_peak_matches_batch() {
    let dc = 60.0;
    let dpc = DpcParams::new(dc).with_centers(CenterSelection::GammaGap { max_centers: 8 });
    for_each_updatable_index!(|name, build| {
        let seed = Dataset::new(test_points(TestDistribution::Clustered, 30, 5));
        let params = StreamParams::new(dc).with_dpc(dpc.clone());
        let mut engine = StreamingDpc::new(build(&seed), params).unwrap();
        let peak =
            dpc_core::DensityOrder::with_tie_break(engine.rho(), engine.params().dpc.tie_break)
                .global_peak()
                .expect("non-empty window has a peak");
        let peak_handle = engine.handle_at(peak);

        let mut plan = dpc_stream::EpochPlan::new();
        plan.remove(peak_handle);
        for p in test_points(TestDistribution::Clustered, 3, 6) {
            plan.insert(p);
        }
        let (handles, delta) = engine.commit(&plan).unwrap();
        assert_eq!(handles.len(), 3, "[{name}]");
        assert_eq!(delta.evictions(), 1, "[{name}]");
        assert_eq!(engine.dense_of(peak_handle), None, "[{name}]");
        engine.index().check_invariants();
        assert_cold_batch(name, &build, &engine, &dpc);
    });
}

/// Epoch edge case: points inserted and expired within the same batch
/// (ephemeral points) interleaved with surviving mutations, for every
/// engine. The committed state must be as if the ephemeral points never
/// existed — and bit-identical to the cold batch run.
#[test]
fn ephemeral_points_in_a_plan_match_batch() {
    let dc = 60.0;
    let dpc = DpcParams::new(dc).with_centers(CenterSelection::GammaGap { max_centers: 8 });
    for_each_updatable_index!(|name, build| {
        let seed = Dataset::new(test_points(TestDistribution::Clustered, 20, 11));
        let params = StreamParams::new(dc).with_dpc(dpc.clone());
        let mut engine = StreamingDpc::new(build(&seed), params).unwrap();
        let oldest = engine.oldest().unwrap();

        let mut plan = dpc_stream::EpochPlan::new();
        let keep = plan.insert(test_points(TestDistribution::Clustered, 1, 12)[0]);
        let flash = plan.insert(test_points(TestDistribution::Skewed, 1, 13)[0]);
        plan.remove(oldest); // a real eviction between the ephemeral's ops
        plan.remove_planned(flash);
        let (handles, delta) = engine.commit(&plan).unwrap();

        assert_eq!(engine.len(), 20, "[{name}]"); // +2 -1 -1
        assert!(
            engine.dense_of(handles[keep.ordinal()]).is_some(),
            "[{name}]"
        );
        assert_eq!(delta.insertions(), 1, "[{name}]"); // the ephemeral is invisible
        assert_eq!(delta.evictions(), 1, "[{name}]");
        engine.index().check_invariants();
        assert_cold_batch(name, &build, &engine, &dpc);
    });
}

/// Regression (caught in review): under `TieBreak::LargerIdDenser` a
/// swap-remove rename *lowers* the renamed point's tie rank, so a stored µ
/// can fall out of its dependent's denser set without any ρ change — the
/// µ scan must invalidate on the rename itself, not only on `visited[µ]`.
/// Replays tie-heavy lattice sequences (per-update and batched) under the
/// non-default tie-break and demands cold-batch bit-identity every epoch.
#[test]
fn larger_id_denser_tie_break_matches_batch() {
    let dc = 0.8;
    let dpc = DpcParams::new(dc)
        .with_centers(CenterSelection::GammaGap { max_centers: 8 })
        .with_tie_break(dpc_core::TieBreak::LargerIdDenser);
    let build = |data: &Dataset| {
        NaiveReferenceIndex::build_with_tie_break(data, dpc_core::TieBreak::LargerIdDenser)
    };
    let mut rng = SplitMix64::new(4242);
    for trial in 0..20 {
        let seed_points: Vec<Point> = (0..12)
            .map(|_| lattice_point((rng.next_u64() % 5) as u32, (rng.next_u64() % 5) as u32))
            .collect();
        let params = StreamParams::new(dc).with_dpc(dpc.clone());
        let mut engine = StreamingDpc::new(build(&Dataset::new(seed_points)), params).unwrap();
        for step in 0..25 {
            if rng.next_u64().is_multiple_of(2) && engine.len() > 2 {
                let live: Vec<_> = engine.live_handles().collect();
                let victim = live[(rng.next_u64() as usize) % live.len()];
                engine.remove(victim).unwrap();
            } else {
                let p = lattice_point((rng.next_u64() % 5) as u32, (rng.next_u64() % 5) as u32);
                engine.insert(p).unwrap();
            }
            let run = DpcPipeline::new(dpc.clone())
                .run(&build(engine.index().dataset()))
                .unwrap();
            assert_eq!(engine.rho(), &run.rho[..], "trial {trial} step {step}: rho");
            assert_eq!(
                &engine.deltas().delta,
                &run.deltas.delta,
                "trial {trial} step {step}: delta"
            );
            assert_eq!(
                &engine.deltas().mu,
                &run.deltas.mu,
                "trial {trial} step {step}: mu"
            );
        }
        // One batched epoch over the same window kind, same oracle.
        let batch: Vec<Point> = (0..6)
            .map(|_| lattice_point((rng.next_u64() % 5) as u32, (rng.next_u64() % 5) as u32))
            .collect();
        engine.advance(&batch, 4).unwrap();
        assert_cold_batch("naive/larger-id", &build, &engine, &dpc);
    }
}

/// The trees' amortised triggers are *deferred* inside a batched epoch: the
/// R-tree's forced-reinsertion round is shared by the whole batch (at most
/// one per epoch — later overflows split), and the k-d tree settles its
/// scapegoat/dead-fraction violations in one end-of-batch sweep (which must
/// still fire under a workload that overflows its tiny leaves).
#[test]
fn deferred_triggers_fire_once_per_epoch() {
    let dc = 120.0;
    let dpc = DpcParams::new(dc).with_centers(CenterSelection::GammaGap { max_centers: 8 });
    let arrivals = test_points(TestDistribution::Clustered, 60, 21);

    let seed = Dataset::new(test_points(TestDistribution::Clustered, 10, 20));
    let params = StreamParams::new(dc).with_dpc(dpc.clone());
    let mut kd_engine = StreamingDpc::new(kd_build(&seed), params.clone()).unwrap();
    kd_engine.advance(&arrivals, 0).unwrap();
    kd_engine.index().check_invariants();
    let kd = kd_engine.index().maintenance_counters();
    assert!(
        counter(&kd, "subtree_rebuilds") + counter(&kd, "full_rebuilds") >= 1,
        "k-d deferred sweep never rebuilt after a 60-insert epoch: {kd:?}"
    );
    assert_cold_batch("kdtree", &kd_build, &kd_engine, &dpc);

    let mut rt_engine = StreamingDpc::new(rt_build(&seed), params).unwrap();
    rt_engine.advance(&arrivals, 0).unwrap();
    rt_engine.index().check_invariants();
    let rt = rt_engine.index().maintenance_counters();
    assert!(
        counter(&rt, "forced_reinserts") <= 1,
        "R-tree spent more than one reinsertion round in a single epoch: {rt:?}"
    );
    assert!(
        counter(&rt, "node_splits") >= 1,
        "60 inserts into 3-entry nodes must split: {rt:?}"
    );
    assert_cold_batch("rtree", &rt_build, &rt_engine, &dpc);
}

/// Emits one wall-clock line per engine for a fixed replay. CI runs this
/// test with `--nocapture` and uploads the lines as a job artifact, so a
/// slow regression in any engine's maintenance path is visible in the PR
/// (the equivalence checks above assert correctness, this pins cost).
#[test]
fn per_engine_timing_summary() {
    let mut rng = SplitMix64::new(2024);
    let seed_points: Vec<Point> = (0..24)
        .map(|_| lattice_point((rng.next_u64() % 10) as u32, (rng.next_u64() % 10) as u32))
        .collect();
    let ops: Vec<Op> = (0..120)
        .map(|_| Op {
            insert: rng.next_u64().is_multiple_of(2),
            point: lattice_point((rng.next_u64() % 10) as u32, (rng.next_u64() % 10) as u32),
            sel: rng.next_u64(),
        })
        .collect();
    for_each_updatable_index!(|name, build| {
        let start = std::time::Instant::now();
        check_equivalence(name, build, 0.8, &seed_points, &ops, 1, 0.25).unwrap();
        println!(
            "timing engine={name} steps={} elapsed_ms={:.1}",
            ops.len(),
            start.elapsed().as_secs_f64() * 1e3
        );
    });
}
